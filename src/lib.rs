//! # perfeval
//!
//! A performance-evaluation toolkit for database research, reproducing
//! **"Performance Evaluation in Database Research: Principles and
//! Experiences"** (Manolescu & Manegold, ICDE 2008 / EDBT 2009) as a
//! working system.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | role |
//! |-------|------|
//! | [`core`] (`perfeval-core`) | experiment design: factors, 2^k / 2^(k−p) designs, sign tables, confounding algebra, allocation of variation |
//! | [`stats`] (`perfeval-stats`) | confidence intervals, comparisons, histograms, regression, deterministic distributions |
//! | [`measure`] (`perfeval-measure`) | clocks (wall / CPU / quantized), hot–cold run protocols, phase timing, environment capture |
//! | [`harness`] (`perfeval-harness`) | Properties configs, CSV with locale validation, gnuplot generation, experiment suites, repeatability |
//! | [`minidb`] | the substrate DBMS: column store, SQL subset, DBG/OPT engines, EXPLAIN/PROFILE, result sinks |
//! | [`net`] (`minidb-net`) | wire-protocol client/server layer: TCP + in-process loopback transports, streamed result batches with backpressure, the measured client/server time decomposition, and two server cores (event-driven sharded / thread-per-connection) behind one builder |
//! | [`workload`] | TPC-H-like data generator, Q1/Q6/Q16-like queries, the 22-query DBG/OPT family, micro-benchmarks |
//! | [`memsim`] | cache-hierarchy / disk / buffer-pool simulator with 1992–2008 machine presets (era what-ifs; measured I/O lives in `store`) |
//! | [`store`] (`perfeval-store`) | persistent columnar storage: checksummed segment files (RLE/dictionary encoded), a real buffer pool with LRU/Clock/2Q eviction and counted hits/misses, crash-safe temp-then-rename manifests, OS page-cache dropping for honest cold runs |
//! | [`exec`] (`perfeval-exec`) | deterministic parallel experiment scheduler: run plans, order policies, worker pool, resumable result cache, failure-contained execution |
//! | [`trace`] (`perfeval-trace`) | span-based observability: per-thread ring-buffer recorder, Chrome/Perfetto + flamegraph + tree exporters |
//! | [`fault`] (`perfeval-fault`) | seeded deterministic fault injection: failpoints that panic, delay, hang, skew clocks, and fail cache I/O |
//! | [`load`] (`perfeval-load`) | multi-client load harness over `minidb-net`: open/closed-loop arrival, coordinated-omission-safe tail latencies, offered-vs-achieved throughput, checksummed results |
//!
//! ## Quickstart: design, run, analyze
//!
//! ```
//! use perfeval::core::twolevel::TwoLevelDesign;
//! use perfeval::core::runner::{run_and_analyze, Assignment};
//!
//! // Which matters more for this (toy) system: buffer size or vector size?
//! let design = TwoLevelDesign::full(&["buffer", "vector"]);
//! let mut system = |a: &Assignment| {
//!     100.0 - 30.0 * a.num("buffer").unwrap() - 5.0 * a.num("vector").unwrap()
//! };
//! let (_runs, variation) = run_and_analyze(&design, 1, &mut system).unwrap();
//! assert_eq!(variation.ranked_effects()[0].0, "buffer");
//! ```
#![warn(missing_docs)]

pub use memsim;
pub use minidb;
pub use minidb_net as net;
pub use perfeval_core as core;
pub use perfeval_exec as exec;
pub use perfeval_fault as fault;
pub use perfeval_harness as harness;
pub use perfeval_load as load;
pub use perfeval_measure as measure;
pub use perfeval_stats as stats;
pub use perfeval_store as store;
pub use perfeval_trace as trace;
pub use workload;

/// Commonly used items in one import.
pub mod prelude {
    pub use memsim::{BufferPool, Disk, MachineSpec};
    pub use minidb::{
        Catalog, DataType, ExecMode, Session, StoreConfig, Table, TableBuilder, Value,
    };
    pub use minidb_net::{
        Client, LoopbackEndpoint, NetQueryResult, Server, ServerMode, TcpEndpoint, TcpTransport,
    };
    pub use perfeval_core::alias::{AliasStructure, Generator};
    pub use perfeval_core::design::Design;
    pub use perfeval_core::effects::estimate_effects;
    pub use perfeval_core::factor::{Factor, Level};
    pub use perfeval_core::runner::{run_and_analyze, Assignment, Runner, SyncExperiment};
    pub use perfeval_core::twolevel::TwoLevelDesign;
    pub use perfeval_core::variation::allocate_variation;
    pub use perfeval_exec::{
        OrderPolicy, ParallelRunner, ResultCache, RetryPolicy, Scheduler, SweepResult, UnitOutcome,
    };
    pub use perfeval_fault::{Failpoint, FaultAction, FaultRegistry, Trigger};
    pub use perfeval_harness::{ExperimentSuite, GnuplotScript, Properties};
    pub use perfeval_load::{Arrival, Dialer, LoadReport, LoadRunner, LoadSpec};
    pub use perfeval_measure::{CacheState, Clock, Measurement, RunProtocol, WallClock};
    pub use perfeval_stats::{compare_means, mean_confidence_interval, LogHistogram, Summary};
    pub use perfeval_store::{Evict, PoolCounters};
    pub use perfeval_trace::{chrome_trace_json, render_tree, Tracer};
    pub use workload::dbgen::{generate, GenConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let d = TwoLevelDesign::full(&["A"]);
        assert_eq!(d.run_count(), 2);
        let s = Summary::from_slice(&[1.0, 2.0]);
        assert_eq!(s.count(), 2);
        let _ = MachineSpec::laptop_2005();
    }
}
