//! Integration tests for the methodology pipeline: the tutorial's worked
//! examples, end to end, with the engine as the system under test.

use perfeval::core::mistakes;
use perfeval::core::screen::screen;
use perfeval::prelude::*;

#[test]
fn slide_72_worked_example_via_the_runner() {
    // The 2^2 memory×cache MIPS example, driven through the full
    // design→run→estimate pipeline instead of hand-fed responses.
    let design = TwoLevelDesign::full(&["memory", "cache"]);
    let mut workstation = |a: &Assignment| {
        let xa = a.num("memory").unwrap();
        let xb = a.num("cache").unwrap();
        40.0 + 20.0 * xa + 10.0 * xb + 5.0 * xa * xb
    };
    let (runs, variation) = run_and_analyze(&design, 1, &mut workstation).unwrap();
    assert_eq!(runs.means(), vec![15.0, 45.0, 25.0, 75.0]);
    let m = &variation.model;
    assert_eq!(m.coefficient(&[]).unwrap(), 40.0);
    assert_eq!(m.coefficient(&["memory"]).unwrap(), 20.0);
    assert_eq!(m.coefficient(&["cache"]).unwrap(), 10.0);
    assert_eq!(m.coefficient(&["memory", "cache"]).unwrap(), 5.0);
}

#[test]
fn fractional_screen_matches_full_design_on_minidb() {
    // Screen two real engine factors (+ one inert decoy) with a fraction,
    // then verify the full design ranks them identically.
    let catalog = generate(&GenConfig {
        scale_factor: 0.002,
        ..GenConfig::default()
    });
    let sql = "SELECT SUM(l_extendedprice * (1 - l_discount)) FROM lineitem \
               WHERE l_shipdate < 1500";
    let mut experiment = |a: &Assignment| {
        let mode = if a.num("A").unwrap() > 0.0 {
            ExecMode::Optimized
        } else {
            ExecMode::Debug
        };
        let mut s = Session::new(catalog.clone()).with_mode(mode);
        if a.num("B").unwrap() < 0.0 {
            s.set_optimizer(perfeval::minidb::optimizer::OptimizerConfig::none());
        }
        // C is a decoy: read it, do nothing.
        let _ = a.num("C").unwrap();
        s.query(sql).run().unwrap();
        s.query(sql).run().unwrap().server_user_ms()
    };
    let full = screen(&["A", "B", "C"], &[], 2, &mut experiment).unwrap();
    let frac = screen(
        &["A", "B", "C"],
        &[Generator::parse("C=AB").unwrap()],
        2,
        &mut experiment,
    )
    .unwrap();
    assert_eq!(full.ranking[0].0, "A", "engine mode dominates");
    assert_eq!(frac.ranking[0].0, "A");
    assert!(frac.runs_spent < full.runs_spent);
}

#[test]
fn alias_algebra_warns_what_the_fraction_cannot_see() {
    // Build a system with a strong B·C interaction, screen it with the
    // resolution-III fraction C=AB: the interaction lands on the alias of
    // B·C — and the alias structure predicts exactly where.
    let design =
        TwoLevelDesign::fractional(&["A", "B", "C"], &[Generator::parse("C=AB").unwrap()]).unwrap();
    let alias = AliasStructure::of(&design).unwrap();
    // B·C = 0b110; its alias set under I=ABC contains A (0b001).
    assert!(alias.are_aliased(0b110, 0b001));
    let mut system = |a: &Assignment| 10.0 + 4.0 * a.num("B").unwrap() * a.num("C").unwrap();
    let (_, variation) = run_and_analyze(&design, 1, &mut system).unwrap();
    // The fraction charges the interaction to main effect A.
    let a_share = variation.fraction_of(&design, &["A"]).unwrap();
    assert!(a_share > 0.99, "interaction confounded onto A: {a_share}");
}

#[test]
fn mistakes_audit_flags_an_unreplicated_noisy_study() {
    let design = TwoLevelDesign::full(&["A", "B"]);
    // One replication: audit must demand replication.
    let unreplicated = vec![vec![1.0], vec![2.0], vec![1.5], vec![1.8]];
    let findings = mistakes::audit_responses(&design, &unreplicated);
    assert!(findings.iter().any(|f| f.mistake == 1));

    // Simple design: audit flags the one-at-a-time structure.
    let simple = Design::simple(vec![
        Factor::numeric("a", &[1.0, 2.0]),
        Factor::numeric("b", &[1.0, 2.0]),
    ]);
    assert!(mistakes::audit_design(&simple)
        .iter()
        .any(|f| f.mistake == 4));
}

#[test]
fn confidence_intervals_protect_against_false_wins() {
    // Two systems whose true speeds are identical; the naive "compare one
    // run each" can pick a winner, the CI-based comparison says
    // indistinguishable. Measurement noise is drawn from a *seeded*
    // generator rather than the wall clock: a 95% CI is entitled to one
    // false win in twenty, so real timing noise would make this assertion
    // a coin-flip on a loaded machine — the repeatability chapter's point
    // is exactly that recorded seeds turn such checks deterministic.
    use perfeval::stats::rng::SplitMix64;
    let mut noise = SplitMix64::new(20080408);
    let mut measure =
        |true_ms: f64| -> Vec<f64> { (0..8).map(|_| true_ms + 0.2 * noise.next_f64()).collect() };
    let mine = measure(1.5);
    let yours = measure(1.5);
    let cmp = compare_means(&mine, &yours, 0.95).unwrap();
    assert_eq!(
        cmp.verdict,
        perfeval::stats::ComparisonVerdict::Indistinguishable,
        "identical systems must not produce a winner: {cmp:?}"
    );
    // And the same comparison must still detect a genuine 2x difference.
    let slower = measure(3.0);
    let cmp = compare_means(&mine, &slower, 0.95).unwrap();
    assert_eq!(cmp.verdict, perfeval::stats::ComparisonVerdict::AFaster);
}

#[test]
fn latin_fraction_covers_slide_67_exactly() {
    let d = Design::latin_square_fraction(vec![
        Factor::categorical("cpu", &["68000", "Z80", "8086"]),
        Factor::categorical("memory", &["512K", "2M", "8M"]),
        Factor::categorical("workload", &["managerial", "scientific", "secretarial"]),
        Factor::categorical("education", &["high school", "postgraduate", "college"]),
    ]);
    // The slide's nine rows, in order.
    let expect = [
        ["68000", "512K", "managerial", "high school"],
        ["68000", "2M", "scientific", "postgraduate"],
        ["68000", "8M", "secretarial", "college"],
        ["Z80", "512K", "scientific", "college"],
        ["Z80", "2M", "secretarial", "high school"],
        ["Z80", "8M", "managerial", "postgraduate"],
        ["8086", "512K", "secretarial", "postgraduate"],
        ["8086", "2M", "managerial", "college"],
        ["8086", "8M", "scientific", "high school"],
    ];
    assert_eq!(d.run_count(), 9);
    for (r, want) in expect.iter().enumerate() {
        let got: Vec<String> = d
            .factors()
            .iter()
            .zip(d.run(r))
            .map(|(f, &l)| f.levels()[l].label())
            .collect();
        assert_eq!(got, want.to_vec(), "run {r}");
    }
}

#[test]
fn quantized_clock_hides_fast_queries() {
    // E17 end-to-end: a fast query timed with a 10 ms timer reads as 0 ms.
    use perfeval::measure::{Clock, ManualClock, QuantizedClock};
    let inner = ManualClock::new();
    let coarse = QuantizedClock::new(inner.clone(), 10_000_000);
    let fine = inner.clone();
    let t0c = coarse.now_ns();
    let t0f = fine.now_ns();
    inner.advance_ns(6_462_000); // Q's 6.462 ms "Query" phase
    assert_eq!(coarse.now_ns() - t0c, 0, "coarse timer sees nothing");
    assert_eq!(fine.now_ns() - t0f, 6_462_000);
}
