//! Cross-crate integration: workload → engine → measurement → harness,
//! exercising the full pipeline a user of the toolkit would run.

use perfeval::harness::csvio::{read_csv, write_csv};
use perfeval::harness::suite::{ExperimentSuite, Instructions, ParamGrid};
use perfeval::prelude::*;
use perfeval::workload::queries;

fn small_catalog() -> Catalog {
    generate(&GenConfig {
        scale_factor: 0.001,
        ..GenConfig::default()
    })
}

#[test]
fn both_engines_agree_on_the_benchmark_queries() {
    let catalog = small_catalog();
    let mut dbg = Session::new(catalog.clone()).with_mode(ExecMode::Debug);
    let mut opt = Session::new(catalog).with_mode(ExecMode::Optimized);
    for sql in [queries::q1(), queries::q6(), queries::q16()] {
        let a = dbg.query(&sql).run().unwrap();
        let b = opt.query(&sql).run().unwrap();
        assert_eq!(a.rows, b.rows, "{sql}");
        assert_eq!(a.column_names, b.column_names);
    }
}

#[test]
fn optimizer_on_off_preserves_results_across_family() {
    let catalog = small_catalog();
    let mut on = Session::new(catalog.clone());
    let mut off = Session::new(catalog);
    off.set_optimizer(perfeval::minidb::optimizer::OptimizerConfig::none());
    for sql in queries::all_family() {
        let a = on.query(&sql).run().unwrap();
        let b = off.query(&sql).run().unwrap();
        assert_eq!(a.rows, b.rows, "{sql}");
    }
}

#[test]
fn run_protocol_drives_session_hot_and_cold() {
    let catalog = small_catalog();
    let session =
        std::cell::RefCell::new(Session::new(catalog).with_disk(Disk::era_1992(), 50_000));
    let sql = queries::q6();
    let protocol = RunProtocol::last_of_three_hot();
    let result = protocol.execute(
        || session.borrow_mut().flush_caches(),
        || {
            let r = session.borrow_mut().query(&sql).run().unwrap();
            Measurement::from_phases(vec![
                ("user".into(), r.server_user_ms()),
                ("io".into(), r.sim_io_ms),
            ])
        },
    );
    // First run cold (I/O), last run hot (no I/O): the kept measurement is
    // hot.
    assert!(result.all[0].named("io").unwrap() > 0.0);
    assert_eq!(result.kept[0].named("io").unwrap(), 0.0);
    assert_eq!(result.protocol_description(), protocol.describe());
}

#[test]
fn experiment_suite_records_a_repeatable_artifact() {
    let root = std::env::temp_dir().join(format!("perfeval_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&root).unwrap();
    let suite = ExperimentSuite::create(&root, "scaleup").unwrap();

    // Configuration is recorded, not hardcoded.
    let mut props = Properties::with_defaults(&[("seed", "20080408"), ("reps", "2")]);
    props.set("sfs", "0.0005,0.001");
    suite.record_config(&props).unwrap();

    // Control loop over the parameter grid.
    let grid = ParamGrid::new().axis_f64("sf", &[0.0005, 0.001]);
    let mut rows = Vec::new();
    for point in grid.points() {
        let sf: f64 = point.get_f64("sf").unwrap().unwrap();
        let catalog = generate(&GenConfig {
            scale_factor: sf,
            ..GenConfig::default()
        });
        let mut session = Session::new(catalog);
        session.query(&queries::q6()).run().unwrap();
        let ms = session
            .query(&queries::q6())
            .run()
            .unwrap()
            .server_user_ms();
        rows.push(vec![sf, ms]);
    }
    let csv = suite
        .write_result("scaleup.csv", &["sf", "ms"], &rows)
        .unwrap();

    // Graph script generated next to it.
    let plot = suite
        .write_plot(
            "scaleup.gnu",
            &GnuplotScript::new(
                "Q6 scale-up",
                "scale factor",
                "server time (ms)",
                "scaleup.eps",
            )
            .single("../res/scaleup.csv"),
        )
        .unwrap();

    // Instructions complete the repeatability contract.
    let readme = suite
        .write_instructions(&Instructions {
            title: "Q6 scale-up".into(),
            requirements: "Rust 1.80+".into(),
            extra_setup: String::new(),
            command: "cargo test --test end_to_end".into(),
            output_location: "res/scaleup.csv, graphs/scaleup.gnu".into(),
            duration: "seconds".into(),
        })
        .unwrap();

    // Everything readable back, CSV valid (no locale corruption).
    let table = read_csv(&csv).unwrap();
    assert_eq!(table.header, vec!["sf", "ms"]);
    assert_eq!(table.row_count(), 2);
    // Bigger scale factor, more work.
    assert!(table.rows[1][1] > 0.0);
    assert!(plot.exists());
    assert!(std::fs::read_to_string(readme)
        .unwrap()
        .contains("# Q6 scale-up"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn csv_written_by_harness_roundtrips_through_validation() {
    let dir = std::env::temp_dir().join(format!("perfeval_e2e_csv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("times.csv");
    // Realistic replicated timings with decimals.
    let rows = vec![
        vec![1.0, 13.666],
        vec![2.0, 15.0],
        vec![3.0, 12.3333],
        vec![4.0, 13.0],
    ];
    write_csv(&path, &["run", "avg_ms"], &rows).unwrap();
    let table = read_csv(&path).unwrap();
    assert_eq!(table.rows, rows);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn environment_spec_documents_the_machine() {
    use perfeval::measure::{EnvSpec, SpecLevel};
    let mut spec = EnvSpec::capture();
    // Fill in what procfs cannot know — and the API told us what's missing.
    for field in spec.missing_fields() {
        match field {
            "disk" => spec.disk = "simulated 5400RPM laptop disk".into(),
            "cpu_model" => spec.cpu_model = "test".into(),
            "cpu_mhz" => spec.cpu_mhz = 1000.0,
            "cache_kib" => spec.cache_kib = vec![32, 2048],
            "ram_mib" => spec.ram_mib = 2048,
            "os" => spec.os = "Linux".into(),
            other => panic!("unexpected missing field {other}"),
        }
    }
    assert_eq!(spec.spec_level(), SpecLevel::Adequate);
    assert!(spec.render().contains("disk"));
}

#[test]
fn memory_wall_reproduces_with_engine_in_the_loop() {
    // The full E4 story: the same logical scan, five machines, nearly flat
    // total time despite 10x clocks.
    let series = perfeval::memsim::scan::memory_wall_series(100_000);
    let first = series[0].total_ns_per_iter();
    let last = series[4].total_ns_per_iter();
    assert!(first / last < 3.0);
    // And the counters tell the story wall-clock alone cannot.
    for cost in &series[1..] {
        assert!(
            cost.memory_fraction() > 0.5,
            "{} should be memory-bound",
            cost.system
        );
    }
}

#[test]
fn chart_lint_blesses_the_harness_default_plots() {
    use perfeval::harness::chartlint::{lint, ChartKind, ChartSpec};
    let spec = ChartSpec {
        kind: ChartKind::Line,
        series: 2,
        y_label: "execution time (ms)".into(),
        x_label: "scale factor".into(),
        y_axis_start: 0.0,
        y_data_min: 5.0,
        plots_random_quantities: true,
        has_error_bars: true,
    };
    assert!(lint(&spec).is_empty());
}
