//! Property-based tests over the toolkit's core invariants.

use perfeval::prelude::*;
use perfeval::stats::dist::Zipf;
use perfeval::stats::histogram::Histogram;
use perfeval::stats::rng::SplitMix64;
use proptest::prelude::*;

fn finite_vec(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6f64, min_len..64)
}

proptest! {
    #[test]
    fn summary_mean_is_bounded_by_min_max(data in finite_vec(1)) {
        let s = Summary::from_slice(&data);
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= 0.0);
        prop_assert!(s.stddev() <= s.range() + 1e-9);
    }

    #[test]
    fn summary_merge_matches_concatenation(a in finite_vec(1), b in finite_vec(1)) {
        let mut merged = Summary::from_slice(&a);
        merged.merge(&Summary::from_slice(&b));
        let concat: Vec<f64> = a.iter().chain(&b).copied().collect();
        let whole = Summary::from_slice(&concat);
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert!((merged.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((merged.variance() - whole.variance()).abs() < 1e-3);
    }

    #[test]
    fn confidence_interval_contains_the_sample_mean(data in finite_vec(2), level in 0.5..0.999f64) {
        let ci = mean_confidence_interval(&data, level).unwrap();
        let mean = Summary::from_slice(&data).mean();
        prop_assert!(ci.contains(mean));
        prop_assert!(ci.lower <= ci.upper);
    }

    #[test]
    fn wider_level_means_wider_interval(data in finite_vec(3)) {
        let narrow = mean_confidence_interval(&data, 0.80).unwrap();
        let wide = mean_confidence_interval(&data, 0.99).unwrap();
        prop_assert!(wide.half_width() >= narrow.half_width() - 1e-12);
    }

    #[test]
    fn histogram_preserves_total(data in finite_vec(1), bins in 1usize..32) {
        let h = Histogram::with_bins(&data, bins).unwrap();
        prop_assert_eq!(h.counts().iter().sum::<usize>(), data.len());
        prop_assert_eq!(h.total(), data.len());
    }

    #[test]
    fn histogram_auto_satisfies_cell_rule(data in finite_vec(1)) {
        let h = Histogram::auto(&data, 5).unwrap();
        prop_assert!(h.bins() == 1 || h.satisfies_cell_rule(5));
    }

    #[test]
    fn splitmix_next_below_is_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn zipf_ranks_stay_in_bounds(seed in any::<u64>(), n in 1usize..500, s in 0.0..2.5f64) {
        let z = Zipf::new(n, s);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..50 {
            let r = z.sample_rank(&mut rng);
            prop_assert!(r >= 1 && r <= n);
        }
    }

    #[test]
    fn effect_model_reproduces_its_inputs(
        coeffs in prop::collection::vec(-100.0..100.0f64, 8),
    ) {
        // Build y from arbitrary coefficients over a full 2^3 design, then
        // recover them exactly: the sign-table method is an involution.
        let d = TwoLevelDesign::full(&["A", "B", "C"]);
        let y: Vec<f64> = (0..8)
            .map(|r| {
                (0u32..8)
                    .map(|mask| coeffs[mask as usize] * d.effect_sign(r, mask))
                    .sum()
            })
            .collect();
        let m = estimate_effects(&d, &y).unwrap();
        for mask in 0u32..8 {
            let got = m.coefficient_mask(mask).unwrap();
            prop_assert!((got - coeffs[mask as usize]).abs() < 1e-6,
                "mask {mask}: got {got}, want {}", coeffs[mask as usize]);
        }
        // And the model predicts every observation back.
        for (r, &want) in y.iter().enumerate() {
            prop_assert!((m.predict(&d.run_signs(r)) - want).abs() < 1e-6);
        }
    }

    #[test]
    fn allocation_of_variation_sums_to_sst(responses in prop::collection::vec(-1000.0..1000.0f64, 8..=8)) {
        let d = TwoLevelDesign::full(&["A", "B", "C"]);
        let table = allocate_variation(&d, &responses).unwrap();
        let explained: f64 = table.shares.iter().map(|s| s.sum_of_squares).sum();
        prop_assert!((explained - table.sst).abs() < 1e-6 * (1.0 + table.sst));
    }

    #[test]
    fn fractional_designs_stay_orthogonal(gen_choice in 0usize..3) {
        let generators = match gen_choice {
            0 => vec![Generator::parse("D=ABC").unwrap()],
            1 => vec![Generator::parse("D=AB").unwrap()],
            _ => vec![Generator::parse("D=AC").unwrap()],
        };
        let d = TwoLevelDesign::fractional(&["A", "B", "C", "D"], &generators).unwrap();
        prop_assert!(d.columns_are_zero_sum());
        prop_assert!(d.columns_are_orthogonal());
        prop_assert_eq!(d.run_count(), 8);
    }

    #[test]
    fn csv_roundtrip_is_exact(rows in prop::collection::vec(
        prop::collection::vec(-1.0e9..1.0e9f64, 3..=3), 1..20)) {
        use perfeval::harness::csvio::{parse_csv, write_csv};
        let dir = std::env::temp_dir().join(format!("perfeval_prop_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prop.csv");
        write_csv(&path, &["a", "b", "c"], &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let table = parse_csv(&text).unwrap();
        prop_assert_eq!(table.rows, rows);
    }

    #[test]
    fn minidb_modes_agree_on_random_range_queries(
        lo in 0i64..500_000,
        width in 1i64..500_000,
        seed in 0u64..4,
    ) {
        use perfeval::workload::micro::{build_micro_table, MicroConfig, MicroDist};
        let mut catalog = Catalog::new();
        catalog.register(build_micro_table(&MicroConfig {
            rows: 500,
            dist: MicroDist::Uniform { range: 1_000_000 },
            correlation: 0.0,
            seed,
        })).unwrap();
        let sql = format!(
            "SELECT COUNT(*) AS n, MIN(v), MAX(v) FROM micro WHERE v >= {lo} AND v < {}",
            lo + width
        );
        let a = Session::new(catalog.clone()).with_mode(ExecMode::Debug)
            .query(&sql).run().unwrap();
        let b = Session::new(catalog).with_mode(ExecMode::Optimized)
            .query(&sql).run().unwrap();
        prop_assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn buffer_pool_hit_rate_in_unit_interval(pages in 1usize..50, reads in 1u64..200) {
        let mut pool = BufferPool::new(Disk::laptop_5400rpm(), pages);
        let mut rng = SplitMix64::new(reads);
        for _ in 0..reads {
            pool.read((0, rng.next_below(100)));
        }
        let rate = pool.hit_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
        prop_assert_eq!(pool.logical_reads(), reads);
        prop_assert!(pool.resident_pages() <= pages);
    }
}

proptest! {
    #[test]
    fn hash_join_matches_nested_loop_reference(
        left_keys in prop::collection::vec(0i64..8, 1..30),
        right_keys in prop::collection::vec(0i64..8, 1..30),
    ) {
        // Build two tiny tables and compare the engine's hash join against
        // a naive nested-loop reference computed here.
        let mut s = Session::new(Catalog::new());
        s.query("CREATE TABLE l (lk INT, lv INT)").run().unwrap();
        s.query("CREATE TABLE r (rk INT, rv INT)").run().unwrap();
        for (i, k) in left_keys.iter().enumerate() {
            s.query(&format!("INSERT INTO l VALUES ({k}, {i})")).run().unwrap();
        }
        for (j, k) in right_keys.iter().enumerate() {
            s.query(&format!("INSERT INTO r VALUES ({k}, {j})")).run().unwrap();
        }
        let result = s
            .query("SELECT lv, rv FROM l JOIN r ON lk = rk ORDER BY lv, rv").run()
            .unwrap();
        // Reference: nested loops.
        let mut expected = Vec::new();
        for (i, lk) in left_keys.iter().enumerate() {
            for (j, rk) in right_keys.iter().enumerate() {
                if lk == rk {
                    expected.push(vec![
                        Value::Int(i as i64),
                        Value::Int(j as i64),
                    ]);
                }
            }
        }
        expected.sort_by(|a, b| {
            (a[0].as_i64(), a[1].as_i64()).cmp(&(b[0].as_i64(), b[1].as_i64()))
        });
        prop_assert_eq!(result.rows, expected);
    }

    #[test]
    fn group_by_matches_reference_sums(
        data in prop::collection::vec((0i64..5, -100i64..100), 1..40),
    ) {
        let mut s = Session::new(Catalog::new());
        s.query("CREATE TABLE t (g INT, v INT)").run().unwrap();
        for (g, v) in &data {
            s.query(&format!("INSERT INTO t VALUES ({g}, {v})")).run().unwrap();
        }
        let result = s
            .query("SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g ORDER BY g").run()
            .unwrap();
        let mut reference: std::collections::BTreeMap<i64, (i64, i64)> =
            std::collections::BTreeMap::new();
        for (g, v) in &data {
            let e = reference.entry(*g).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        let expected: Vec<Vec<Value>> = reference
            .into_iter()
            .map(|(g, (sum, n))| vec![Value::Int(g), Value::Int(sum), Value::Int(n)])
            .collect();
        prop_assert_eq!(result.rows, expected);
    }
}

#[test]
fn session_execute_needs_mut_not_consume() {
    // Not a proptest: a regression guard that Session::execute can be
    // called in a loop (replication) without rebuilding state.
    let catalog = generate(&GenConfig {
        scale_factor: 0.0005,
        ..GenConfig::default()
    });
    let mut s = Session::new(catalog);
    for _ in 0..3 {
        let r = s.query("SELECT COUNT(*) FROM lineitem").run().unwrap();
        assert_eq!(r.row_count(), 1);
    }
}
