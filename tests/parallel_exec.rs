//! Integration tests for the `perfeval-exec` scheduler: the determinism
//! contract (parallel ≡ serial, bit for bit, whatever the thread count or
//! run-order policy) and the resumable result cache.

use perfeval::core::runner::ResponseTable;
use perfeval::core::two_level_assignments;
use perfeval::exec::{EnvFingerprint, ResultCache, RunPlan, Scheduler};
use perfeval::prelude::*;
use proptest::prelude::*;

const FACTOR_NAMES: [&str; 4] = ["A", "B", "C", "D"];

/// A deterministic response surface over a 2^k design: a linear model in
/// the factor signs plus a replicate-dependent term, so any scheduling bug
/// that swaps replicates (not just runs) also shows up.
struct PolyExperiment {
    coeffs: Vec<f64>,
    names: Vec<String>,
}

impl SyncExperiment for PolyExperiment {
    fn respond(&self, a: &Assignment, replicate: usize) -> f64 {
        let mut y = 10.0;
        for (c, n) in self.coeffs.iter().zip(&self.names) {
            y += c * a.num(n).unwrap();
        }
        y + replicate as f64 * 0.015625
    }
}

proptest! {
    /// The tentpole acceptance property: `run_parallel(n)` produces a
    /// [`ResponseTable`] bit-identical to the serial run for random 2^k
    /// designs, coefficient surfaces, replication counts, and thread
    /// counts.
    #[test]
    fn run_parallel_is_bit_identical_to_serial_on_random_two_level_designs(
        k in 2usize..5,
        threads in 2usize..9,
        reps in 1usize..5,
        coeffs in prop::collection::vec(-100.0..100.0f64, 4),
    ) {
        let names = &FACTOR_NAMES[..k];
        let design = TwoLevelDesign::full(names);
        let experiment = PolyExperiment {
            coeffs: coeffs[..k].to_vec(),
            names: names.iter().map(|n| (*n).to_string()).collect(),
        };
        let runner = Runner::new(reps);
        let serial = runner.run_two_level_sync(&design, &experiment);
        let parallel = runner.run_two_level_parallel(&design, &experiment, threads);
        prop_assert_eq!(parallel, serial);
    }

    /// Run order is a *policy*, never a factor: executing the same plan
    /// under AsDesigned, Shuffled(seed), and Blocked ordering yields the
    /// same table on any thread count.
    #[test]
    fn order_policy_never_changes_results(
        seed in any::<u64>(),
        threads in 1usize..6,
        reps in 1usize..4,
    ) {
        let design = TwoLevelDesign::full(&["A", "B", "C"]);
        let experiment = PolyExperiment {
            coeffs: vec![3.0, -2.0, 0.5],
            names: vec!["A".into(), "B".into(), "C".into()],
        };
        let plan = RunPlan::expand(
            two_level_assignments(&design),
            RunProtocol::hot(0, reps),
            seed,
        );
        let env = EnvFingerprint::simulated("order-policy");
        let run = |order: OrderPolicy| -> ResponseTable {
            Scheduler::new(threads)
                .with_order(order)
                .execute(&plan, &experiment, &ResultCache::disabled(), &env, None)
                .0
        };
        let as_designed = run(OrderPolicy::AsDesigned);
        prop_assert_eq!(run(OrderPolicy::Shuffled(seed)), as_designed.clone());
        prop_assert_eq!(run(OrderPolicy::Blocked), as_designed);
    }
}

/// Counts real measurements so the cache test can prove a resumed sweep
/// performs none.
#[derive(Default)]
struct CountingExperiment(std::sync::atomic::AtomicUsize);

impl CountingExperiment {
    fn measurements(&self) -> usize {
        self.0.load(std::sync::atomic::Ordering::SeqCst)
    }
}

impl SyncExperiment for CountingExperiment {
    fn respond(&self, a: &Assignment, replicate: usize) -> f64 {
        self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        a.num("A").unwrap() * 5.0 + a.num("B").unwrap() + replicate as f64
    }
}

/// The cache acceptance criterion end to end: re-running a completed sweep
/// against the same cache directory (through a fresh handle, as a new
/// process would) executes zero new measurements and reproduces the table.
#[test]
fn resumed_sweep_executes_zero_new_measurements() {
    let dir = std::env::temp_dir().join(format!("perfeval-resume-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let design = TwoLevelDesign::full(&["A", "B"]);
    let plan = RunPlan::expand(two_level_assignments(&design), RunProtocol::hot(0, 3), 42);
    let units = plan.unit_count();
    let experiment = CountingExperiment::default();
    let env = EnvFingerprint::simulated("resume-integration");
    let scheduler = Scheduler::new(4);

    let cache = ResultCache::open(&dir).expect("cache dir");
    let (first, report) = scheduler.execute(&plan, &experiment, &cache, &env, None);
    assert_eq!(report.executed, units);
    assert_eq!(experiment.measurements(), units);

    let reopened = ResultCache::open(&dir).expect("cache dir");
    let (second, resumed) = scheduler.execute(&plan, &experiment, &reopened, &env, None);
    assert_eq!(resumed.executed, 0, "resume must execute nothing");
    assert_eq!(resumed.from_cache, units);
    assert_eq!(
        experiment.measurements(),
        units,
        "no new measurements on resume"
    );
    assert_eq!(second, first);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
