//! Cross-crate observability integration: the span tracer driven through
//! the real engine and scheduler, and the exporters' format contracts
//! checked property-style.

use perfeval::exec::{parallel_map_traced, EnvFingerprint, OrderPolicy, ResultCache, Scheduler};
use perfeval::measure::AtomicClock;
use perfeval::minidb::Session;
use perfeval::trace::{chrome_trace_json, folded_stacks, render_tree, validate_chrome, Tracer};
use perfeval::workload::dbgen::{generate, GenConfig};
use proptest::prelude::*;

fn small_catalog() -> perfeval::minidb::Catalog {
    generate(&GenConfig {
        scale_factor: 0.001,
        ..GenConfig::default()
    })
}

#[test]
fn traced_query_and_sweep_stitch_into_one_timeline() {
    let tracer = Tracer::new();
    tracer.label_thread("coordinator");

    // A traced minidb query on the coordinator thread...
    let mut session = Session::new(small_catalog());
    session
        .query("SELECT COUNT(*) FROM lineitem")
        .traced(&tracer)
        .run()
        .unwrap();

    // ...and a traced scheduler sweep fanning out to workers, recorded
    // into the *same* tracer.
    let plan = {
        use perfeval::core::factor::Level;
        use perfeval::core::runner::Assignment;
        use perfeval::measure::RunProtocol;
        let assignments = (0..4)
            .map(|i| Assignment::new(vec![("x".into(), Level::Num(i as f64))]))
            .collect();
        perfeval::exec::RunPlan::expand(assignments, RunProtocol::hot(0, 2), 0)
    };
    let exp = |a: &perfeval::core::runner::Assignment| a.num("x").unwrap();
    Scheduler::new(2)
        .with_order(OrderPolicy::AsDesigned)
        .execute_traced(
            &plan,
            &exp,
            &ResultCache::disabled(),
            &EnvFingerprint::simulated("trace-obs"),
            None,
            Some(&tracer),
        );

    let trace = tracer.snapshot();
    assert!(trace.lanes.len() >= 2, "coordinator + worker lanes");
    let coordinator = trace
        .lanes
        .iter()
        .find(|l| l.label == "coordinator")
        .expect("labelled coordinator lane");
    assert!(coordinator.records.iter().any(|s| s.name == "query"));
    assert!(coordinator.records.iter().any(|s| s.name == "sweep"));
    assert_eq!(
        trace
            .lanes
            .iter()
            .flat_map(|l| l.records.iter())
            .filter(|s| s.name.starts_with("unit "))
            .count(),
        8
    );

    // Every exporter accepts the stitched timeline.
    let json = chrome_trace_json(&trace);
    let summary = validate_chrome(&json).expect("well-formed Chrome trace");
    assert_eq!(summary.thread_names.len(), trace.lanes.len());
    assert!(render_tree(&trace).contains("sweep"));
    let folded = folded_stacks(&trace);
    assert!(folded.contains("coordinator;query;"), "query phases nest");
    assert!(folded.contains("coordinator;sweep"), "sweep on coordinator");
}

#[test]
fn worker_lanes_carry_their_pool_names() {
    let tracer = Tracer::new();
    parallel_map_traced(16, 3, Some(&tracer), |i| {
        drop(tracer.span("work"));
        i
    });
    let trace = tracer.snapshot();
    let workers: Vec<_> = trace
        .lanes
        .iter()
        .filter(|l| l.label.starts_with("worker-"))
        .collect();
    assert!(workers.len() >= 2, "got {} worker lanes", workers.len());
    assert_eq!(
        workers.iter().flat_map(|l| l.records.iter()).count(),
        16,
        "every unit recorded exactly one span"
    );
}

#[test]
fn ring_overflow_is_accounted_not_silent() {
    let tracer = Tracer::with_capacity(8);
    for i in 0..50 {
        drop(tracer.span(&format!("s{i}")));
    }
    let stats = tracer.stats();
    assert_eq!(stats.recorded, 8, "ring keeps only the newest spans");
    assert_eq!(stats.dropped, 42, "evictions are counted");
    // The drop count survives into the export.
    let json = chrome_trace_json(&tracer.snapshot());
    let summary = validate_chrome(&json).unwrap();
    assert_eq!(summary.dropped, 42);
}

/// Replays a random open/close script against a deterministic clock,
/// returning the resulting trace. Commands: even byte = open a span,
/// odd byte = close the deepest open span. Whatever remains open at the
/// end is closed by guard drop order.
fn run_script(script: &[u32], capacity: usize) -> perfeval::trace::Trace {
    let clock = AtomicClock::new();
    let tracer = Tracer::custom(capacity, clock.clone());
    let mut open = Vec::new();
    for (i, b) in script.iter().enumerate() {
        clock.advance_ns(1 + u64::from(*b));
        if b % 2 == 0 {
            let mut g = tracer.span(&format!("op{}", b / 16));
            g.attr("step", i);
            open.push(g);
        } else {
            drop(open.pop());
        }
    }
    clock.advance_ns(1);
    drop(open);
    tracer.snapshot()
}

proptest! {
    #[test]
    fn chrome_export_is_well_formed_for_arbitrary_nesting(
        script in prop::collection::vec(0u32..256, 0..200),
        capacity in 1usize..64,
    ) {
        let trace = run_script(&script, capacity);
        let json = chrome_trace_json(&trace);
        let summary = validate_chrome(&json)
            .map_err(TestCaseError::fail)?;
        // One B and one E per retained span, one thread_name metadata
        // event per lane, one process_name event for the document.
        let retained: usize = trace.lanes.iter().map(|l| l.records.len()).sum();
        prop_assert_eq!(summary.spans, retained);
        prop_assert_eq!(summary.events, 2 * retained + trace.lanes.len() + 1);
    }

    #[test]
    fn exporters_never_panic_on_random_scripts(
        script in prop::collection::vec(0u32..256, 0..200),
    ) {
        let trace = run_script(&script, 16);
        let _ = render_tree(&trace);
        let _ = folded_stacks(&trace);
    }
}
