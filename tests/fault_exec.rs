//! Integration tests for fault-contained execution: the failure taxonomy
//! is part of the determinism contract. A fault schedule is a pure
//! function of `(site, key, attempt, seed)` — never of arrival order — so
//! the same [`RunPlan`] seed plus the same armed faults must yield an
//! identical [`perfeval::exec::ExecReport`] (per-unit outcomes, retry
//! counts, quarantine set) across repeated runs, thread counts, and
//! run-order policies. Timeout behavior is asserted separately, without
//! property machinery, because wall clocks need wide margins.

use perfeval::core::two_level_assignments;
use perfeval::exec::{EnvFingerprint, RunPlan};
use perfeval::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Silences the default panic printout for injected panics only: the
/// properties below fire thousands of them on purpose, and each would
/// otherwise dump a backtrace. Real failures still print.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<perfeval::fault::TimeoutSignal>()
                .is_some()
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.starts_with("injected fault"))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.starts_with("injected fault"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

/// The system under test: a pure function of (assignment, replicate), so
/// a retried measurement reproduces the original bit for bit.
struct Surface;

impl SyncExperiment for Surface {
    fn respond(&self, a: &Assignment, replicate: usize) -> f64 {
        7.0 * a.num("A").unwrap() - 3.0 * a.num("B").unwrap()
            + 2.0 * a.num("C").unwrap()
            + replicate as f64 * 0.03125
    }
}

fn plan_for(seed: u64, reps: usize) -> RunPlan {
    let design = TwoLevelDesign::full(&["A", "B", "C"]);
    RunPlan::expand(
        two_level_assignments(&design),
        RunProtocol::hot(0, reps),
        seed,
    )
}

/// Retry policy with zero backoff: the properties run thousands of
/// sweeps, and the backoff *choice* is already covered by unit tests.
fn fast_retries(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        backoff_ms: 0.0,
        deadline_ms: None,
    }
}

proptest! {
    /// The satellite acceptance property: same plan seed + same fault
    /// schedule => identical ExecReport taxonomy (outcomes, attempts,
    /// retry totals, quarantine set) and identical responses, across
    /// repeated runs, thread counts, and order policies. Transient faults
    /// exhaust before the retry budget, so the recovered table must also
    /// equal the fault-free one.
    #[test]
    fn fault_schedule_and_taxonomy_replay_identically(
        seed in any::<u64>(),
        faultseed in any::<u64>(),
        threads in 2usize..7,
        reps in 1usize..4,
        permille in 100u64..700,
    ) {
        quiet_injected_panics();
        let plan = plan_for(seed, reps);
        let env = EnvFingerprint::simulated("fault-replay");
        let faults = || {
            Arc::new(FaultRegistry::new(faultseed).armed_transient(
                "exec.unit.run",
                Trigger::Seeded { permille: permille as u16, seed: faultseed },
                3,
                FaultAction::Panic,
            ))
        };
        let sweep = |threads: usize, order: OrderPolicy| {
            Scheduler::new(threads)
                .with_order(order)
                .with_policy(fast_retries(3))
                .with_faults(faults())
                .execute_contained(&plan, &Surface, &ResultCache::disabled(), &env, None)
        };

        let baseline = sweep(1, OrderPolicy::AsDesigned);
        prop_assert!(baseline.is_complete(), "3 attempts absorb 2 transient failures");

        // Repeated run: the schedule replays, not just the summary.
        let again = sweep(1, OrderPolicy::AsDesigned);
        prop_assert_eq!(&again.report.units, &baseline.report.units);
        prop_assert_eq!(again.report.retries, baseline.report.retries);

        // Threads and order are not factors of the failure taxonomy.
        for order in [OrderPolicy::AsDesigned, OrderPolicy::Shuffled(seed), OrderPolicy::Blocked] {
            let parallel = sweep(threads, order);
            prop_assert_eq!(&parallel.report.units, &baseline.report.units);
            prop_assert_eq!(&parallel.report.quarantined, &baseline.report.quarantined);
            prop_assert_eq!(parallel.report.retries, baseline.report.retries);
            prop_assert_eq!(&parallel.responses, &baseline.responses);
        }

        // Recovery is a re-measurement, not a different experiment.
        let clean = Scheduler::new(1)
            .execute(&plan, &Surface, &ResultCache::disabled(), &env, None)
            .0;
        prop_assert_eq!(baseline.table.as_ref().expect("complete"), &clean);
    }

    /// Persistent faults quarantine exactly the armed cells — predictable
    /// from the trigger alone, identical under any execution schedule,
    /// and the surviving cells still carry fault-free responses.
    #[test]
    fn persistent_faults_quarantine_the_same_cells_everywhere(
        seed in any::<u64>(),
        faultseed in any::<u64>(),
        threads in 2usize..7,
        reps in 1usize..4,
        modulus in 2u64..6,
    ) {
        quiet_injected_panics();
        let plan = plan_for(seed, reps);
        let env = EnvFingerprint::simulated("fault-quarantine");
        let remainder = faultseed % modulus;
        let faults = || {
            Arc::new(FaultRegistry::new(faultseed).armed_always(
                "exec.unit.run",
                Trigger::KeyModulo { modulus, remainder },
                FaultAction::Panic,
            ))
        };
        let expected: Vec<usize> = (0..plan.unit_count())
            .filter(|&u| u as u64 % modulus == remainder)
            .collect();

        let baseline = Scheduler::new(1)
            .with_policy(fast_retries(2))
            .with_faults(faults())
            .execute_contained(&plan, &Surface, &ResultCache::disabled(), &env, None);
        prop_assert_eq!(&baseline.report.quarantined, &expected);
        prop_assert!(baseline.table.is_none(), "partial sweeps never assemble");
        prop_assert_eq!(baseline.report.units.len(), plan.unit_count());

        let parallel = Scheduler::new(threads)
            .with_order(OrderPolicy::Shuffled(seed))
            .with_policy(fast_retries(2))
            .with_faults(faults())
            .execute_contained(&plan, &Surface, &ResultCache::disabled(), &env, None);
        prop_assert_eq!(&parallel.report.units, &baseline.report.units);
        prop_assert_eq!(&parallel.report.quarantined, &baseline.report.quarantined);
        prop_assert_eq!(&parallel.responses, &baseline.responses);

        // Every surviving cell measured its fault-free value.
        let clean = Scheduler::new(1)
            .execute_contained(&plan, &Surface, &ResultCache::disabled(), &env, None);
        for u in 0..plan.unit_count() {
            if expected.contains(&u) {
                prop_assert!(baseline.responses[u].is_none());
            } else {
                prop_assert_eq!(baseline.responses[u], clean.responses[u]);
            }
        }
    }
}

/// Timeouts, outside the property loop: wall-clock margins are wide (a
/// 10 s hang against a 25 ms deadline) so shared CI runners cannot flake
/// it, and the *outcome* — not the timing — is asserted deterministic.
#[test]
fn hang_timeouts_are_deterministic_outcomes() {
    quiet_injected_panics();
    let plan = plan_for(99, 1);
    let env = EnvFingerprint::simulated("fault-timeout");
    let run = || {
        let faults = Arc::new(FaultRegistry::new(0).armed_always(
            "exec.unit.run",
            Trigger::Keys(vec![1, 4]),
            FaultAction::Hang { ms: 10_000.0 },
        ));
        let t0 = std::time::Instant::now();
        let sweep = Scheduler::new(4)
            .with_policy(RetryPolicy::default().with_deadline_ms(25.0))
            .with_faults(faults)
            .execute_contained(&plan, &Surface, &ResultCache::disabled(), &env, None);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(8),
            "watchdog must cancel 10 s hangs well before they finish"
        );
        sweep
    };
    let first = run();
    let second = run();
    assert_eq!(first.report.quarantined, vec![1, 4]);
    for u in [1usize, 4] {
        assert_eq!(first.report.units[u].outcome, UnitOutcome::TimedOut);
    }
    assert_eq!(first.report.units, second.report.units);
    assert_eq!(first.responses, second.responses);
    assert!(first.table.is_none());
}
