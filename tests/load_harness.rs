//! Workspace-level tests for the load harness: the coordinated-omission
//! divergence experiment, a 64-client closed-loop soak with bit-identity
//! checking, and property tests over the log-bucketed histogram.

use std::sync::Arc;

use perfeval::fault::{FaultAction, FaultRegistry, Trigger};
use perfeval::load::{expected_checksums, Arrival, Dialer, LoadReport, LoadRunner, LoadSpec};
use perfeval::net::{LoopbackEndpoint, Server, ServerStats, Transport};
use perfeval::prelude::{Catalog, DataType, LogHistogram, Session, TableBuilder, Value};
use proptest::prelude::*;

fn small_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    let mut t = TableBuilder::new("nums")
        .column("x", DataType::Int)
        .column("y", DataType::Float)
        .build();
    for i in 0..400 {
        t.push_row(vec![Value::Int(i), Value::Float(i as f64 / 16.0)])
            .unwrap();
    }
    catalog.register(t).unwrap();
    catalog
}

fn mix() -> Vec<String> {
    vec![
        "SELECT COUNT(*) FROM nums WHERE x < 200".to_owned(),
        "SELECT SUM(y) FROM nums WHERE x >= 100".to_owned(),
    ]
}

/// Runs one arm against a loopback server whose sessions carry
/// `session_faults`, returning the report and the server's own stats.
fn run_arm(
    spec: LoadSpec,
    reps: usize,
    session_faults: Option<Arc<FaultRegistry>>,
) -> (LoadReport, ServerStats) {
    let ep = LoopbackEndpoint::new();
    let dial = ep.connector();
    let server = Server::builder().transport(ep).serve(move || {
        let session = Session::new(small_catalog());
        match &session_faults {
            Some(f) => session.with_faults(Arc::clone(f)),
            None => session,
        }
    });
    let dialer: Dialer = Arc::new(move || Ok(Box::new(dial.connect()?) as Box<dyn Transport>));
    let report = LoadRunner::new(spec.clone(), dialer)
        .expecting(expected_checksums(small_catalog(), &spec.mix))
        .run_replicated(reps);
    (report, server.wait())
}

/// The coordinated-omission experiment: a server that stalls 400 ms once
/// per session, under an open-loop paced schedule. Requests *behind* the
/// stall are sent late — each one's send→recv time is tiny, so the naive
/// histogram hides the incident; measuring from the intended schedule
/// time shows what a real open arrival process would have experienced.
#[test]
fn intended_time_recording_exposes_a_stall_the_naive_clock_hides() {
    // One session, one stall at its 1000th statement: exactly one of the
    // 2000 requests is slow on the naive clock, so naive p99.9 (rank 1998
    // of 2000) excludes it — precisely the coordinated-omission blind
    // spot. The ~400 requests queued behind the stall are each sent late
    // but answered quickly, invisible to send→recv timing.
    let faults = Arc::new(FaultRegistry::new(7).armed_always(
        "minidb.execute",
        Trigger::Key(1_000),
        FaultAction::DelayMs(400.0),
    ));
    let spec =
        LoadSpec::new("co/stall", 1, 2_000, Arrival::OpenPaced { rate_qps: 800.0 }).mix(mix());
    let (report, _) = run_arm(spec, 1, Some(faults));

    assert!(report.is_complete(), "{:?}", report.render_lines());
    assert_eq!(report.requests, 2_000);
    let intended_p999 = report.intended.quantile(0.999).unwrap();
    let naive_p999 = report.naive.quantile(0.999).unwrap();
    assert!(
        intended_p999 > 100.0,
        "intended-time p99.9 must surface the 400 ms stall, got {intended_p999:.3} ms"
    );
    assert!(
        naive_p999 < 50.0,
        "naive p99.9 should hide the stall (that is the bug being \
         demonstrated), got {naive_p999:.3} ms"
    );
    assert!(
        report.co_gap_p999_ms() > 50.0,
        "CO gap: intended {intended_p999:.3} ms vs naive {naive_p999:.3} ms"
    );
    // The naive clock does see the two stalled requests themselves at the
    // very top of the distribution.
    assert!(report.naive.max() > 300.0);
}

/// The CI soak: 64 concurrent closed-loop sessions, every result
/// checksummed against serial execution (bit-identical floats), twice.
#[test]
fn sixty_four_client_soak_is_clean_and_bit_identical() {
    let spec = LoadSpec::new("soak/64", 64, 640, Arrival::Closed { think_ms: 0.2 }).mix(mix());
    let (report, stats) = run_arm(spec, 2, None);

    assert!(report.is_complete(), "{:?}", report.render_lines());
    assert_eq!(report.requests, 1_280, "640 requests x 2 runs");
    assert_eq!(report.checksum_mismatches, 0, "load path == serial path");
    assert_eq!(report.errors, 0);
    assert_eq!(report.dropped_sessions, 0);
    assert_eq!(report.intended.count(), 1_280);
    assert!(report.max_in_flight <= 64);
    assert_eq!(stats.connections, 128, "64 fresh connections per run");
    assert_eq!(stats.queries, 1_280);
}

/// A flapping client (every send fails once at the injection site) is
/// contained: it reconnects and retries, nobody is dropped, and the
/// answers are still bit-identical.
#[test]
fn flapping_client_reconnects_without_losing_requests_or_correctness() {
    let ep = LoopbackEndpoint::new();
    let dial = ep.connector();
    let server = Server::builder()
        .transport(ep)
        .serve(|| Session::new(small_catalog()));
    let dialer: Dialer = Arc::new(move || Ok(Box::new(dial.connect()?) as Box<dyn Transport>));
    let load_faults = Arc::new(FaultRegistry::new(11).armed_always(
        "load.send",
        Trigger::Key(2),
        FaultAction::FailIo,
    ));
    let spec = LoadSpec::new("flap/4", 4, 80, Arrival::Closed { think_ms: 0.0 }).mix(mix());
    let report = LoadRunner::new(spec.clone(), dialer)
        .expecting(expected_checksums(small_catalog(), &spec.mix))
        .with_faults(load_faults)
        .run();
    server.shutdown();

    assert!(report.is_complete(), "{:?}", report.render_lines());
    assert_eq!(
        report.requests, 80,
        "every request completed despite flapping"
    );
    assert_eq!(
        report.reconnects, 20,
        "client 2's 20 requests each reconnected"
    );
    assert_eq!(report.checksum_mismatches, 0);
}

// ---- LogHistogram properties ----

fn latencies(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1.0e-3..1.0e5f64, min_len..120)
}

/// The exact quantile under the histogram's own rank definition:
/// rank = ceil(q * (n - 1)) over the sorted sample.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * (sorted.len() - 1) as f64).ceil() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

proptest! {
    #[test]
    fn quantiles_stay_within_the_relative_error_bound(
        data in latencies(1),
        q in 0.0..1.0f64,
        eps in 0.005..0.05f64,
    ) {
        let mut h = LogHistogram::new(eps).unwrap();
        for &v in &data {
            h.record(v);
        }
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = exact_quantile(&sorted, q);
        let est = h.quantile(q).unwrap();
        prop_assert!(
            (est - exact).abs() <= eps * exact + 1e-12,
            "q={} est={} exact={} eps={}", q, est, exact, eps
        );
    }

    #[test]
    fn extreme_quantiles_are_exact(data in latencies(1)) {
        let mut h = LogHistogram::latency_default();
        for &v in &data {
            h.record(v);
        }
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(h.quantile(0.0).unwrap(), sorted[0]);
        prop_assert_eq!(h.quantile(1.0).unwrap(), sorted[sorted.len() - 1]);
    }

    #[test]
    fn merge_is_indistinguishable_from_concatenation(
        a in latencies(1),
        b in latencies(1),
    ) {
        let mut ha = LogHistogram::latency_default();
        let mut hb = LogHistogram::latency_default();
        let mut hc = LogHistogram::latency_default();
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge(&hb).unwrap();
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.occupied_buckets(), hc.occupied_buckets());
        prop_assert_eq!(ha.min(), hc.min());
        prop_assert_eq!(ha.max(), hc.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(ha.quantile(q), hc.quantile(q));
        }
    }

    #[test]
    fn mismatched_resolutions_refuse_to_merge(data in latencies(1)) {
        let mut coarse = LogHistogram::new(0.05).unwrap();
        let mut fine = LogHistogram::new(0.01).unwrap();
        for &v in &data {
            coarse.record(v);
            fine.record(v);
        }
        prop_assert!(coarse.merge(&fine).is_err());
    }
}
