//! Integration tests for the SQL surface added beyond the minimal query
//! subset: DDL/DML, DISTINCT, and COUNT(DISTINCT …) — exercised through
//! both engines.

use perfeval::prelude::*;

fn fresh_session() -> Session {
    Session::new(Catalog::new())
}

#[test]
fn create_insert_select_roundtrip() {
    let mut s = fresh_session();
    let r = s
        .query("CREATE TABLE fruit (id INT, name VARCHAR(20), price FLOAT, fresh BOOL)")
        .run()
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(0)]]);

    let r = s
        .query(
            "INSERT INTO fruit VALUES \
             (1, 'apple', 0.5, TRUE), (2, 'orange', 0.8, FALSE), (3, 'pear', -0.25, TRUE)",
        )
        .run()
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(3)]]);

    let r = s
        .query("SELECT id, name, price FROM fruit WHERE fresh = TRUE ORDER BY id")
        .run()
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::Int(1), Value::Str("apple".into()), Value::Float(0.5)],
            vec![
                Value::Int(3),
                Value::Str("pear".into()),
                Value::Float(-0.25)
            ],
        ]
    );
}

#[test]
fn create_table_errors() {
    let mut s = fresh_session();
    s.query("CREATE TABLE t (a INT)").run().unwrap();
    assert!(matches!(
        s.query("CREATE TABLE t (a INT)").run(),
        Err(perfeval::minidb::DbError::DuplicateTable(_))
    ));
    assert!(s.query("CREATE TABLE u (a WIBBLE)").run().is_err());
    assert!(s.query("CREATE TABLE v ()").run().is_err());
}

#[test]
fn insert_type_checks() {
    let mut s = fresh_session();
    s.query("CREATE TABLE t (a INT, b TEXT)").run().unwrap();
    assert!(s.query("INSERT INTO t VALUES ('oops', 'x')").run().is_err());
    assert!(s.query("INSERT INTO t VALUES (1)").run().is_err());
    assert!(s
        .query("INSERT INTO missing VALUES (1, 'x')")
        .run()
        .is_err());
    // Nothing was inserted by the failed statements.
    let r = s.query("SELECT COUNT(*) FROM t").run().unwrap();
    assert_eq!(r.rows[0][0], Value::Int(0));
}

#[test]
fn select_distinct_dedups_in_both_engines() {
    for mode in [ExecMode::Debug, ExecMode::Optimized] {
        let mut s = Session::new(Catalog::new()).with_mode(mode);
        s.query("CREATE TABLE t (region TEXT, qty INT)")
            .run()
            .unwrap();
        s.query(
            "INSERT INTO t VALUES ('east', 1), ('west', 2), ('east', 1), \
             ('east', 3), ('west', 2)",
        )
        .run()
        .unwrap();
        let r = s
            .query("SELECT DISTINCT region, qty FROM t ORDER BY region, qty")
            .run()
            .unwrap();
        assert_eq!(r.row_count(), 3, "{mode}");
        assert_eq!(r.rows[0], vec![Value::Str("east".into()), Value::Int(1)]);
        // DISTINCT on a single column.
        let r = s
            .query("SELECT DISTINCT region FROM t ORDER BY region")
            .run()
            .unwrap();
        assert_eq!(r.row_count(), 2, "{mode}");
    }
}

#[test]
fn count_distinct() {
    for mode in [ExecMode::Debug, ExecMode::Optimized] {
        let mut s = Session::new(Catalog::new()).with_mode(mode);
        s.query("CREATE TABLE t (g TEXT, v INT)").run().unwrap();
        s.query(
            "INSERT INTO t VALUES ('a', 1), ('a', 1), ('a', 2), ('b', 5), \
             ('b', 5), ('b', 5)",
        )
        .run()
        .unwrap();
        let r = s
            .query(
                "SELECT g, COUNT(*) AS n, COUNT(DISTINCT v) AS nd FROM t \
                 GROUP BY g ORDER BY g",
            )
            .run()
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Str("a".into()), Value::Int(3), Value::Int(2)],
                vec![Value::Str("b".into()), Value::Int(3), Value::Int(1)],
            ],
            "{mode}"
        );
    }
}

#[test]
fn distinct_inside_non_count_rejected() {
    let mut s = fresh_session();
    s.query("CREATE TABLE t (v INT)").run().unwrap();
    assert!(s.query("SELECT SUM(DISTINCT v) FROM t").run().is_err());
}

#[test]
fn q16_counts_distinct_suppliers() {
    let catalog = generate(&GenConfig {
        scale_factor: 0.001,
        ..GenConfig::default()
    });
    let mut s = Session::new(catalog);
    let r = s.query(&perfeval::workload::queries::q16()).run().unwrap();
    // Each part has exactly 4 suppliers in the generator, so every group's
    // distinct-supplier count is bounded by 4 per part and positive.
    assert!(r.row_count() > 10);
    for row in &r.rows {
        let cnt = row[3].as_i64().unwrap();
        assert!(cnt >= 1);
    }
}

#[test]
fn explain_shows_distinct_node() {
    let mut s = fresh_session();
    s.query("CREATE TABLE t (a INT)").run().unwrap();
    let plan = s.explain("SELECT DISTINCT a FROM t ORDER BY a").unwrap();
    assert!(plan.contains("Distinct"), "{plan}");
    let sorted_line = plan.lines().position(|l| l.contains("Sort")).unwrap();
    let distinct_line = plan.lines().position(|l| l.contains("Distinct")).unwrap();
    assert!(
        distinct_line > sorted_line,
        "Distinct beneath Sort:\n{plan}"
    );
}

#[test]
fn ddl_statements_have_no_plan() {
    let s = fresh_session();
    assert!(s.explain("CREATE TABLE t (a INT)").is_err());
}

#[test]
fn script_of_statements_builds_a_workload() {
    // The harness use case: a fixture script instead of hand-built tables.
    let script = [
        "CREATE TABLE runs (config TEXT, ms FLOAT)",
        "INSERT INTO runs VALUES ('dbg', 6.78), ('dbg', 6.84), ('dbg', 6.57)",
        "INSERT INTO runs VALUES ('opt', 3.65), ('opt', 3.66), ('opt', 3.71)",
    ];
    let mut s = fresh_session();
    for stmt in script {
        s.query(stmt).run().unwrap();
    }
    let r = s
        .query(
            "SELECT config, AVG(ms) AS mean, COUNT(*) AS n FROM runs \
             GROUP BY config ORDER BY config",
        )
        .run()
        .unwrap();
    assert_eq!(r.row_count(), 2);
    assert_eq!(r.rows[0][0], Value::Str("dbg".into()));
    let dbg_mean = r.rows[0][1].as_f64().unwrap();
    let opt_mean = r.rows[1][1].as_f64().unwrap();
    assert!((dbg_mean - 6.73).abs() < 0.01);
    assert!(dbg_mean > 1.5 * opt_mean);
}

#[test]
fn topn_fusion_preserves_results_exactly() {
    use perfeval::minidb::optimizer::OptimizerConfig;
    let catalog = generate(&GenConfig {
        scale_factor: 0.002,
        ..GenConfig::default()
    });
    // Queries with ties at the cut boundary are the hard case.
    let queries = [
        "SELECT l_quantity FROM lineitem ORDER BY l_quantity DESC LIMIT 25",
        "SELECT l_quantity, l_orderkey, l_extendedprice FROM lineitem \
         ORDER BY l_quantity, l_orderkey LIMIT 40",
        "SELECT o_custkey, COUNT(*) AS cnt FROM orders GROUP BY o_custkey \
         ORDER BY cnt DESC, o_custkey LIMIT 10",
    ];
    for mode in [ExecMode::Debug, ExecMode::Optimized] {
        let mut fused = Session::new(catalog.clone()).with_mode(mode);
        let mut plain = Session::new(catalog.clone()).with_mode(mode);
        plain.set_optimizer(OptimizerConfig {
            topn_fusion: false,
            ..OptimizerConfig::all()
        });
        for sql in queries {
            let a = fused.query(sql).run().unwrap();
            let b = plain.query(sql).run().unwrap();
            assert_eq!(a.rows, b.rows, "{mode}: {sql}");
        }
    }
}

#[test]
fn explain_shows_topn_when_fused() {
    let catalog = generate(&GenConfig {
        scale_factor: 0.0005,
        ..GenConfig::default()
    });
    let s = Session::new(catalog.clone());
    let plan = s
        .explain("SELECT l_quantity FROM lineitem ORDER BY l_quantity LIMIT 5")
        .unwrap();
    assert!(plan.contains("TopN 5 by"), "{plan}");
    assert!(!plan.contains("Sort"), "sort must be fused away:\n{plan}");
    // And with fusion off, the plan keeps Sort + Limit.
    let mut off = Session::new(catalog);
    off.set_optimizer(perfeval::minidb::optimizer::OptimizerConfig {
        topn_fusion: false,
        ..perfeval::minidb::optimizer::OptimizerConfig::all()
    });
    let plan = off
        .explain("SELECT l_quantity FROM lineitem ORDER BY l_quantity LIMIT 5")
        .unwrap();
    assert!(plan.contains("Limit 5"), "{plan}");
    assert!(plan.contains("Sort"), "{plan}");
}

#[test]
fn order_by_without_limit_is_not_fused() {
    let catalog = generate(&GenConfig {
        scale_factor: 0.0005,
        ..GenConfig::default()
    });
    let s = Session::new(catalog);
    let plan = s
        .explain("SELECT l_quantity FROM lineitem ORDER BY l_quantity")
        .unwrap();
    assert!(plan.contains("Sort"), "{plan}");
    assert!(!plan.contains("TopN"), "{plan}");
}
