//! Satellite regression: a **dropped connection surfaces as a contained
//! [`UnitOutcome`], never a dead sweep**.
//!
//! Each experiment unit dials the server over an in-process loopback and
//! runs a real query. One unit's client carries a fault registry armed to
//! fail its `net.read` I/O — a deterministic stand-in for the wire dying
//! mid-conversation. The scheduler must classify exactly that unit as
//! quarantined (its panic message names the dropped connection), measure
//! every other unit to the fault-free value, refuse to assemble a partial
//! table, and leave the server alive for the next client.
//!
//! Determinism matters as much as containment: the faulted client is keyed
//! by **unit index** (not by the server's accept ordinal, which depends on
//! arrival order under threads), so the same target drops on every run, at
//! any thread count.

use std::sync::{Arc, OnceLock};

use perfeval::core::two_level_assignments;
use perfeval::exec::{EnvFingerprint, RunPlan, RunUnit, UnitExperiment};
use perfeval::net::{LoopbackConnector, LoopbackEndpoint, Server};
use perfeval::prelude::*;
use perfeval::workload::dbgen::{generate, GenConfig};
use perfeval::workload::queries;

/// The canonical index of the unit whose connection is made to drop.
const DROPPED_UNIT: usize = 3;

fn catalog() -> Catalog {
    static CATALOG: OnceLock<Catalog> = OnceLock::new();
    CATALOG
        .get_or_init(|| {
            generate(&GenConfig {
                scale_factor: 0.002,
                ..GenConfig::default()
            })
        })
        .clone()
}

/// Silences the intentional dropped-connection panics (each would
/// otherwise dump a backtrace into the test log). Real failures print.
fn quiet_dropped_connection_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let ours = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("net connection dropped"));
            if !ours {
                default_hook(info);
            }
        }));
    });
}

/// One unit = one fresh connection + one real query over the wire. The
/// response is a pure function of the assignment (which family query) and
/// the shared read-only catalog, so a re-run reproduces it bit for bit.
struct WireExperiment {
    dial: LoopbackConnector,
    client_faults: Arc<FaultRegistry>,
}

impl UnitExperiment for WireExperiment {
    fn respond_unit(&self, a: &Assignment, unit: &RunUnit) -> f64 {
        let transport = Box::new(self.dial.connect().expect("loopback connect"));
        // Keyed by canonical unit index: the *same* unit drops on every
        // run and at every thread count, because the key does not depend
        // on server accept order.
        let mut client = Client::connect_with(
            transport,
            Arc::clone(&self.client_faults),
            unit.index as u64,
        )
        .unwrap_or_else(|e| panic!("net connection dropped during handshake: {e}"));
        let qi = if a.num("Q").unwrap() > 0.0 { 6 } else { 1 };
        let r = client
            .query(&queries::family(qi))
            .unwrap_or_else(|e| panic!("net connection dropped mid-query: {e}"));
        let _ = client.close();
        r.rows.len() as f64 + r.footer.rows as f64 / 1e6
    }
}

fn plan() -> RunPlan {
    RunPlan::expand(
        two_level_assignments(&TwoLevelDesign::full(&["Q"])),
        RunProtocol::hot(0, 3),
        42,
    )
}

fn sweep(
    threads: usize,
    server_workers: usize,
    client_faults: Arc<FaultRegistry>,
) -> (SweepResult, perfeval::net::ServerStats) {
    let ep = LoopbackEndpoint::new();
    let experiment = WireExperiment {
        dial: ep.connector(),
        client_faults,
    };
    let server = Server::builder()
        .transport(ep)
        .mode(perfeval::net::ServerMode::ThreadPerConn {
            workers: server_workers,
        })
        .serve(|| Session::new(catalog()));
    let result = Scheduler::new(threads)
        .with_policy(RetryPolicy {
            max_attempts: 2,
            backoff_ms: 0.0,
            deadline_ms: None,
        })
        .execute_contained(
            &plan(),
            &experiment,
            &ResultCache::disabled(),
            &EnvFingerprint::simulated("net-exec"),
            None,
        );

    // The server must have survived the dropped connection: a fresh
    // client on the same listener still gets real answers.
    let mut probe = Client::connect(Box::new(experiment.dial.connect().unwrap())).unwrap();
    let r = probe.query(&queries::family(1)).expect("server is alive");
    assert!(!r.rows.is_empty(), "post-sweep probe query returns rows");
    probe.close().unwrap();

    let stats = server.wait();
    assert_eq!(stats.worker_panics, 0, "a wire drop is not a server panic");
    (result, stats)
}

fn dropped_read_faults() -> Arc<FaultRegistry> {
    Arc::new(FaultRegistry::new(0).armed_always(
        "net.read",
        Trigger::Key(DROPPED_UNIT as u64),
        FaultAction::FailIo,
    ))
}

#[test]
fn dropped_connection_is_a_contained_unit_outcome_not_a_dead_sweep() {
    quiet_dropped_connection_panics();

    let (clean, clean_stats) = sweep(1, 1, Arc::new(FaultRegistry::disabled()));
    assert!(clean.is_complete(), "fault-free sweep assembles a table");
    assert_eq!(clean_stats.disconnects, 0, "clean clients part with Bye");

    let (faulted, stats) = sweep(1, 1, dropped_read_faults());
    assert!(
        stats.disconnects >= 1,
        "the injected drop shows up in server disconnect counters"
    );

    // Contained: exactly the targeted unit is quarantined, with the drop
    // named in its taxonomy entry — and the sweep still *returned*, with
    // every other unit measured to its fault-free value.
    assert_eq!(faulted.report.quarantined, vec![DROPPED_UNIT]);
    match &faulted.report.units[DROPPED_UNIT].outcome {
        UnitOutcome::Panicked(msg) => assert!(
            msg.contains("net connection dropped"),
            "taxonomy names the dropped connection, got: {msg}"
        ),
        other => panic!("expected Panicked for the dropped unit, got {other:?}"),
    }
    assert!(
        faulted.table.is_none(),
        "a partial sweep never silently assembles"
    );
    for u in 0..faulted.responses.len() {
        if u == DROPPED_UNIT {
            assert!(faulted.responses[u].is_none());
        } else {
            assert_eq!(
                faulted.responses[u], clean.responses[u],
                "surviving unit {u} measured its fault-free value"
            );
            assert_eq!(faulted.report.units[u].outcome, UnitOutcome::Measured);
        }
    }
    // Both allowed attempts were burned on the persistent wire fault.
    assert_eq!(faulted.report.retries, 1);
}

#[test]
fn dropped_connection_taxonomy_is_identical_under_threads() {
    quiet_dropped_connection_panics();
    let (serial, _) = sweep(1, 1, dropped_read_faults());
    let (parallel, _) = sweep(4, 4, dropped_read_faults());
    assert_eq!(parallel.report.quarantined, serial.report.quarantined);
    assert_eq!(parallel.report.units, serial.report.units);
    assert_eq!(parallel.responses, serial.responses);
}
