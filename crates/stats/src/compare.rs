//! Comparing two alternatives — the "Of apples and oranges" chapter made
//! executable.
//!
//! The tutorial warns that `MINE is better than YOURS!` bar charts are often
//! unjustified: truncated axes, no replication, no error bars. This module
//! provides the honest comparison: Welch's two-sample t procedure for the
//! difference of means, a speedup ratio with propagated uncertainty, and a
//! three-valued verdict that admits *"statistically indifferent"* as an
//! answer.

use crate::ci::ConfidenceInterval;
use crate::descriptive::Summary;
use crate::special::{student_t_cdf, student_t_two_sided};
use crate::{check_finite, StatsError};

/// Outcome of comparing system A against system B on a lower-is-better
/// metric (e.g. response time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComparisonVerdict {
    /// A's mean is lower and the difference is significant at the level.
    AFaster,
    /// B's mean is lower and the difference is significant at the level.
    BFaster,
    /// The confidence interval of the difference contains zero: the systems
    /// are statistically indistinguishable at this level.
    Indistinguishable,
}

impl std::fmt::Display for ComparisonVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ComparisonVerdict::AFaster => "A faster",
            ComparisonVerdict::BFaster => "B faster",
            ComparisonVerdict::Indistinguishable => "statistically indistinguishable",
        };
        f.write_str(s)
    }
}

/// Full result of a two-sample comparison.
#[derive(Debug, Clone)]
pub struct TwoSampleComparison {
    /// Summary of sample A.
    pub a: Summary,
    /// Summary of sample B.
    pub b: Summary,
    /// Confidence interval on the difference of means (A − B).
    pub difference: ConfidenceInterval,
    /// Welch–Satterthwaite degrees of freedom used.
    pub degrees_of_freedom: f64,
    /// Two-sided p-value for the hypothesis "means are equal".
    pub p_value: f64,
    /// The verdict at the requested level (lower mean = faster).
    pub verdict: ComparisonVerdict,
    /// Speedup of A over B, defined as mean(B)/mean(A): >1 means A is
    /// faster on a lower-is-better metric.
    pub speedup: f64,
}

/// Compares the means of two independent samples with Welch's t procedure
/// (no equal-variance assumption — benchmark variances rarely match).
///
/// `level` is the confidence level for the interval on the difference, e.g.
/// 0.95.
///
/// ```
/// use perfeval_stats::compare::{compare_means, ComparisonVerdict};
/// let mine = [10.0, 10.2, 9.8, 10.1, 9.9];
/// let yours = [20.0, 20.4, 19.6, 20.2, 19.8];
/// let cmp = compare_means(&mine, &yours, 0.95).unwrap();
/// assert_eq!(cmp.verdict, ComparisonVerdict::AFaster);
/// assert!(cmp.speedup > 1.9 && cmp.speedup < 2.1);
/// ```
pub fn compare_means(a: &[f64], b: &[f64], level: f64) -> Result<TwoSampleComparison, StatsError> {
    check_finite(a)?;
    check_finite(b)?;
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: a.len().min(b.len()),
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter("level must be in (0,1)"));
    }
    let sa = Summary::from_slice(a);
    let sb = Summary::from_slice(b);
    let va_n = sa.variance() / sa.count() as f64;
    let vb_n = sb.variance() / sb.count() as f64;
    let se = (va_n + vb_n).sqrt();
    let diff = sa.mean() - sb.mean();

    // Welch–Satterthwaite degrees of freedom.
    let df = if se == 0.0 {
        (sa.count() + sb.count() - 2) as f64
    } else {
        (va_n + vb_n).powi(2)
            / (va_n.powi(2) / (sa.count() - 1) as f64 + vb_n.powi(2) / (sb.count() - 1) as f64)
    };

    let (half_width, p_value) = if se == 0.0 {
        // Zero variance in both samples: difference is exact.
        (0.0, if diff == 0.0 { 1.0 } else { 0.0 })
    } else {
        let t_crit = student_t_two_sided(level, df);
        let t_stat = diff / se;
        let p = 2.0 * (1.0 - student_t_cdf(t_stat.abs(), df));
        (t_crit * se, p)
    };

    let difference = ConfidenceInterval {
        estimate: diff,
        lower: diff - half_width,
        upper: diff + half_width,
        level,
    };
    let verdict = if difference.contains(0.0) {
        ComparisonVerdict::Indistinguishable
    } else if diff < 0.0 {
        ComparisonVerdict::AFaster
    } else {
        ComparisonVerdict::BFaster
    };
    let speedup = if sa.mean() != 0.0 {
        sb.mean() / sa.mean()
    } else {
        f64::INFINITY
    };

    Ok(TwoSampleComparison {
        a: sa,
        b: sb,
        difference,
        degrees_of_freedom: df,
        p_value,
        verdict,
        speedup,
    })
}

/// Paired comparison: both systems measured on the *same* inputs (e.g. the
/// same 22 queries). Pairing removes per-input variance and is far more
/// sensitive than the unpaired test. Operates on the per-pair differences
/// (a_i − b_i).
pub fn compare_paired(a: &[f64], b: &[f64], level: f64) -> Result<TwoSampleComparison, StatsError> {
    if a.len() != b.len() {
        return Err(StatsError::InvalidParameter(
            "paired comparison requires equal-length samples",
        ));
    }
    check_finite(a)?;
    check_finite(b)?;
    if a.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: a.len(),
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter("level must be in (0,1)"));
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let sd = Summary::from_slice(&diffs);
    let sa = Summary::from_slice(a);
    let sb = Summary::from_slice(b);
    let df = (sd.count() - 1) as f64;
    let se = sd.std_error();
    let diff = sd.mean();
    let (half_width, p_value) = if se == 0.0 {
        (0.0, if diff == 0.0 { 1.0 } else { 0.0 })
    } else {
        let t_crit = student_t_two_sided(level, df);
        let t_stat = diff / se;
        let p = 2.0 * (1.0 - student_t_cdf(t_stat.abs(), df));
        (t_crit * se, p)
    };
    let difference = ConfidenceInterval {
        estimate: diff,
        lower: diff - half_width,
        upper: diff + half_width,
        level,
    };
    let verdict = if difference.contains(0.0) {
        ComparisonVerdict::Indistinguishable
    } else if diff < 0.0 {
        ComparisonVerdict::AFaster
    } else {
        ComparisonVerdict::BFaster
    };
    let speedup = if sa.mean() != 0.0 {
        sb.mean() / sa.mean()
    } else {
        f64::INFINITY
    };
    Ok(TwoSampleComparison {
        a: sa,
        b: sb,
        difference,
        degrees_of_freedom: df,
        p_value,
        verdict,
        speedup,
    })
}

/// Kalibera–Jones effect-size comparison of a head sample against a
/// baseline sample on a lower-is-better metric.
#[derive(Debug, Clone)]
pub struct EffectSize {
    /// Mean of the head (new) sample.
    pub head_mean: f64,
    /// Mean of the baseline (old) sample.
    pub baseline_mean: f64,
    /// Confidence interval on the **relative change** `head/baseline − 1`.
    /// Positive = head is slower (a regression on a lower-is-better
    /// metric); negative = head is faster. A regression is *significant*
    /// when the whole interval lies above zero.
    pub effect: ConfidenceInterval,
}

impl EffectSize {
    /// True when the CI on the relative change excludes zero on the slow
    /// side — the head is statistically significantly slower.
    pub fn is_regression(&self) -> bool {
        self.effect.lower > 0.0
    }

    /// True when the CI on the relative change excludes zero on the fast
    /// side — the head is statistically significantly faster.
    pub fn is_improvement(&self) -> bool {
        self.effect.upper < 0.0
    }

    /// Speedup of head over baseline: `baseline_mean / head_mean` (>1 means
    /// the head is faster) — Touati's ratio-of-means speedup.
    pub fn speedup(&self) -> f64 {
        if self.head_mean != 0.0 {
            self.baseline_mean / self.head_mean
        } else {
            f64::INFINITY
        }
    }
}

/// Kalibera & Jones' effect-size confidence interval ("Quantifying
/// Performance Changes with Effect Size Confidence Intervals"): a CI on the
/// *ratio of means* head/baseline, rather than a p-value on the difference.
///
/// The variance of the ratio `r = m_h / m_b` is propagated by the delta
/// method:
///
/// ```text
/// se(r)² ≈ v_h / (n_h · m_b²)  +  m_h² · v_b / (n_b · m_b⁴)
/// ```
///
/// and the interval is formed with a Student-t quantile at the smaller
/// sample's degrees of freedom (conservative). The returned
/// [`EffectSize::effect`] interval is on `r − 1`, the relative change, so
/// "CI excludes zero" reads directly as "the change is statistically
/// significant".
///
/// ```
/// use perfeval_stats::compare::effect_size_ci;
/// let baseline = [100.0, 101.0, 99.0, 100.5, 99.5];
/// let head = [130.0, 131.0, 129.0, 130.5, 129.5]; // 30% slower
/// let e = effect_size_ci(&head, &baseline, 0.95).unwrap();
/// assert!(e.is_regression());
/// assert!((e.effect.estimate - 0.30).abs() < 0.01);
/// ```
pub fn effect_size_ci(
    head: &[f64],
    baseline: &[f64],
    level: f64,
) -> Result<EffectSize, StatsError> {
    check_finite(head)?;
    check_finite(baseline)?;
    if head.len() < 2 || baseline.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: head.len().min(baseline.len()),
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter("level must be in (0,1)"));
    }
    let sh = Summary::from_slice(head);
    let sb = Summary::from_slice(baseline);
    let (mh, mb) = (sh.mean(), sb.mean());
    if mb == 0.0 {
        return Err(StatsError::InvalidParameter(
            "baseline mean must be nonzero for a ratio of means",
        ));
    }
    let ratio = mh / mb;
    let se2 = sh.variance() / (sh.count() as f64 * mb * mb)
        + mh * mh * sb.variance() / (sb.count() as f64 * mb.powi(4));
    let df = (sh.count().min(sb.count()) - 1) as f64;
    let half_width = if se2 > 0.0 {
        student_t_two_sided(level, df) * se2.sqrt()
    } else {
        0.0
    };
    let change = ratio - 1.0;
    Ok(EffectSize {
        head_mean: mh,
        baseline_mean: mb,
        effect: ConfidenceInterval {
            estimate: change,
            lower: change - half_width,
            upper: change + half_width,
            level,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_different_samples() {
        let a = [10.0, 10.5, 9.5, 10.2, 9.8];
        let b = [30.0, 31.0, 29.0, 30.5, 29.5];
        let c = compare_means(&a, &b, 0.95).unwrap();
        assert_eq!(c.verdict, ComparisonVerdict::AFaster);
        assert!(c.p_value < 0.001);
        assert!(c.speedup > 2.5);
    }

    #[test]
    fn indistinguishable_samples() {
        let a = [10.0, 12.0, 8.0, 11.0, 9.0];
        let b = [10.5, 11.5, 8.5, 10.0, 9.5];
        let c = compare_means(&a, &b, 0.95).unwrap();
        assert_eq!(c.verdict, ComparisonVerdict::Indistinguishable);
        assert!(c.p_value > 0.05);
    }

    #[test]
    fn b_faster_flips_verdict() {
        let a = [30.0, 31.0, 29.0];
        let b = [10.0, 10.5, 9.5];
        let c = compare_means(&a, &b, 0.95).unwrap();
        assert_eq!(c.verdict, ComparisonVerdict::BFaster);
        assert!(c.speedup < 1.0);
    }

    #[test]
    fn welch_handles_unequal_variances() {
        let tight = [100.0, 100.1, 99.9, 100.05, 99.95];
        let loose = [90.0, 130.0, 70.0, 120.0, 95.0];
        let c = compare_means(&tight, &loose, 0.95).unwrap();
        // df should be pulled toward the noisier sample's df (4), well below
        // the pooled df of 8.
        assert!(c.degrees_of_freedom < 5.0, "df={}", c.degrees_of_freedom);
    }

    #[test]
    fn zero_variance_exact_difference() {
        let a = [5.0, 5.0, 5.0];
        let b = [7.0, 7.0, 7.0];
        let c = compare_means(&a, &b, 0.95).unwrap();
        assert_eq!(c.verdict, ComparisonVerdict::AFaster);
        assert_eq!(c.p_value, 0.0);
        assert_eq!(c.difference.half_width(), 0.0);
    }

    #[test]
    fn zero_variance_identical() {
        let a = [5.0, 5.0];
        let c = compare_means(&a, &a, 0.95).unwrap();
        assert_eq!(c.verdict, ComparisonVerdict::Indistinguishable);
        assert_eq!(c.p_value, 1.0);
    }

    #[test]
    fn paired_is_more_sensitive_than_unpaired() {
        // Per-query times vary a lot, but B is consistently 5% slower.
        let a = [100.0, 500.0, 50.0, 1000.0, 250.0, 750.0];
        let b: Vec<f64> = a.iter().map(|x| x * 1.05).collect();
        let unpaired = compare_means(&a, &b, 0.95).unwrap();
        let paired = compare_paired(&a, &b, 0.95).unwrap();
        assert_eq!(unpaired.verdict, ComparisonVerdict::Indistinguishable);
        assert_eq!(paired.verdict, ComparisonVerdict::AFaster);
    }

    #[test]
    fn paired_requires_equal_lengths() {
        assert!(compare_paired(&[1.0, 2.0], &[1.0], 0.95).is_err());
    }

    #[test]
    fn rejects_tiny_samples() {
        assert!(compare_means(&[1.0], &[2.0, 3.0], 0.95).is_err());
    }

    #[test]
    fn verdict_display() {
        assert_eq!(ComparisonVerdict::AFaster.to_string(), "A faster");
        assert_eq!(
            ComparisonVerdict::Indistinguishable.to_string(),
            "statistically indistinguishable"
        );
    }

    #[test]
    fn effect_size_detects_regression() {
        let baseline = [100.0, 101.0, 99.0, 100.5, 99.5];
        let head: Vec<f64> = baseline.iter().map(|x| x * 1.3).collect();
        let e = effect_size_ci(&head, &baseline, 0.95).unwrap();
        assert!(e.is_regression());
        assert!(!e.is_improvement());
        assert!((e.effect.estimate - 0.30).abs() < 1e-9);
        assert!((e.speedup() - 1.0 / 1.3).abs() < 1e-9);
    }

    #[test]
    fn effect_size_detects_improvement() {
        let baseline = [100.0, 101.0, 99.0, 100.5, 99.5];
        let head: Vec<f64> = baseline.iter().map(|x| x * 0.7).collect();
        let e = effect_size_ci(&head, &baseline, 0.95).unwrap();
        assert!(e.is_improvement());
        assert!(!e.is_regression());
        assert!(e.speedup() > 1.4);
    }

    #[test]
    fn effect_size_indifferent_when_noise_swamps_change() {
        // 2% shift inside 20% noise: CI must straddle zero.
        let baseline = [100.0, 120.0, 80.0, 110.0, 90.0];
        let head = [102.0, 122.4, 81.6, 112.2, 91.8];
        let e = effect_size_ci(&head, &baseline, 0.95).unwrap();
        assert!(!e.is_regression());
        assert!(!e.is_improvement());
        assert!(e.effect.contains(0.0));
    }

    #[test]
    fn effect_size_is_scale_invariant() {
        // The ratio of means must not care about units (ms vs s): the
        // whole point of effect sizes over raw differences.
        let baseline = [10.0, 11.0, 9.0, 10.5, 9.5];
        let head = [13.0, 14.3, 11.7, 13.65, 12.35];
        let e1 = effect_size_ci(&head, &baseline, 0.95).unwrap();
        let baseline_s: Vec<f64> = baseline.iter().map(|x| x / 1000.0).collect();
        let head_s: Vec<f64> = head.iter().map(|x| x / 1000.0).collect();
        let e2 = effect_size_ci(&head_s, &baseline_s, 0.95).unwrap();
        assert!((e1.effect.estimate - e2.effect.estimate).abs() < 1e-12);
        assert!((e1.effect.lower - e2.effect.lower).abs() < 1e-9);
        assert!((e1.effect.upper - e2.effect.upper).abs() < 1e-9);
    }

    #[test]
    fn effect_size_zero_variance_is_exact() {
        let e = effect_size_ci(&[6.0, 6.0], &[5.0, 5.0], 0.95).unwrap();
        assert_eq!(e.effect.half_width(), 0.0);
        assert!((e.effect.estimate - 0.2).abs() < 1e-12);
        assert!(e.is_regression());
    }

    #[test]
    fn effect_size_rejects_bad_input() {
        assert!(effect_size_ci(&[1.0], &[1.0, 2.0], 0.95).is_err());
        assert!(effect_size_ci(&[1.0, 2.0], &[0.0, 0.0], 0.95).is_err());
        assert!(effect_size_ci(&[1.0, f64::NAN], &[1.0, 2.0], 0.95).is_err());
    }
}
