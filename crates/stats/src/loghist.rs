//! A log-bucketed histogram sketch with a guaranteed relative-error bound.
//!
//! Tail quantiles are the honest summary of a latency distribution — the
//! tutorial's "never means-only" rule, and exactly the metric family the
//! Taipalus DBMS-comparison SLR catalogues. Computing p99.9 exactly
//! requires keeping every observation; at load-harness request rates that
//! is millions of `f64`s per run. [`LogHistogram`] is the standard sketch
//! compromise (DDSketch-style): geometric buckets sized so that any
//! reported quantile is within a configured *relative* error `ε` of the
//! exact sorted-data quantile, in O(log range) memory, with O(1) record
//! and an exact merge.
//!
//! Properties the tests (and the workspace proptests in
//! `tests/load_harness.rs`) pin down:
//!
//! * **quantile accuracy** — `|quantile(q) − exact(q)| ≤ ε · exact(q)` for
//!   the same rank definition;
//! * **merge ≡ concatenation** — merging two sketches yields bucket counts
//!   (and therefore quantiles) identical to recording the concatenated
//!   stream into one sketch;
//! * **count conservation** — every recorded value lands in exactly one
//!   bucket.

use std::collections::BTreeMap;

use crate::StatsError;

/// Values at or below this threshold land in the dedicated zero bucket:
/// latencies of 0 (or negative, from clock skew) are real observations and
/// must be counted, but a log bucket cannot hold them.
const ZERO_THRESHOLD: f64 = 1e-12;

/// A mergeable log-bucketed histogram sketch over non-negative `f64`
/// observations (latencies, sizes) with a relative-error guarantee on
/// quantiles.
///
/// Bucket `i` covers `(γ^(i-1), γ^i]` with `γ = (1+ε)/(1-ε)`; the bucket
/// representative `2·γ^i/(γ+1)` is within `ε` relative error of every
/// value in the bucket. Buckets are stored sparsely, so memory is
/// proportional to the number of *occupied* buckets (≈ log of the dynamic
/// range / ε), not to the observation count.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    /// Configured relative-error bound ε.
    rel_err: f64,
    /// ln(γ), precomputed.
    ln_gamma: f64,
    /// Sparse bucket counts, keyed by bucket index.
    buckets: BTreeMap<i32, u64>,
    /// Observations ≤ [`ZERO_THRESHOLD`] (zeros and clock-skew negatives).
    zero_count: u64,
    /// Total observations.
    count: u64,
    /// Exact running minimum/maximum (quantile results are clamped into
    /// this range, so `quantile(0.0)`/`quantile(1.0)` are exact).
    min: f64,
    max: f64,
    /// Exact running sum, for a mean cross-check against the quantiles.
    sum: f64,
}

impl LogHistogram {
    /// A sketch guaranteeing quantiles within relative error `rel_err`
    /// (e.g. `0.01` = 1%).
    ///
    /// # Errors
    /// `InvalidParameter` unless `0 < rel_err < 1`.
    pub fn new(rel_err: f64) -> Result<Self, StatsError> {
        if !(rel_err > 0.0 && rel_err < 1.0) {
            return Err(StatsError::InvalidParameter("rel_err must be in (0,1)"));
        }
        let gamma = (1.0 + rel_err) / (1.0 - rel_err);
        Ok(LogHistogram {
            rel_err,
            ln_gamma: gamma.ln(),
            buckets: BTreeMap::new(),
            zero_count: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        })
    }

    /// The default latency sketch: 1% relative error, comfortably tighter
    /// than run-to-run noise on any real machine.
    pub fn latency_default() -> Self {
        LogHistogram::new(0.01).expect("0.01 is a valid rel_err")
    }

    /// The configured relative-error bound ε.
    pub fn relative_error(&self) -> f64 {
        self.rel_err
    }

    /// Records one observation. Non-finite values are ignored (a NaN
    /// latency is a measurement bug, not a data point); values ≤ 0 count
    /// in the zero bucket.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value.max(0.0);
        self.min = self.min.min(value.max(0.0));
        self.max = self.max.max(value.max(0.0));
        if value <= ZERO_THRESHOLD {
            self.zero_count += 1;
        } else {
            *self.buckets.entry(self.bucket_index(value)).or_insert(0) += 1;
        }
    }

    /// Bucket index for a positive value: `ceil(ln(v)/ln(γ))`, so bucket
    /// `i` covers `(γ^(i-1), γ^i]`.
    fn bucket_index(&self, value: f64) -> i32 {
        (value.ln() / self.ln_gamma).ceil() as i32
    }

    /// Representative value of bucket `i`: `2·γ^i/(γ+1)`, within ε of
    /// every value in the bucket.
    fn bucket_value(&self, index: i32) -> f64 {
        let gamma_i = (index as f64 * self.ln_gamma).exp();
        2.0 * gamma_i / (self.ln_gamma.exp() + 1.0)
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum recorded value (0 for an empty sketch).
    pub fn max(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value (0 for an empty sketch).
    pub fn min(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.min
        }
    }

    /// Exact running sum.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (`None` for an empty sketch). Means are kept only as a
    /// cross-check — report quantiles.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Number of occupied buckets (the sketch's memory footprint).
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.len() + usize::from(self.zero_count > 0)
    }

    /// The value at quantile `q ∈ [0, 1]`, within [`relative_error`] of
    /// the exact sorted-data value at rank `⌈q·(n−1)⌉`. Returns `None` on
    /// an empty sketch.
    ///
    /// [`relative_error`]: LogHistogram::relative_error
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).ceil() as u64;
        // Extreme ranks are tracked exactly.
        if rank == 0 {
            return Some(self.min);
        }
        if rank >= self.count - 1 {
            return Some(self.max);
        }
        let mut cumulative = self.zero_count;
        if rank < cumulative {
            return Some(0.0);
        }
        for (&index, &n) in &self.buckets {
            cumulative += n;
            if rank < cumulative {
                // Clamp into the exact observed range: p0/p100 become
                // exact, and no estimate escapes the data.
                return Some(self.bucket_value(index).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges `other` into `self`. Bucket-exact: the result is identical
    /// to having recorded both streams into one sketch.
    ///
    /// # Errors
    /// `InvalidParameter` when the sketches were built with different
    /// relative-error bounds (their bucket grids are incompatible).
    pub fn merge(&mut self, other: &LogHistogram) -> Result<(), StatsError> {
        if self.rel_err != other.rel_err {
            return Err(StatsError::InvalidParameter(
                "cannot merge LogHistograms with different rel_err",
            ));
        }
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += n;
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.sum += other.sum;
        if !other.is_empty() {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        Ok(())
    }

    /// `p50/p90/p99/p99.9/max` in one line — the tail table row.
    pub fn render_tail(&self) -> String {
        match self.quantile(0.5) {
            None => "empty".to_owned(),
            Some(p50) => format!(
                "p50 {:.3}  p90 {:.3}  p99 {:.3}  p99.9 {:.3}  max {:.3}",
                p50,
                self.quantile(0.90).expect("non-empty"),
                self.quantile(0.99).expect("non-empty"),
                self.quantile(0.999).expect("non-empty"),
                self.max()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The rank definition [`LogHistogram::quantile`] documents, applied
    /// to exact sorted data.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).ceil() as usize;
        sorted[rank]
    }

    #[test]
    fn rejects_invalid_rel_err() {
        assert!(LogHistogram::new(0.0).is_err());
        assert!(LogHistogram::new(1.0).is_err());
        assert!(LogHistogram::new(-0.5).is_err());
        assert!(LogHistogram::new(0.5).is_ok());
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let h = LogHistogram::latency_default();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.render_tail(), "empty");
    }

    #[test]
    fn quantiles_within_relative_error_of_exact() {
        let eps = 0.01;
        let mut h = LogHistogram::new(eps).unwrap();
        // A long-tailed synthetic latency distribution over 5 decades.
        let mut data: Vec<f64> = (1..=2000)
            .map(|i| 0.05 * (1.0 + (i as f64 * 0.017).sin()).exp() * (i as f64).sqrt())
            .collect();
        for &v in &data {
            h.record(v);
        }
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&data, q);
            let est = h.quantile(q).unwrap();
            assert!(
                (est - exact).abs() <= eps * exact + 1e-12,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(h.count(), 2000);
    }

    #[test]
    fn min_max_quantiles_are_exact() {
        let mut h = LogHistogram::new(0.05).unwrap();
        for v in [3.7, 12.0, 0.4, 88.8] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0.4));
        assert_eq!(h.quantile(1.0), Some(88.8));
        assert_eq!(h.min(), 0.4);
        assert_eq!(h.max(), 88.8);
    }

    #[test]
    fn zeros_and_negatives_count_in_the_zero_bucket() {
        let mut h = LogHistogram::latency_default();
        h.record(0.0);
        h.record(-2.5); // clock skew: counted as zero, never lost
        h.record(10.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        assert_eq!(h.min(), 0.0);
        // Mean treats negatives as zero (they entered the zero bucket).
        assert!((h.mean().unwrap() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_values_are_ignored() {
        let mut h = LogHistogram::latency_default();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = LogHistogram::new(0.02).unwrap();
        let mut b = LogHistogram::new(0.02).unwrap();
        let mut whole = LogHistogram::new(0.02).unwrap();
        for i in 0..500 {
            let v = 0.1 + (i as f64) * 0.37;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, whole, "merge is bucket-exact");
        for q in [0.25, 0.5, 0.9, 0.999] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn merge_rejects_mismatched_grids() {
        let mut a = LogHistogram::new(0.01).unwrap();
        let b = LogHistogram::new(0.02).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = LogHistogram::latency_default();
        a.record(5.0);
        let before = a.clone();
        a.merge(&LogHistogram::latency_default()).unwrap();
        assert_eq!(a, before);
        let mut empty = LogHistogram::latency_default();
        empty.merge(&before).unwrap();
        assert_eq!(empty, before);
    }

    #[test]
    fn memory_is_sublinear_in_observations() {
        let mut h = LogHistogram::new(0.01).unwrap();
        for i in 0..100_000u64 {
            h.record(1.0 + (i % 1000) as f64);
        }
        assert_eq!(h.count(), 100_000);
        assert!(
            h.occupied_buckets() < 1000,
            "sketch, not a sorted vector: {} buckets",
            h.occupied_buckets()
        );
    }

    #[test]
    fn tail_render_mentions_every_quantile() {
        let mut h = LogHistogram::latency_default();
        for i in 1..=100 {
            h.record(i as f64);
        }
        let line = h.render_tail();
        for needle in ["p50", "p90", "p99", "p99.9", "max"] {
            assert!(line.contains(needle), "{line}");
        }
    }
}
