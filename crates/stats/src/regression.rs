//! Least-squares regression, used for scalability fits (execution time vs.
//! scale factor) and for validating the factorial models in
//! `perfeval-core::effects`.

use crate::{check_finite, StatsError};

/// Result of fitting `y = intercept + slope * x` by ordinary least squares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept estimate.
    pub intercept: f64,
    /// Slope estimate.
    pub slope: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Predicted response at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

impl std::fmt::Display for LinearFit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "y = {:.4} + {:.4}·x (R²={:.4}, n={})",
            self.intercept, self.slope, self.r_squared, self.n
        )
    }
}

/// Fits a straight line through `(x, y)` pairs by ordinary least squares.
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [2.0, 4.0, 6.0, 8.0];
/// let fit = perfeval_stats::regression::linear_fit(&xs, &ys).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.r_squared - 1.0).abs() < 1e-12);
/// ```
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Result<LinearFit, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::InvalidParameter(
            "x and y must have the same length",
        ));
    }
    check_finite(xs)?;
    check_finite(ys)?;
    let n = xs.len();
    if n < 2 {
        return Err(StatsError::NotEnoughData { needed: 2, got: n });
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return Err(StatsError::InvalidParameter(
            "all x values identical: slope undefined",
        ));
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0 // a constant y is fitted perfectly by the horizontal line
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Ok(LinearFit {
        intercept,
        slope,
        r_squared,
        n,
    })
}

/// Fits `y = a * x^b` by linear regression in log-log space.
///
/// Useful for classifying empirical scalability: b ≈ 1 is linear scale-up,
/// b ≈ 2 quadratic, etc. Requires strictly positive `x` and `y`.
pub fn power_law_fit(xs: &[f64], ys: &[f64]) -> Result<(f64, f64, f64), StatsError> {
    if xs.iter().chain(ys).any(|&v| v <= 0.0) {
        return Err(StatsError::InvalidParameter(
            "power-law fit requires strictly positive data",
        ));
    }
    let lx: Vec<f64> = xs.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|v| v.ln()).collect();
    let fit = linear_fit(&lx, &ly)?;
    Ok((fit.intercept.exp(), fit.slope, fit.r_squared))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.1, 3.9, 6.2, 7.8, 10.1];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!(fit.r_squared > 0.99 && fit.r_squared < 1.0);
        assert!((fit.slope - 2.0).abs() < 0.1);
    }

    #[test]
    fn constant_y_perfect_fit() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn vertical_data_rejected() {
        let xs = [2.0, 2.0, 2.0];
        let ys = [1.0, 2.0, 3.0];
        assert!(linear_fit(&xs, &ys).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(linear_fit(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn power_law_identifies_quadratic() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
        let (a, b, r2) = power_law_fit(&xs, &ys).unwrap();
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_law_rejects_nonpositive() {
        assert!(power_law_fit(&[0.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(power_law_fit(&[1.0, 2.0], &[-1.0, 2.0]).is_err());
    }

    #[test]
    fn display_mentions_r_squared() {
        let fit = linear_fit(&[0.0, 1.0], &[0.0, 1.0]).unwrap();
        assert!(fit.to_string().contains("R²=1.0000"));
    }
}
