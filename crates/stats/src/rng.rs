//! A small, fast, deterministic pseudo-random generator.
//!
//! Repeatability (the tutorial's fourth chapter) demands that synthetic data
//! sets regenerate *bit-identically* from a seed recorded in the experiment
//! configuration. SplitMix64 is tiny, passes BigCrush-level smoke tests for
//! this use, and its entire state is one `u64` that fits in a config file.

/// SplitMix64 generator (Steele, Lea & Flood 2014).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// The SplitMix64 finalizer: a high-quality 64-bit mixing function (also
/// the core of `fmix64` / Stafford's Mix13 family).
///
/// This is the **one** hash mixer shared across the workspace — minidb's
/// join/group-by hashing, `net`'s connection→shard placement, and the
/// splittable stream derivation below all call it, so a hash-quality fix
/// lands everywhere at once and kernels can vectorize the identical
/// arithmetic without changing results.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn mix(z: u64) -> u64 {
    mix64(z)
}

impl SplitMix64 {
    /// Creates a generator from a seed. Identical seeds produce identical
    /// streams on every platform.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent stream as a **pure function** of
    /// `(root, stream)` — no generator state is consumed, so any stream can
    /// be derived in any order (or on any thread) and always yields the
    /// same values. This is the splittable derivation parallel data
    /// generation and parallel experiment scheduling rely on: stream `k`
    /// is identical whether streams `0..k` were derived before it or not.
    pub fn split(root: u64, stream: u64) -> SplitMix64 {
        SplitMix64::new(mix(
            mix(root).wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        ))
    }

    /// Derives a child stream from this generator's *current state* without
    /// advancing it — the two-level analogue of [`SplitMix64::split`]
    /// (e.g. per-table stream, then per-chunk substreams).
    pub fn substream(&self, stream: u64) -> SplitMix64 {
        SplitMix64::split(self.state, stream)
    }

    /// The generator's entire state (one `u64`) — recordable in a config
    /// file, restorable with [`SplitMix64::new`].
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift method with rejection to avoid modulo
    /// bias.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires bound > 0");
        // Lemire's method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn next_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "next_range_i64 requires lo <= hi");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(self.next_below(span) as i64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator; the usual way to give each
    /// table / column / experiment its own stream while recording only one
    /// root seed.
    pub fn fork(&mut self, stream: u64) -> SplitMix64 {
        // Mix the stream id into a fresh state drawn from this generator.
        let base = self.next_u64();
        SplitMix64::new(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            data.swap(i, j);
        }
    }

    /// Picks a uniformly random element reference.
    pub fn choose<'a, T>(&mut self, data: &'a [T]) -> Option<&'a T> {
        if data.is_empty() {
            None
        } else {
            Some(&data[self.next_below(data.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_value() {
        // Reference value of SplitMix64 with seed 0 (from the public-domain
        // reference implementation).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = SplitMix64::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn next_below_is_unbiased_enough() {
        let mut r = SplitMix64::new(13);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.next_below(3) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 500, "counts={counts:?}");
        }
    }

    #[test]
    fn next_range_covers_bounds() {
        let mut r = SplitMix64::new(17);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.next_range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 2;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn next_range_single_value() {
        let mut r = SplitMix64::new(19);
        assert_eq!(r.next_range_i64(5, 5), 5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>(), "astronomically unlikely");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SplitMix64::new(99);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn split_is_order_independent() {
        // The whole point of split over fork: stream k does not depend on
        // which (or how many) other streams were derived first.
        let mut direct = SplitMix64::split(42, 7);
        let _ = SplitMix64::split(42, 1);
        let _ = SplitMix64::split(42, 2);
        let mut after_others = SplitMix64::split(42, 7);
        for _ in 0..32 {
            assert_eq!(direct.next_u64(), after_others.next_u64());
        }
    }

    #[test]
    fn split_streams_diverge() {
        let mut a = SplitMix64::split(42, 0);
        let mut b = SplitMix64::split(42, 1);
        let mut c = SplitMix64::split(43, 0);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(x, y, "streams of one root must differ");
        assert_ne!(x, z, "same stream of different roots must differ");
    }

    #[test]
    fn substream_does_not_advance_parent() {
        let parent = SplitMix64::split(7, 3);
        let before = parent.state();
        let mut s1 = parent.substream(0);
        let mut s2 = parent.substream(1);
        assert_eq!(parent.state(), before, "substream must not mutate");
        assert_ne!(s1.next_u64(), s2.next_u64());
        // Re-derivable at any time.
        let mut again = parent.substream(0);
        assert_eq!(
            SplitMix64::split(7, 3).substream(0).next_u64(),
            again.next_u64()
        );
    }

    #[test]
    fn choose_from_empty_is_none() {
        let mut r = SplitMix64::new(3);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    #[should_panic(expected = "next_below requires bound > 0")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn mix64_matches_generator_output() {
        // next_u64 is exactly mix64 over the advanced state; pinning that
        // equivalence guards the shared mixer against drift.
        let mut r = SplitMix64::new(1234);
        let state = r.state().wrapping_add(0x9E37_79B9_7F4A_7C15);
        assert_eq!(r.next_u64(), mix64(state));
    }

    #[test]
    fn mix64_bucket_distribution_is_uniform() {
        // Distribution smoke test for the shared mixer: sequential keys
        // (the worst realistic input — dense foreign keys, conn ids) must
        // land uniformly across a small bucket count.
        const BUCKETS: usize = 16;
        const N: usize = 64_000;
        let mut counts = [0usize; BUCKETS];
        for k in 0..N as u64 {
            counts[(mix64(k) % BUCKETS as u64) as usize] += 1;
        }
        let expected = (N / BUCKETS) as i64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as i64 - expected).abs();
            assert!(
                dev < expected / 10,
                "bucket {b} has {c}, expected ~{expected} (counts={counts:?})"
            );
        }
    }

    #[test]
    fn mix64_flips_about_half_the_bits() {
        // Avalanche smoke: flipping one input bit should flip ~32 of 64
        // output bits on average.
        let mut total = 0u64;
        let trials = 1_000u64;
        for k in 0..trials {
            let base = mix64(k);
            total += (base ^ mix64(k ^ 1)).count_ones() as u64;
        }
        let avg = total as f64 / trials as f64;
        assert!((avg - 32.0).abs() < 2.0, "avalanche avg={avg}");
    }
}
