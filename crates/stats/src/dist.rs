//! Value distributions for synthetic data generation.
//!
//! The micro-benchmark chapter lists the knobs a good synthetic data set
//! exposes: *"value ranges and distribution, correlation"* (slide 11). This
//! module supplies the standard shapes — uniform, Zipf (skew), normal,
//! exponential — plus a correlated-pair generator, all driven by the
//! deterministic [`SplitMix64`](crate::rng::SplitMix64).

use crate::rng::SplitMix64;

/// A sampleable distribution over `f64`.
pub trait Distribution {
    /// Draws one value.
    fn sample(&mut self, rng: &mut SplitMix64) -> f64;

    /// Draws `n` values.
    fn sample_n(&mut self, rng: &mut SplitMix64, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Uniform over `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "Uniform requires lo < hi");
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&mut self, rng: &mut SplitMix64) -> f64 {
        rng.next_range_f64(self.lo, self.hi)
    }
}

/// Standard normal via Box–Muller, scaled to `mean` / `stddev`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    stddev: f64,
    cached: Option<f64>,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    /// Panics if `stddev < 0`.
    pub fn new(mean: f64, stddev: f64) -> Self {
        assert!(stddev >= 0.0, "Normal requires stddev >= 0");
        Normal {
            mean,
            stddev,
            cached: None,
        }
    }
}

impl Distribution for Normal {
    fn sample(&mut self, rng: &mut SplitMix64) -> f64 {
        if let Some(z) = self.cached.take() {
            return self.mean + self.stddev * z;
        }
        // Box–Muller: two uniforms -> two independent normals.
        let u1 = loop {
            let u = rng.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        self.mean + self.stddev * (r * theta.cos())
    }
}

/// Exponential with the given rate λ (mean 1/λ). The classic model for
/// inter-arrival times in open-system workloads.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Panics
    /// Panics if `lambda <= 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "Exponential requires lambda > 0");
        Exponential { rate: lambda }
    }
}

impl Distribution for Exponential {
    fn sample(&mut self, rng: &mut SplitMix64) -> f64 {
        let u = loop {
            let u = rng.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / self.rate
    }
}

/// Zipf distribution over ranks `1..=n` with skew parameter `s`
/// (s = 0 degenerates to uniform; s ≈ 1 is the classic web/word skew).
///
/// Sampling uses a precomputed CDF with binary search — O(log n) per draw,
/// exact, and deterministic. This is what gives micro-benchmarks their
/// "controllable value distribution" knob.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf requires n > 0");
        assert!(s >= 0.0, "Zipf requires s >= 0");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating-point undershoot at the end.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample_rank(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        let idx = match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF contains NaN"))
        {
            // u == cdf[i] lies on the boundary; it belongs to rank i+1
            // because each bucket covers (cdf[i-1], cdf[i]].
            Ok(i) | Err(i) => i,
        };
        (idx + 1).min(self.cdf.len())
    }

    /// Number of distinct ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

impl Distribution for Zipf {
    fn sample(&mut self, rng: &mut SplitMix64) -> f64 {
        self.sample_rank(rng) as f64
    }
}

/// Generates a pair of columns with a target Pearson correlation `rho`:
/// `y = rho * x + sqrt(1 − rho²) * e` with `x`, `e` standard normal.
///
/// Correlated columns are the classic trap for query optimizers'
/// independence assumptions — a workload generator must be able to produce
/// them (slide 11: "Correlation").
pub fn correlated_pair(rng: &mut SplitMix64, n: usize, rho: f64) -> (Vec<f64>, Vec<f64>) {
    assert!((-1.0..=1.0).contains(&rho), "rho must be in [-1, 1]");
    let mut nx = Normal::new(0.0, 1.0);
    let mut ne = Normal::new(0.0, 1.0);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    let ortho = (1.0 - rho * rho).sqrt();
    for _ in 0..n {
        let x = nx.sample(rng);
        let e = ne.sample(rng);
        xs.push(x);
        ys.push(rho * x + ortho * e);
    }
    (xs, ys)
}

/// Sample Pearson correlation coefficient of two equal-length slices.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal lengths");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::Summary;

    fn rng() -> SplitMix64 {
        SplitMix64::new(20080408) // ICDE 2008 seminar date
    }

    #[test]
    fn uniform_stays_in_range_with_right_mean() {
        let mut d = Uniform::new(10.0, 20.0);
        let mut r = rng();
        let xs = d.sample_n(&mut r, 50_000);
        assert!(xs.iter().all(|&v| (10.0..20.0).contains(&v)));
        let s = Summary::from_slice(&xs);
        assert!((s.mean() - 15.0).abs() < 0.05, "mean={}", s.mean());
    }

    #[test]
    fn normal_moments() {
        let mut d = Normal::new(100.0, 15.0);
        let mut r = rng();
        let xs = d.sample_n(&mut r, 100_000);
        let s = Summary::from_slice(&xs);
        assert!((s.mean() - 100.0).abs() < 0.3, "mean={}", s.mean());
        assert!((s.stddev() - 15.0).abs() < 0.3, "sd={}", s.stddev());
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut d = Exponential::new(0.5);
        let mut r = rng();
        let xs = d.sample_n(&mut r, 100_000);
        let s = Summary::from_slice(&xs);
        assert!((s.mean() - 2.0).abs() < 0.05, "mean={}", s.mean());
        assert!(xs.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut r = rng();
        let mut rank1 = 0usize;
        let draws = 50_000;
        for _ in 0..draws {
            let k = z.sample_rank(&mut r);
            assert!((1..=1000).contains(&k));
            if k == 1 {
                rank1 += 1;
            }
        }
        // With s=1, n=1000, P(rank 1) = 1/H_1000 ~ 0.1336.
        let p1 = rank1 as f64 / draws as f64;
        assert!((p1 - 0.1336).abs() < 0.01, "p1={p1}");
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng();
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample_rank(&mut r) - 1] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5000.0).abs() < 400.0, "counts={counts:?}");
        }
    }

    #[test]
    fn zipf_single_element() {
        let z = Zipf::new(1, 1.5);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(z.sample_rank(&mut r), 1);
        }
    }

    #[test]
    fn correlated_pair_hits_target_rho() {
        let mut r = rng();
        for target in [0.0, 0.5, 0.9, -0.7] {
            let (xs, ys) = correlated_pair(&mut r, 20_000, target);
            let got = pearson(&xs, &ys);
            assert!((got - target).abs() < 0.03, "target={target} got={got}");
        }
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|v| -v).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_column_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut r1 = rng();
        let mut r2 = rng();
        let mut d1 = Normal::new(0.0, 1.0);
        let mut d2 = Normal::new(0.0, 1.0);
        assert_eq!(d1.sample_n(&mut r1, 100), d2.sample_n(&mut r2, 100));
    }
}
