//! Special functions needed for the statistical distributions used by the
//! toolkit: log-gamma, the regularized incomplete beta function, the error
//! function, and their inverses where required.
//!
//! These are classic numerical implementations (Lanczos approximation for
//! `ln_gamma`, the Lentz continued fraction for the incomplete beta,
//! Abramowitz & Stegun 7.1.26 for `erf`, Acklam's rational approximation for
//! the inverse normal CDF) chosen for robustness over the parameter ranges a
//! benchmarking pipeline encounters (degrees of freedom from 1 to a few
//! thousand, confidence levels between 0.5 and 0.9999).

/// Natural logarithm of the gamma function, Lanczos approximation (g = 7,
/// n = 9 coefficients). Accurate to ~1e-13 for `x > 0`.
///
/// # Panics
/// Panics if `x <= 0` (the reflection formula is not needed by this crate).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: ln Γ(x) = ln(π / sin(πx)) − ln Γ(1 − x)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Computed with the continued-fraction expansion (Numerical Recipes
/// `betacf`), using the symmetry relation to keep the continued fraction in
/// its rapidly-converging region.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "incomplete_beta requires a, b > 0");
    assert!(
        (0.0..=1.0).contains(&x),
        "incomplete_beta requires x in [0,1]"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    let front = (ln_beta + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cont_frac(a, b, x) / a
    } else {
        1.0 - front * beta_cont_frac(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3.0e-14;
    const FPMIN: f64 = 1.0e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// The error function, Abramowitz & Stegun approximation 7.1.26
/// (max absolute error 1.5e-7, plenty for confidence-level work).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse of the standard normal CDF (the probit function), using Acklam's
/// rational approximation, refined with one step of Halley's method. Valid
/// for `p` in the open interval (0, 1).
pub fn normal_inv_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_inv_cdf requires p in (0,1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement using the true CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Student-t cumulative distribution function with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "student_t_cdf requires df > 0");
    let x = df / (df + t * t);
    let p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Inverse of the Student-t CDF: the quantile `t` such that
/// `student_t_cdf(t, df) == p`. Solved by bisection (monotone CDF), which is
/// robust for all `df >= 1`.
pub fn student_t_inv_cdf(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "student_t_inv_cdf requires p in (0,1)");
    assert!(df > 0.0, "student_t_inv_cdf requires df > 0");
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }
    // Bracket: the t distribution has heavy tails for small df, so expand
    // the bracket geometrically until it contains the quantile.
    let mut lo = -1.0;
    let mut hi = 1.0;
    while student_t_cdf(lo, df) > p {
        lo *= 2.0;
        if lo < -1e12 {
            break;
        }
    }
    while student_t_cdf(hi, df) < p {
        hi *= 2.0;
        if hi > 1e12 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Two-sided Student-t critical value for a given confidence `level`
/// (e.g. 0.95) and `df` degrees of freedom — i.e. the `t` such that
/// `P(|T| <= t) = level`.
pub fn student_t_two_sided(level: f64, df: f64) -> f64 {
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1)"
    );
    student_t_inv_cdf(0.5 + level / 2.0, df)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(5.0), (24.0f64).ln(), 1e-10));
        assert!(close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-9));
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-10
        ));
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.5, 0.2)] {
            let lhs = incomplete_beta(a, b, x);
            let rhs = 1.0 - incomplete_beta(b, a, 1.0 - x);
            assert!(close(lhs, rhs, 1e-10), "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1,1) = x.
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!(close(incomplete_beta(1.0, 1.0, x), x, 1e-10));
        }
    }

    #[test]
    fn erf_known_values() {
        // A&S 7.1.26 has max abs error 1.5e-7; exact zero is not preserved.
        assert!(close(erf(0.0), 0.0, 2e-7));
        assert!(close(erf(1.0), 0.842_700_79, 2e-7));
        assert!(close(erf(-1.0), -0.842_700_79, 2e-7));
        assert!(close(erf(2.0), 0.995_322_27, 2e-7));
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!(close(normal_cdf(0.0), 0.5, 2e-7));
        assert!(close(normal_cdf(1.96), 0.975, 2e-4));
        assert!(close(normal_cdf(-1.96), 0.025, 2e-4));
    }

    #[test]
    fn normal_inv_cdf_roundtrip() {
        for p in [0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999] {
            let x = normal_inv_cdf(p);
            assert!(close(normal_cdf(x), p, 1e-6), "p={p}");
        }
    }

    #[test]
    fn student_t_cdf_is_symmetric() {
        for df in [1.0, 3.0, 10.0, 100.0] {
            for t in [0.5, 1.0, 2.5] {
                let up = student_t_cdf(t, df);
                let down = student_t_cdf(-t, df);
                assert!(close(up + down, 1.0, 1e-10), "df={df} t={t}");
            }
        }
    }

    #[test]
    fn student_t_critical_values_match_tables() {
        // Classic two-sided 95% critical values.
        let cases = [
            (1.0, 12.706),
            (2.0, 4.303),
            (5.0, 2.571),
            (10.0, 2.228),
            (30.0, 2.042),
            (120.0, 1.980),
        ];
        for (df, expect) in cases {
            let got = student_t_two_sided(0.95, df);
            assert!(
                close(got, expect, 2e-3),
                "df={df}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn student_t_converges_to_normal() {
        let t = student_t_two_sided(0.95, 100_000.0);
        assert!(close(t, 1.960, 2e-3), "got {t}");
    }

    #[test]
    fn student_t_inv_cdf_roundtrip() {
        for df in [2.0, 7.0, 29.0] {
            for p in [0.05, 0.3, 0.5, 0.8, 0.99] {
                let t = student_t_inv_cdf(p, df);
                assert!(close(student_t_cdf(t, df), p, 1e-8), "df={df} p={p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}

/// Cumulative distribution function of the F distribution with `d1` and
/// `d2` degrees of freedom, via the regularized incomplete beta function:
/// `F(x; d1, d2) = I_{d1·x/(d1·x+d2)}(d1/2, d2/2)`.
///
/// Used by the ANOVA-style factor-significance test: the ratio of an
/// effect's mean square to the error mean square follows F(1, df_error)
/// under the null hypothesis that the effect is zero.
pub fn f_cdf(x: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0, "f_cdf requires positive dof");
    if x <= 0.0 {
        return 0.0;
    }
    incomplete_beta(d1 / 2.0, d2 / 2.0, d1 * x / (d1 * x + d2))
}

#[cfg(test)]
mod f_tests {
    use super::*;

    #[test]
    fn f_cdf_boundaries() {
        assert_eq!(f_cdf(0.0, 2.0, 10.0), 0.0);
        assert_eq!(f_cdf(-1.0, 2.0, 10.0), 0.0);
        assert!(f_cdf(1e9, 2.0, 10.0) > 0.9999);
    }

    #[test]
    fn f_equals_squared_t_for_one_numerator_dof() {
        // If T ~ t(v) then T² ~ F(1, v): P(F <= t²) = P(|T| <= t).
        for v in [3.0, 10.0, 30.0] {
            for t in [0.5, 1.0, 2.0, 3.0] {
                let via_t = student_t_cdf(t, v) - student_t_cdf(-t, v);
                let via_f = f_cdf(t * t, 1.0, v);
                assert!(
                    (via_t - via_f).abs() < 1e-9,
                    "v={v} t={t}: {via_t} vs {via_f}"
                );
            }
        }
    }

    #[test]
    fn f_critical_value_tables() {
        // F(0.95; 1, 10) = 4.96, F(0.95; 2, 10) = 4.10 (standard tables).
        assert!((f_cdf(4.96, 1.0, 10.0) - 0.95).abs() < 2e-3);
        assert!((f_cdf(4.10, 2.0, 10.0) - 0.95).abs() < 2e-3);
    }

    #[test]
    fn f_cdf_is_monotone() {
        let mut prev = 0.0;
        for i in 1..50 {
            let x = i as f64 * 0.2;
            let p = f_cdf(x, 3.0, 12.0);
            assert!(p >= prev);
            prev = p;
        }
    }
}
