//! Outlier detection for replicated measurements.
//!
//! Slide 59's first common mistake — *"variation due to experimental error
//! is ignored"* — has a practical corollary: a single interrupted run (cron
//! job, checkpoint, page-cache eviction) can silently dominate a mean. The
//! honest options are (a) report the outlier, or (b) exclude it and *say
//! so*. This module detects them so the harness can do either, explicitly.

use crate::descriptive::Summary;
use crate::{check_finite, StatsError};

/// How an observation was classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutlierClass {
    /// Within the expected range.
    Normal,
    /// Mildly outside (between inner and outer fence for IQR; |z| in [2,3]
    /// for z-score).
    Mild,
    /// Far outside (beyond outer fence; |z| > 3).
    Extreme,
}

/// Result of an outlier scan.
#[derive(Debug, Clone)]
pub struct OutlierReport {
    /// Per-observation classification, parallel to the input slice.
    pub classes: Vec<OutlierClass>,
    /// Indices of all non-`Normal` observations.
    pub flagged: Vec<usize>,
}

impl OutlierReport {
    /// True if no observation was flagged.
    pub fn is_clean(&self) -> bool {
        self.flagged.is_empty()
    }

    /// The observations that survived (i.e. `Normal` ones) from `data`.
    pub fn retained(&self, data: &[f64]) -> Vec<f64> {
        data.iter()
            .zip(&self.classes)
            .filter(|(_, c)| **c == OutlierClass::Normal)
            .map(|(v, _)| *v)
            .collect()
    }
}

/// Tukey's fences: observations outside `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` are
/// mild outliers, outside `[Q1 − 3·IQR, Q3 + 3·IQR]` extreme ones.
/// Robust to the outliers themselves (unlike z-scores).
pub fn iqr_outliers(data: &[f64]) -> Result<OutlierReport, StatsError> {
    check_finite(data)?;
    if data.len() < 4 {
        return Err(StatsError::NotEnoughData {
            needed: 4,
            got: data.len(),
        });
    }
    let s = Summary::from_slice(data);
    let q1 = s.percentile(25.0)?;
    let q3 = s.percentile(75.0)?;
    let iqr = q3 - q1;
    let inner = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let outer = (q1 - 3.0 * iqr, q3 + 3.0 * iqr);
    let classes: Vec<OutlierClass> = data
        .iter()
        .map(|&v| {
            if v < outer.0 || v > outer.1 {
                OutlierClass::Extreme
            } else if v < inner.0 || v > inner.1 {
                OutlierClass::Mild
            } else {
                OutlierClass::Normal
            }
        })
        .collect();
    let flagged = classes
        .iter()
        .enumerate()
        .filter(|(_, c)| **c != OutlierClass::Normal)
        .map(|(i, _)| i)
        .collect();
    Ok(OutlierReport { classes, flagged })
}

/// Z-score outliers: |z| > 2 mild, |z| > 3 extreme. Simple but sensitive to
/// the outliers themselves; prefer [`iqr_outliers`] for small samples.
pub fn zscore_outliers(data: &[f64]) -> Result<OutlierReport, StatsError> {
    check_finite(data)?;
    if data.len() < 3 {
        return Err(StatsError::NotEnoughData {
            needed: 3,
            got: data.len(),
        });
    }
    let s = Summary::from_slice(data);
    let sd = s.stddev();
    let classes: Vec<OutlierClass> = data
        .iter()
        .map(|&v| {
            if sd == 0.0 {
                OutlierClass::Normal
            } else {
                let z = ((v - s.mean()) / sd).abs();
                if z > 3.0 {
                    OutlierClass::Extreme
                } else if z > 2.0 {
                    OutlierClass::Mild
                } else {
                    OutlierClass::Normal
                }
            }
        })
        .collect();
    let flagged = classes
        .iter()
        .enumerate()
        .filter(|(_, c)| **c != OutlierClass::Normal)
        .map(|(i, _)| i)
        .collect();
    Ok(OutlierReport { classes, flagged })
}

/// MAD (median absolute deviation) outliers via the modified z-score
/// `0.6745 · (x − median) / MAD`: observations with `|z| > threshold` are
/// mild, `|z| > 2·threshold` extreme. The customary threshold is 3.5
/// (Iglewicz & Hoaglin). The most robust of the three detectors — both
/// location and scale are medians, so up to half the sample can be
/// contaminated before the fences move — which makes it the right guard
/// for *interference detection*, where the contamination (a cron job, a
/// thermal event) may hit many replicates at once.
///
/// When `MAD == 0` (more than half the sample is exactly the median —
/// common with quantized timers), any observation not equal to the median
/// is flagged extreme: the sample claims perfect stability, so any
/// deviation is suspect.
///
/// # Errors
/// Fails on non-finite data, fewer than 4 observations, or a
/// non-positive/non-finite `threshold`.
pub fn mad_outliers(data: &[f64], threshold: f64) -> Result<OutlierReport, StatsError> {
    check_finite(data)?;
    if data.len() < 4 {
        return Err(StatsError::NotEnoughData {
            needed: 4,
            got: data.len(),
        });
    }
    if !(threshold > 0.0 && threshold.is_finite()) {
        return Err(StatsError::InvalidParameter(
            "MAD threshold must be positive and finite",
        ));
    }
    let median = Summary::from_slice(data).median()?;
    let deviations: Vec<f64> = data.iter().map(|v| (v - median).abs()).collect();
    let mad = Summary::from_slice(&deviations).median()?;
    let classes: Vec<OutlierClass> = data
        .iter()
        .map(|&v| {
            if mad == 0.0 {
                if v == median {
                    OutlierClass::Normal
                } else {
                    OutlierClass::Extreme
                }
            } else {
                let z = (0.6745 * (v - median) / mad).abs();
                if z > 2.0 * threshold {
                    OutlierClass::Extreme
                } else if z > threshold {
                    OutlierClass::Mild
                } else {
                    OutlierClass::Normal
                }
            }
        })
        .collect();
    let flagged = classes
        .iter()
        .enumerate()
        .filter(|(_, c)| **c != OutlierClass::Normal)
        .map(|(i, _)| i)
        .collect();
    Ok(OutlierReport { classes, flagged })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_data_has_no_outliers() {
        let data = [10.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9, 10.3];
        let r = iqr_outliers(&data).unwrap();
        assert!(r.is_clean());
        assert_eq!(r.retained(&data).len(), data.len());
    }

    #[test]
    fn cold_run_in_hot_series_is_flagged() {
        // A classic: one forgot-to-warm-up measurement among hot runs.
        let data = [
            3534.0, 3512.0, 3548.0, 13243.0, 3521.0, 3539.0, 3527.0, 3533.0,
        ];
        let r = iqr_outliers(&data).unwrap();
        assert_eq!(r.flagged, vec![3]);
        assert_eq!(r.classes[3], OutlierClass::Extreme);
        let retained = r.retained(&data);
        assert_eq!(retained.len(), 7);
        assert!(retained.iter().all(|&v| v < 4000.0));
    }

    #[test]
    fn zscore_flags_spike() {
        let mut data = vec![100.0; 12];
        data.push(500.0);
        let r = zscore_outliers(&data).unwrap();
        assert_eq!(r.flagged, vec![12]);
    }

    #[test]
    fn zscore_constant_data_is_clean() {
        let data = [5.0; 6];
        let r = zscore_outliers(&data).unwrap();
        assert!(r.is_clean());
    }

    #[test]
    fn small_samples_rejected() {
        assert!(iqr_outliers(&[1.0, 2.0, 3.0]).is_err());
        assert!(zscore_outliers(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn mad_flags_interference_spikes() {
        // Two replicates hit by a background job — IQR and MAD both catch
        // these, but MAD's fences barely move despite 25% contamination.
        let data = [
            3534.0, 3512.0, 13243.0, 3548.0, 3521.0, 12100.0, 3539.0, 3527.0,
        ];
        let r = mad_outliers(&data, 3.5).unwrap();
        assert_eq!(r.flagged, vec![2, 5]);
        assert_eq!(r.classes[2], OutlierClass::Extreme);
        assert!(r.retained(&data).iter().all(|&v| v < 4000.0));
    }

    #[test]
    fn mad_clean_sample_stays_clean() {
        let data = [10.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9, 10.3];
        assert!(mad_outliers(&data, 3.5).unwrap().is_clean());
    }

    #[test]
    fn mad_zero_mad_flags_any_deviation() {
        // Quantized timer: most replicates identical, one differs.
        let data = [5.0, 5.0, 5.0, 5.0, 5.0, 7.0];
        let r = mad_outliers(&data, 3.5).unwrap();
        assert_eq!(r.flagged, vec![5]);
        assert_eq!(r.classes[5], OutlierClass::Extreme);
    }

    #[test]
    fn mad_rejects_bad_inputs() {
        assert!(mad_outliers(&[1.0, 2.0, 3.0], 3.5).is_err());
        assert!(mad_outliers(&[1.0, 2.0, 3.0, 4.0], 0.0).is_err());
        assert!(mad_outliers(&[1.0, 2.0, 3.0, f64::NAN], 3.5).is_err());
    }

    #[test]
    fn mild_vs_extreme_classification() {
        // Base data Q1=2.75, Q3=5.25 (0-indexed interpolation), IQR=2.5.
        let data = [2.0, 3.0, 4.0, 5.0, 6.0, 2.5, 3.5, 4.5, 5.5, 10.5];
        let r = iqr_outliers(&data).unwrap();
        // 10.5 is beyond inner fence but the exact class depends on fences;
        // just assert it is flagged and nothing normal was.
        assert!(r.flagged.contains(&9));
        assert!(!r.flagged.contains(&0));
    }
}
