//! # perfeval-stats
//!
//! Statistics substrate for the `perfeval` performance-evaluation toolkit.
//!
//! The tutorial this project reproduces ("Performance Evaluation in Database
//! Research: Principles and Experiences", Manolescu & Manegold, ICDE 2008 /
//! EDBT 2009) leans on a handful of statistical tools that every experiment
//! pipeline needs:
//!
//! * **descriptive statistics** over replicated measurements
//!   ([`descriptive::Summary`]),
//! * **confidence intervals** and the "overlapping confidence intervals may
//!   mean the two quantities are statistically indifferent" rule
//!   ([`ci`], [`compare`]),
//! * **histograms** with the "each cell should have at least five points"
//!   rule of thumb ([`histogram`]), and a mergeable **log-bucketed sketch**
//!   with a relative-error bound on quantiles for high-volume latency
//!   streams ([`loghist`]),
//! * **regression** for scale-up / speed-up fits ([`regression`]),
//! * deterministic **random value generation** for synthetic data sets —
//!   uniform, Zipf, normal, exponential, correlated ([`rng`], [`dist`]).
//!
//! Everything is implemented from scratch on top of `std` so that the core
//! toolkit carries no third-party runtime dependencies; the special functions
//! needed for Student-t quantiles (log-gamma, regularized incomplete beta)
//! live in [`special`].
//!
//! ## Quick example
//!
//! ```
//! use perfeval_stats::descriptive::Summary;
//! use perfeval_stats::ci::mean_confidence_interval;
//!
//! let runs = [12.1, 11.8, 12.4, 12.0, 11.9];
//! let s = Summary::from_slice(&runs);
//! assert!((s.mean() - 12.04).abs() < 1e-9);
//! let ci = mean_confidence_interval(&runs, 0.95).unwrap();
//! assert!(ci.contains(12.0));
//! ```
#![warn(missing_docs)]

pub mod ci;
pub mod compare;
pub mod descriptive;
pub mod dist;
pub mod histogram;
pub mod loghist;
pub mod outlier;
pub mod regression;
pub mod rng;
pub mod special;

pub use ci::{mean_confidence_interval, ConfidenceInterval};
pub use compare::{
    compare_means, effect_size_ci, ComparisonVerdict, EffectSize, TwoSampleComparison,
};
pub use descriptive::Summary;
pub use histogram::Histogram;
pub use loghist::LogHistogram;
pub use regression::LinearFit;
pub use rng::{mix64, SplitMix64};

/// Errors produced by statistical routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input sample was empty (or too small for the requested statistic).
    NotEnoughData {
        /// Number of observations required.
        needed: usize,
        /// Number of observations supplied.
        got: usize,
    },
    /// A parameter was outside its valid domain (e.g. confidence level 1.5).
    InvalidParameter(&'static str),
    /// The input contained a NaN or infinite value.
    NonFiniteInput,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::NotEnoughData { needed, got } => {
                write!(f, "not enough data: needed {needed}, got {got}")
            }
            StatsError::InvalidParameter(p) => write!(f, "invalid parameter: {p}"),
            StatsError::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Validates that all values in `data` are finite.
pub(crate) fn check_finite(data: &[f64]) -> Result<(), StatsError> {
    if data.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(StatsError::NonFiniteInput)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = StatsError::NotEnoughData { needed: 2, got: 0 };
        assert_eq!(e.to_string(), "not enough data: needed 2, got 0");
        assert_eq!(
            StatsError::InvalidParameter("level").to_string(),
            "invalid parameter: level"
        );
        assert_eq!(
            StatsError::NonFiniteInput.to_string(),
            "input contains NaN or infinite values"
        );
    }

    #[test]
    fn check_finite_accepts_normal_data() {
        assert!(check_finite(&[1.0, 2.0, -3.0]).is_ok());
        assert!(check_finite(&[]).is_ok());
    }

    #[test]
    fn check_finite_rejects_nan_and_inf() {
        assert_eq!(
            check_finite(&[1.0, f64::NAN]),
            Err(StatsError::NonFiniteInput)
        );
        assert_eq!(
            check_finite(&[f64::INFINITY]),
            Err(StatsError::NonFiniteInput)
        );
    }
}
