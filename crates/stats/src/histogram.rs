//! Histograms with the tutorial's presentation rules built in.
//!
//! Slide 144 ("Manipulating cell size in histograms") shows how bin width
//! choices can distort a distribution, and gives the rule of thumb: *each
//! cell should have at least five points*. [`Histogram`] exposes both a
//! fixed-bin constructor and [`Histogram::auto`], which starts from the
//! Sturges bin count and coarsens until the rule is satisfied (or a single
//! bin remains).

use crate::{check_finite, StatsError};

/// A histogram over `f64` observations with equal-width cells.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width cells spanning
    /// `[min(data), max(data)]`.
    pub fn with_bins(data: &[f64], bins: usize) -> Result<Self, StatsError> {
        check_finite(data)?;
        if data.is_empty() {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter("bins must be >= 1"));
        }
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = if hi > lo { hi - lo } else { 1.0 };
        let width = span / bins as f64;
        let mut counts = vec![0usize; bins];
        for &v in data {
            let mut idx = ((v - lo) / width) as usize;
            if idx >= bins {
                idx = bins - 1; // max value lands in the last cell
            }
            counts[idx] += 1;
        }
        Ok(Histogram {
            lo,
            width,
            counts,
            total: data.len(),
        })
    }

    /// Builds a histogram whose bin count respects the five-points-per-cell
    /// rule: starts from the Sturges estimate `ceil(log2 n) + 1` and halves
    /// the bin count until every *non-empty* cell holds at least
    /// `min_per_cell` points (default rule: 5), or one bin remains.
    pub fn auto(data: &[f64], min_per_cell: usize) -> Result<Self, StatsError> {
        check_finite(data)?;
        if data.is_empty() {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        let mut bins = ((data.len() as f64).log2().ceil() as usize + 1).max(1);
        loop {
            let h = Histogram::with_bins(data, bins)?;
            if bins == 1 || h.satisfies_cell_rule(min_per_cell) {
                return Ok(h);
            }
            bins = (bins / 2).max(1);
        }
    }

    /// True if every non-empty cell has at least `min_per_cell` points —
    /// the tutorial's rule of thumb with the default of 5.
    pub fn satisfies_cell_rule(&self, min_per_cell: usize) -> bool {
        self.counts.iter().all(|&c| c == 0 || c >= min_per_cell)
    }

    /// Number of cells.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in cell `i`.
    pub fn count(&self, i: usize) -> usize {
        self.counts[i]
    }

    /// All counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// The `[lo, hi)` range of cell `i` (the last cell is closed).
    pub fn cell_range(&self, i: usize) -> (f64, f64) {
        let lo = self.lo + i as f64 * self.width;
        (lo, lo + self.width)
    }

    /// Total number of observations.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Fraction of observations in cell `i`.
    pub fn frequency(&self, i: usize) -> f64 {
        self.counts[i] as f64 / self.total as f64
    }

    /// Renders an ASCII bar chart (one row per cell), the poor-researcher's
    /// gnuplot for terminal inspection.
    pub fn render_ascii(&self, max_width: usize) -> String {
        let max_count = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.cell_range(i);
            let bar_len = (c * max_width).div_ceil(max_count);
            let bar: String = std::iter::repeat_n('#', bar_len).collect();
            out.push_str(&format!("[{lo:10.3},{hi:10.3}) {c:6} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_bins_count_correctly() {
        // Values 0..12 in 6 bins of width 2 — the slide-144 example shape.
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let h = Histogram::with_bins(&data, 6).unwrap();
        assert_eq!(h.bins(), 6);
        assert_eq!(h.total(), 12);
        // 11.0 / width ~1.833: last bin holds the max.
        let total: usize = h.counts().iter().sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn max_value_lands_in_last_cell() {
        let data = [0.0, 5.0, 10.0];
        let h = Histogram::with_bins(&data, 2).unwrap();
        // Bins are half-open [lo, hi): 5.0 sits exactly on the boundary and
        // belongs to bin 1; the max (10.0) is clamped into the last bin.
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        let total: usize = h.counts().iter().sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn constant_data_single_spike() {
        let data = [7.0; 10];
        let h = Histogram::with_bins(&data, 4).unwrap();
        assert_eq!(h.counts().iter().sum::<usize>(), 10);
        assert_eq!(h.count(0), 10);
    }

    #[test]
    fn cell_rule_detection() {
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let fine = Histogram::with_bins(&data, 20).unwrap();
        assert!(!fine.satisfies_cell_rule(5));
        let coarse = Histogram::with_bins(&data, 4).unwrap();
        assert!(coarse.satisfies_cell_rule(5));
    }

    #[test]
    fn auto_coarsens_until_rule_holds() {
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let h = Histogram::auto(&data, 5).unwrap();
        assert!(h.satisfies_cell_rule(5));
        assert!(h.bins() >= 1);
    }

    #[test]
    fn auto_handles_tiny_samples() {
        let h = Histogram::auto(&[1.0, 2.0], 5).unwrap();
        assert_eq!(h.bins(), 1);
        assert_eq!(h.count(0), 2);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let data: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let h = Histogram::with_bins(&data, 7).unwrap();
        let sum: f64 = (0..h.bins()).map(|i| h.frequency(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cell_ranges_tile_the_domain() {
        let data = [0.0, 10.0];
        let h = Histogram::with_bins(&data, 5).unwrap();
        for i in 0..4 {
            let (_, hi) = h.cell_range(i);
            let (lo_next, _) = h.cell_range(i + 1);
            assert!((hi - lo_next).abs() < 1e-12);
        }
        assert_eq!(h.cell_range(0).0, 0.0);
        assert!((h.cell_range(4).1 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let data: Vec<f64> = (0..30).map(|i| (i % 3) as f64).collect();
        let h = Histogram::with_bins(&data, 3).unwrap();
        let art = h.render_ascii(40);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains('#'));
    }

    #[test]
    fn rejects_empty_and_zero_bins() {
        assert!(Histogram::with_bins(&[], 3).is_err());
        assert!(Histogram::with_bins(&[1.0], 0).is_err());
        assert!(Histogram::auto(&[], 5).is_err());
    }
}
