//! Descriptive statistics over a sample of measurements.
//!
//! The tutorial's measurement chapters ("What to measure?", "How to run")
//! assume every reported number is backed by replicated runs; [`Summary`]
//! is the crate's canonical reduction of such a replication set.

use crate::StatsError;

/// A single-pass, numerically stable summary of a sample.
///
/// Uses Welford's online algorithm for mean and variance so it can also be
/// fed incrementally (e.g. by a benchmark runner streaming replications).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum_ln: f64,
    all_positive: bool,
    values: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum_ln: 0.0,
            all_positive: true,
            values: Vec::new(),
        }
    }

    /// Builds a summary from a slice in one call.
    pub fn from_slice(data: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in data {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        if v > 0.0 {
            self.sum_ln += v.ln();
        } else {
            self.all_positive = false;
        }
        self.values.push(v);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Arithmetic mean. Returns 0 for an empty sample.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (n − 1 denominator).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean: s / sqrt(n).
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Coefficient of variation (stddev / mean); a quick "is my experiment
    /// noisy?" indicator. Returns `None` if the mean is zero.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        let m = self.mean();
        if m == 0.0 {
            None
        } else {
            Some(self.stddev() / m.abs())
        }
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Range (max − min); 0 if fewer than 2 observations.
    pub fn range(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.max - self.min
        }
    }

    /// Geometric mean; `None` if any observation is non-positive.
    ///
    /// The geometric mean is the right way to average *ratios* (e.g. the
    /// DBG/OPT relative execution times of experiment E3), where the
    /// arithmetic mean would over-weight large ratios.
    pub fn geometric_mean(&self) -> Option<f64> {
        if self.n == 0 || !self.all_positive {
            None
        } else {
            Some((self.sum_ln / self.n as f64).exp())
        }
    }

    /// The p-th percentile (0 ≤ p ≤ 100) using linear interpolation between
    /// order statistics (the "type 7" definition used by most tools).
    pub fn percentile(&self, p: f64) -> Result<f64, StatsError> {
        if self.n == 0 {
            return Err(StatsError::NotEnoughData { needed: 1, got: 0 });
        }
        if !(0.0..=100.0).contains(&p) {
            return Err(StatsError::InvalidParameter(
                "percentile must be in [0,100]",
            ));
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in summary"));
        let rank = p / 100.0 * (self.n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Ok(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Result<f64, StatsError> {
        self.percentile(50.0)
    }

    /// The raw observations, in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Merges another summary into this one (order of `values` is this
    /// summary's observations followed by the other's).
    pub fn merge(&mut self, other: &Summary) {
        for &v in &other.values {
            self.push(v);
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.stddev(),
            if self.n == 0 { 0.0 } else { self.min },
            if self.n == 0 { 0.0 } else { self.max },
        )
    }
}

/// Harmonic mean of a slice; the correct average for *rates* (e.g.
/// queries/second across equal-work phases). Returns `None` if the slice is
/// empty or contains non-positive values.
pub fn harmonic_mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() || data.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let recip_sum: f64 = data.iter().map(|&v| 1.0 / v).sum();
    Some(data.len() as f64 / recip_sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert!(s.median().is_err());
        assert!(s.geometric_mean().is_none());
    }

    #[test]
    fn mean_and_variance_match_textbook() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n-1: Σ(x-5)² = 32, /7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.range(), 0.0);
        assert_eq!(s.median().unwrap(), 42.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.percentile(0.0).unwrap(), 1.0);
        assert_eq!(s.percentile(100.0).unwrap(), 4.0);
        assert!((s.median().unwrap() - 2.5).abs() < 1e-12);
        assert!((s.percentile(25.0).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_rejects_out_of_range() {
        let s = Summary::from_slice(&[1.0]);
        assert!(s.percentile(101.0).is_err());
        assert!(s.percentile(-0.1).is_err());
    }

    #[test]
    fn geometric_mean_of_ratios() {
        let s = Summary::from_slice(&[2.0, 8.0]);
        assert!((s.geometric_mean().unwrap() - 4.0).abs() < 1e-12);
        let neg = Summary::from_slice(&[2.0, -8.0]);
        assert!(neg.geometric_mean().is_none());
    }

    #[test]
    fn harmonic_mean_of_rates() {
        // Classic: 60 km/h out, 30 km/h back -> 40 km/h average speed.
        assert!((harmonic_mean(&[60.0, 30.0]).unwrap() - 40.0).abs() < 1e-12);
        assert!(harmonic_mean(&[]).is_none());
        assert!(harmonic_mean(&[1.0, 0.0]).is_none());
    }

    #[test]
    fn merge_is_equivalent_to_concatenation() {
        let mut a = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let b = Summary::from_slice(&[10.0, 20.0]);
        a.merge(&b);
        let c = Summary::from_slice(&[1.0, 2.0, 3.0, 10.0, 20.0]);
        assert_eq!(a.count(), c.count());
        assert!((a.mean() - c.mean()).abs() < 1e-12);
        assert!((a.variance() - c.variance()).abs() < 1e-9);
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::from_slice(&[10.0, 10.0, 10.0]);
        assert_eq!(s.coefficient_of_variation().unwrap(), 0.0);
        let z = Summary::from_slice(&[-1.0, 1.0]);
        assert!(z.coefficient_of_variation().is_none());
    }

    #[test]
    fn display_contains_count_and_mean() {
        let s = Summary::from_slice(&[1.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=2.0000"));
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // A classic catastrophic-cancellation case for naive sum-of-squares.
        let base = 1.0e9;
        let s = Summary::from_slice(&[base + 4.0, base + 7.0, base + 13.0, base + 16.0]);
        assert!((s.mean() - (base + 10.0)).abs() < 1e-3);
        assert!((s.variance() - 30.0).abs() < 1e-6);
    }
}
