//! Confidence intervals for measured quantities.
//!
//! Slide 142 of the tutorial ("Plot random quantities without confidence
//! intervals") is a *pictorial game* — a way to lie with charts. The fix is
//! to compute and plot intervals; this module provides them, along with the
//! overlap semantics the tutorial calls out: *"Overlapping confidence
//! intervals sometimes mean the two quantities are statistically
//! indifferent."*

use crate::descriptive::Summary;
use crate::special::student_t_two_sided;
use crate::{check_finite, StatsError};

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The point estimate (usually the sample mean).
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// The confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval (the "error bar" length).
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Relative half-width as a fraction of the estimate; a common stopping
    /// criterion for adaptive replication ("replicate until the 95% CI is
    /// within 2% of the mean"). `None` when the estimate is 0.
    pub fn relative_half_width(&self) -> Option<f64> {
        if self.estimate == 0.0 {
            None
        } else {
            Some(self.half_width() / self.estimate.abs())
        }
    }

    /// Does the interval contain `value`?
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Do two intervals overlap?
    ///
    /// Per the tutorial: overlapping intervals mean the difference between
    /// the two quantities may not be statistically meaningful, so a bar chart
    /// claiming MINE beats YOURS is not justified by the point estimates
    /// alone.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lower <= other.upper && other.lower <= self.upper
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} [{:.4}, {:.4}] @{:.0}%",
            self.estimate,
            self.lower,
            self.upper,
            self.level * 100.0
        )
    }
}

/// Computes a Student-t confidence interval for the mean of `data` at the
/// given confidence `level` (e.g. 0.95).
///
/// Requires at least two observations; with one replication there is no
/// variance estimate — which is precisely why the tutorial insists on
/// replication ("variation due to a factor must be compared to that due to
/// errors").
///
/// ```
/// let ci = perfeval_stats::ci::mean_confidence_interval(
///     &[10.0, 11.0, 9.0, 10.5, 9.5], 0.95).unwrap();
/// assert!(ci.contains(10.0));
/// assert!(!ci.contains(20.0));
/// ```
pub fn mean_confidence_interval(
    data: &[f64],
    level: f64,
) -> Result<ConfidenceInterval, StatsError> {
    check_finite(data)?;
    if data.len() < 2 {
        return Err(StatsError::NotEnoughData {
            needed: 2,
            got: data.len(),
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter("level must be in (0,1)"));
    }
    let s = Summary::from_slice(data);
    let df = (s.count() - 1) as f64;
    let t = student_t_two_sided(level, df);
    let hw = t * s.std_error();
    Ok(ConfidenceInterval {
        estimate: s.mean(),
        lower: s.mean() - hw,
        upper: s.mean() + hw,
        level,
    })
}

/// Computes how many *additional* replications are likely needed to reach a
/// target relative CI half-width, assuming the variance estimate from the
/// pilot sample holds.
///
/// Returns 0 if the target is already met. This implements the tutorial's
/// two-stage advice quantitatively: run a few pilot replications, then decide
/// how many more you need.
pub fn replications_for_target(
    pilot: &[f64],
    level: f64,
    target_relative_half_width: f64,
) -> Result<usize, StatsError> {
    let ci = mean_confidence_interval(pilot, level)?;
    if target_relative_half_width <= 0.0 {
        return Err(StatsError::InvalidParameter(
            "target_relative_half_width must be > 0",
        ));
    }
    let Some(current) = ci.relative_half_width() else {
        return Err(StatsError::InvalidParameter("mean of pilot sample is zero"));
    };
    if current <= target_relative_half_width {
        return Ok(0);
    }
    // Half-width shrinks ~ 1/sqrt(n): solve n_new = n * (current/target)^2.
    let n = pilot.len() as f64;
    let needed = (n * (current / target_relative_half_width).powi(2)).ceil() as usize;
    Ok(needed.saturating_sub(pilot.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_matches_hand_computation() {
        // data: 10, 12, 14 -> mean 12, sd 2, se 2/sqrt(3)
        // t(0.95, df=2) = 4.303 -> hw = 4.303 * 1.1547 = 4.968
        let ci = mean_confidence_interval(&[10.0, 12.0, 14.0], 0.95).unwrap();
        assert!((ci.estimate - 12.0).abs() < 1e-12);
        assert!(
            (ci.half_width() - 4.968).abs() < 5e-3,
            "hw={}",
            ci.half_width()
        );
    }

    #[test]
    fn ci_requires_two_points() {
        assert_eq!(
            mean_confidence_interval(&[1.0], 0.95),
            Err(StatsError::NotEnoughData { needed: 2, got: 1 })
        );
    }

    #[test]
    fn ci_rejects_bad_level() {
        assert!(mean_confidence_interval(&[1.0, 2.0], 0.0).is_err());
        assert!(mean_confidence_interval(&[1.0, 2.0], 1.0).is_err());
    }

    #[test]
    fn ci_rejects_nan() {
        assert_eq!(
            mean_confidence_interval(&[1.0, f64::NAN], 0.95),
            Err(StatsError::NonFiniteInput)
        );
    }

    #[test]
    fn higher_level_means_wider_interval() {
        let data = [5.0, 6.0, 7.0, 5.5, 6.5];
        let c90 = mean_confidence_interval(&data, 0.90).unwrap();
        let c99 = mean_confidence_interval(&data, 0.99).unwrap();
        assert!(c99.half_width() > c90.half_width());
    }

    #[test]
    fn overlap_semantics() {
        let a = ConfidenceInterval {
            estimate: 10.0,
            lower: 9.0,
            upper: 11.0,
            level: 0.95,
        };
        let b = ConfidenceInterval {
            estimate: 11.5,
            lower: 10.5,
            upper: 12.5,
            level: 0.95,
        };
        let c = ConfidenceInterval {
            estimate: 20.0,
            lower: 19.0,
            upper: 21.0,
            level: 0.95,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        // Touching endpoints count as overlap.
        let d = ConfidenceInterval {
            estimate: 12.0,
            lower: 11.0,
            upper: 13.0,
            level: 0.95,
        };
        assert!(a.overlaps(&d));
    }

    #[test]
    fn relative_half_width() {
        let ci = ConfidenceInterval {
            estimate: 100.0,
            lower: 95.0,
            upper: 105.0,
            level: 0.95,
        };
        assert!((ci.relative_half_width().unwrap() - 0.05).abs() < 1e-12);
        let zero = ConfidenceInterval {
            estimate: 0.0,
            lower: -1.0,
            upper: 1.0,
            level: 0.95,
        };
        assert!(zero.relative_half_width().is_none());
    }

    #[test]
    fn replications_for_target_already_met() {
        // Very tight data: CI is tiny already.
        let data = [100.0, 100.001, 99.999, 100.0, 100.0005, 99.9995];
        let extra = replications_for_target(&data, 0.95, 0.05).unwrap();
        assert_eq!(extra, 0);
    }

    #[test]
    fn replications_for_target_scales_with_noise() {
        let noisy = [50.0, 150.0, 80.0, 120.0];
        let extra = replications_for_target(&noisy, 0.95, 0.02).unwrap();
        assert!(
            extra > 10,
            "noisy data should need many more reps, got {extra}"
        );
    }

    #[test]
    fn display_formats() {
        let ci = ConfidenceInterval {
            estimate: 1.0,
            lower: 0.5,
            upper: 1.5,
            level: 0.95,
        };
        assert_eq!(ci.to_string(), "1.0000 [0.5000, 1.5000] @95%");
    }
}
