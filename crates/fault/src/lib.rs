//! # perfeval-fault
//!
//! Seeded, deterministic fault injection for the `perfeval` execution
//! stack.
//!
//! The tutorial's "experimental mistakes" catalogue is full of runs that
//! went wrong *silently* — an interrupted measurement, a perturbed clock, a
//! half-written result file. Kalibera & Jones and Touati both show that one
//! undetected bad run corrupts an effect estimate; the only way to trust
//! the recovery machinery (retries, deadlines, quarantine, cache
//! re-measurement) is to *test it*, and the only way to test it repeatably
//! is to make the faults themselves deterministic.
//!
//! A [`FaultRegistry`] holds a set of [`Failpoint`]s. Production code is
//! threaded with named **sites** (`"exec.unit.run"`, `"cache.store"`,
//! `"minidb.execute"`, …); each site call carries a **key** — a stable
//! coordinate such as a run-plan unit index or a cache key — and an
//! **attempt** number. Whether a failpoint fires is a pure function of
//! `(site, key, attempt, seed)`, never of arrival order, so the same fault
//! schedule replays identically across thread counts, run-order policies,
//! and repeated executions. That purity is what makes the retry-determinism
//! proptests in `tests/fault_exec.rs` possible.
//!
//! Supported [`FaultAction`]s:
//!
//! * [`FaultAction::Panic`] — the unit dies (a worker crash).
//! * [`FaultAction::DelayMs`] / [`FaultAction::JitterMs`] — injected
//!   latency, fixed or seeded-pseudorandom (interference).
//! * [`FaultAction::Hang`] — a bounded stall that cooperates with the
//!   scheduler's watchdog: it polls the per-unit cancel token and panics
//!   with [`TimeoutSignal`] when cancelled, so a hung unit becomes
//!   `UnitOutcome::TimedOut` instead of wedging the sweep.
//! * [`FaultAction::SkewClockNs`] — perturbs an attached
//!   [`AtomicClock`](perfeval_measure::AtomicClock), the "someone touched
//!   the clock mid-experiment" scenario.
//! * [`FaultAction::FailIo`] — reported to I/O call sites (the result
//!   cache) which degrade to a miss / skipped write.
//!
//! A registry with no armed failpoints is inert and cheap: every site
//! checks one boolean.
#![warn(missing_docs)]

use perfeval_measure::AtomicClock;
use perfeval_stats::rng::SplitMix64;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Panic payload used by a cancelled [`FaultAction::Hang`]: the scheduler's
/// unit wrapper downcasts to this to classify the unit as timed out (by the
/// watchdog) rather than panicked (by a crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeoutSignal;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Panic with `injected fault: <site>` — a crashed worker/unit.
    Panic,
    /// Sleep a fixed number of milliseconds — injected latency.
    DelayMs(f64),
    /// Sleep a seeded-pseudorandom duration in `[0, max_ms)` — injected
    /// jitter/interference. The duration is a pure function of
    /// `(site, key, attempt, seed)`.
    JitterMs(f64),
    /// Stall for up to `ms`, polling the current cancel token every
    /// millisecond; if the watchdog cancels first, panic with
    /// [`TimeoutSignal`]. The bound keeps un-watched tests terminating.
    Hang {
        /// Maximum stall in milliseconds.
        ms: f64,
    },
    /// Advance the registry's attached [`AtomicClock`] by this many
    /// nanoseconds (no-op without an attached clock).
    SkewClockNs(u64),
    /// Report an I/O failure to the call site (which must consult
    /// [`FaultRegistry::io_fails`]); no side effect by itself.
    FailIo,
}

/// Which `(key, attempt)` coordinates a failpoint fires on. All variants
/// are pure functions of their inputs — no internal counters — so firing
/// is independent of execution order and thread count.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire only for this key.
    Key(u64),
    /// Fire for any of these keys.
    Keys(Vec<u64>),
    /// Fire when `key % modulus == remainder`.
    KeyModulo {
        /// Divisor (must be non-zero).
        modulus: u64,
        /// Matching remainder.
        remainder: u64,
    },
    /// Fire pseudo-randomly on roughly `permille`/1000 of keys, decided by
    /// a seeded hash of `(site, key)` — deterministic, order-independent.
    Seeded {
        /// Firing rate out of 1000.
        permille: u16,
        /// Extra seed mixed into the decision.
        seed: u64,
    },
}

impl Trigger {
    fn matches(&self, site: &str, key: u64) -> bool {
        match self {
            Trigger::Always => true,
            Trigger::Key(k) => key == *k,
            Trigger::Keys(ks) => ks.contains(&key),
            Trigger::KeyModulo { modulus, remainder } => {
                *modulus != 0 && key % *modulus == *remainder
            }
            Trigger::Seeded { permille, seed } => {
                let mut rng = SplitMix64::split(*seed ^ fnv1a(site.as_bytes()), key);
                rng.next_below(1000) < u64::from(*permille)
            }
        }
    }
}

/// One armed fault: at `site`, for coordinates matched by `trigger`, on
/// attempts below `attempts_below` (None = all attempts), perform `action`.
///
/// The attempt window is what separates *recoverable* faults (fire on the
/// first attempt only — a retry succeeds) from *persistent* ones (fire on
/// every attempt — the unit ends up quarantined).
#[derive(Debug, Clone, PartialEq)]
pub struct Failpoint {
    /// Site name this failpoint is armed at.
    pub site: String,
    /// Coordinate filter.
    pub trigger: Trigger,
    /// Fire only on attempts `< n` when `Some(n)` (attempts are 1-based:
    /// `Some(2)` fires on the first attempt only).
    pub attempts_below: Option<u32>,
    /// The fault to perform.
    pub action: FaultAction,
}

/// FNV-1a 64-bit, the workspace's stable string hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A poisoned counter map only means some thread panicked (possibly by
    // our own injected Panic action) — the counts themselves are fine.
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// The cancel token of the unit currently executing on this thread,
    /// installed by the scheduler before each attempt. `Hang` polls it.
    static CANCEL: std::cell::RefCell<Option<Arc<AtomicBool>>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs (or clears) the calling thread's unit cancel token. The
/// scheduler sets this before each unit attempt and clears it after;
/// [`FaultAction::Hang`] and user experiments poll it via [`cancelled`].
pub fn set_cancel_token(token: Option<Arc<AtomicBool>>) {
    CANCEL.with(|slot| *slot.borrow_mut() = token);
}

/// True if the watchdog has cancelled the unit currently executing on this
/// thread. Long-running experiment code may poll this to honor deadlines
/// cooperatively (in-process fault injection cannot kill a thread).
pub fn cancelled() -> bool {
    CANCEL.with(|slot| {
        slot.borrow()
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    })
}

/// A registry of armed failpoints plus per-site hit/fired accounting.
///
/// Cloneable via `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct FaultRegistry {
    arms: Vec<Failpoint>,
    seed: u64,
    clock: Option<AtomicClock>,
    hits: Mutex<BTreeMap<String, u64>>,
    fired: Mutex<BTreeMap<String, u64>>,
}

impl FaultRegistry {
    /// An empty registry with a root seed (mixed into `Seeded` triggers and
    /// `JitterMs` durations).
    pub fn new(seed: u64) -> Self {
        FaultRegistry {
            seed,
            ..FaultRegistry::default()
        }
    }

    /// A registry that injects nothing — the default for production runs.
    pub fn disabled() -> Self {
        FaultRegistry::default()
    }

    /// Attaches a clock for [`FaultAction::SkewClockNs`] to perturb.
    pub fn with_clock(mut self, clock: AtomicClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Arms a failpoint (builder style).
    pub fn armed(mut self, failpoint: Failpoint) -> Self {
        self.arms.push(failpoint);
        self
    }

    /// Arms a failpoint firing on all attempts at `site` for `trigger`.
    pub fn armed_always(self, site: &str, trigger: Trigger, action: FaultAction) -> Self {
        self.armed(Failpoint {
            site: site.to_owned(),
            trigger,
            attempts_below: None,
            action,
        })
    }

    /// Arms a *recoverable* failpoint: fires only on the first
    /// `attempts - 1` tries, so a scheduler granted `attempts` total
    /// attempts recovers deterministically.
    pub fn armed_transient(
        self,
        site: &str,
        trigger: Trigger,
        attempts: u32,
        action: FaultAction,
    ) -> Self {
        self.armed(Failpoint {
            site: site.to_owned(),
            trigger,
            attempts_below: Some(attempts),
            action,
        })
    }

    /// True if any failpoint is armed (cheap site-side early-out).
    pub fn is_armed(&self) -> bool {
        !self.arms.is_empty()
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total hits recorded at `site` (fired or not).
    pub fn hits(&self, site: &str) -> u64 {
        lock_recover(&self.hits).get(site).copied().unwrap_or(0)
    }

    /// Total faults fired at `site`.
    pub fn fired(&self, site: &str) -> u64 {
        lock_recover(&self.fired).get(site).copied().unwrap_or(0)
    }

    /// Every site with at least one fired fault, with counts — for the
    /// exhibit's honesty report.
    pub fn fired_summary(&self) -> Vec<(String, u64)> {
        lock_recover(&self.fired)
            .iter()
            .map(|(s, n)| (s.clone(), *n))
            .collect()
    }

    fn record_hit(&self, site: &str) {
        *lock_recover(&self.hits).entry(site.to_owned()).or_insert(0) += 1;
    }

    fn record_fired(&self, site: &str) {
        *lock_recover(&self.fired)
            .entry(site.to_owned())
            .or_insert(0) += 1;
    }

    /// Evaluates `site` at `(key, attempt)` and performs every matching
    /// non-I/O action. Attempts are 1-based; pass `1` for sites without a
    /// retry loop.
    ///
    /// # Panics
    /// Panics when a matching [`FaultAction::Panic`] fires, or when a
    /// matching [`FaultAction::Hang`] is cancelled by the watchdog (with a
    /// [`TimeoutSignal`] payload).
    pub fn fire(&self, site: &str, key: u64, attempt: u32) {
        if !self.is_armed() {
            return;
        }
        self.record_hit(site);
        // Collect first so the counters' lock is released before any
        // sleeping/panicking action runs.
        let matching: Vec<FaultAction> = self
            .arms
            .iter()
            .filter(|fp| {
                fp.site == site
                    && fp.attempts_below.is_none_or(|n| attempt < n)
                    && !matches!(fp.action, FaultAction::FailIo)
                    && fp.trigger.matches(site, key)
            })
            .map(|fp| fp.action.clone())
            .collect();
        for action in matching {
            self.record_fired(site);
            self.perform(&action, site, key, attempt);
        }
    }

    /// Evaluates only [`FaultAction::FailIo`] arms at `site` for `key`;
    /// returns true if the I/O operation should be failed. Never panics or
    /// sleeps.
    pub fn io_fails(&self, site: &str, key: u64) -> bool {
        if !self.is_armed() {
            return false;
        }
        self.record_hit(site);
        let fails = self.arms.iter().any(|fp| {
            fp.site == site
                && matches!(fp.action, FaultAction::FailIo)
                && fp.trigger.matches(site, key)
        });
        if fails {
            self.record_fired(site);
        }
        fails
    }

    fn perform(&self, action: &FaultAction, site: &str, key: u64, attempt: u32) {
        match action {
            FaultAction::Panic => panic!("injected fault: {site} (key {key}, attempt {attempt})"),
            FaultAction::DelayMs(ms) => sleep_ms(*ms),
            FaultAction::JitterMs(max_ms) => {
                let mut rng = SplitMix64::split(
                    self.seed ^ fnv1a(site.as_bytes()) ^ (u64::from(attempt) << 56),
                    key,
                );
                sleep_ms(rng.next_f64() * *max_ms);
            }
            FaultAction::Hang { ms } => {
                // Sleep in 1 ms slices, cooperating with the watchdog: a
                // cancelled hang panics with TimeoutSignal so the unit
                // wrapper classifies it as TimedOut, not Panicked.
                let deadline = std::time::Instant::now()
                    + std::time::Duration::from_nanos((ms.max(0.0) * 1e6) as u64);
                while std::time::Instant::now() < deadline {
                    if cancelled() {
                        std::panic::panic_any(TimeoutSignal);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            FaultAction::SkewClockNs(ns) => {
                if let Some(clock) = &self.clock {
                    clock.advance_ns(*ns);
                }
            }
            FaultAction::FailIo => {}
        }
    }
}

fn sleep_ms(ms: f64) {
    if ms > 0.0 {
        std::thread::sleep(std::time::Duration::from_nanos((ms * 1e6) as u64));
    }
}

/// Extracts a human-readable message from a panic payload (`&str` or
/// `String` payloads pass through; anything else is labelled opaquely).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if payload.is::<TimeoutSignal>() {
        return "cancelled by watchdog deadline".to_owned();
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_owned();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    "non-string panic payload".to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfeval_measure::Clock;

    #[test]
    fn disabled_registry_is_inert() {
        let r = FaultRegistry::disabled();
        assert!(!r.is_armed());
        r.fire("anything", 0, 1);
        assert!(!r.io_fails("anything", 0));
        assert_eq!(r.hits("anything"), 0, "inert registry records nothing");
    }

    #[test]
    fn keyed_panic_fires_only_on_its_key() {
        let r = FaultRegistry::new(1).armed_always("s", Trigger::Key(3), FaultAction::Panic);
        r.fire("s", 0, 1);
        r.fire("s", 2, 1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.fire("s", 3, 1)))
            .expect_err("key 3 must panic");
        assert!(panic_message(err.as_ref()).contains("injected fault: s"));
        assert_eq!(r.hits("s"), 3);
        assert_eq!(r.fired("s"), 1);
    }

    #[test]
    fn attempt_window_makes_faults_transient() {
        // Fires on attempts < 3 (i.e. attempts 1 and 2); attempt 3 is clean.
        let r = FaultRegistry::new(0).armed_transient("s", Trigger::Always, 3, FaultAction::Panic);
        for attempt in [1, 2] {
            assert!(
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.fire("s", 7, attempt)))
                    .is_err(),
                "attempt {attempt} fires"
            );
        }
        r.fire("s", 7, 3); // recovers
        assert_eq!(r.fired("s"), 2);
    }

    #[test]
    fn seeded_trigger_is_deterministic_and_seed_sensitive() {
        let fires = |seed: u64| -> Vec<u64> {
            let t = Trigger::Seeded {
                permille: 250,
                seed,
            };
            (0..200).filter(|&k| t.matches("site", k)).collect()
        };
        assert_eq!(fires(42), fires(42), "pure function of (site, key, seed)");
        assert_ne!(fires(42), fires(43), "different seeds, different schedule");
        let rate = fires(42).len();
        assert!((20..=80).contains(&rate), "~25% of 200 keys, got {rate}");
    }

    #[test]
    fn modulo_and_keys_triggers() {
        let m = Trigger::KeyModulo {
            modulus: 4,
            remainder: 1,
        };
        assert!(m.matches("s", 5) && m.matches("s", 1) && !m.matches("s", 4));
        let ks = Trigger::Keys(vec![2, 9]);
        assert!(ks.matches("s", 9) && !ks.matches("s", 3));
        assert!(
            !Trigger::KeyModulo {
                modulus: 0,
                remainder: 0
            }
            .matches("s", 0),
            "zero modulus never fires instead of dividing by zero"
        );
    }

    #[test]
    fn io_failures_are_reported_not_performed() {
        let r =
            FaultRegistry::new(0).armed_always("cache.store", Trigger::Key(8), FaultAction::FailIo);
        assert!(r.io_fails("cache.store", 8));
        assert!(!r.io_fails("cache.store", 9));
        // fire() ignores FailIo arms entirely.
        r.fire("cache.store", 8, 1);
        assert_eq!(r.fired("cache.store"), 1);
    }

    #[test]
    fn clock_skew_advances_attached_clock() {
        let clock = AtomicClock::new();
        let r = FaultRegistry::new(0)
            .with_clock(clock.clone())
            .armed_always("tick", Trigger::Always, FaultAction::SkewClockNs(500));
        r.fire("tick", 0, 1);
        r.fire("tick", 1, 1);
        assert_eq!(clock.now_ns(), 1000);
    }

    #[test]
    fn hang_is_bounded_and_cancellable() {
        let r = FaultRegistry::new(0).armed_always(
            "h",
            Trigger::Always,
            FaultAction::Hang { ms: 5000.0 },
        );
        let flag = Arc::new(AtomicBool::new(false));
        set_cancel_token(Some(flag.clone()));
        flag.store(true, Ordering::Relaxed); // watchdog already fired
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.fire("h", 0, 1)))
            .expect_err("cancelled hang panics");
        assert!(err.is::<TimeoutSignal>(), "payload marks a timeout");
        set_cancel_token(None);
        assert!(!cancelled(), "token cleared");
    }

    #[test]
    fn uncancelled_hang_respects_its_bound() {
        let r =
            FaultRegistry::new(0).armed_always("h", Trigger::Always, FaultAction::Hang { ms: 5.0 });
        set_cancel_token(None);
        let t0 = std::time::Instant::now();
        r.fire("h", 0, 1); // returns after ~5 ms, no watchdog needed
        assert!(t0.elapsed() >= std::time::Duration::from_millis(4));
    }

    #[test]
    fn jitter_is_deterministic_in_duration_choice() {
        // Two registries with the same seed pick the same jitter stream;
        // we can't observe sleep durations directly, but the underlying
        // RNG draw is pure — exercise the path and the accounting.
        let r =
            FaultRegistry::new(9).armed_always("j", Trigger::Always, FaultAction::JitterMs(0.01));
        r.fire("j", 1, 1);
        r.fire("j", 2, 1);
        assert_eq!(r.fired("j"), 2);
    }

    #[test]
    fn panic_message_extracts_strings() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&"boom".to_owned()), "boom");
        assert_eq!(
            panic_message(&TimeoutSignal),
            "cancelled by watchdog deadline"
        );
        assert_eq!(panic_message(&42u64), "non-string panic payload");
    }
}
