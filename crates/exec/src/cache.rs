//! A content-addressed, on-disk result cache so sweeps resume.
//!
//! Long factorial sweeps die — machines reboot, jobs hit walltime, someone
//! trips over the power cord. The repeatability chapter's answer is to make
//! every measurement re-derivable from recorded inputs; this cache makes it
//! *cheap*: a completed unit is keyed by a hash of everything that
//! determines its response (factor assignment, protocol, per-unit seed,
//! environment fingerprint) and re-running the sweep executes only the
//! units whose keys are absent.
//!
//! The store is deliberately primitive — one small file per key, written
//! via tmp + rename so a crash mid-write never leaves a corrupt entry.
//! No external serialization crates are available offline, so values are
//! plain decimal text.

use perfeval_core::runner::Assignment;
use perfeval_fault::FaultRegistry;
use perfeval_measure::env::EnvSpec;
use perfeval_measure::protocol::RunProtocol;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Monotonic discriminator for temp-file names: two threads (or two
/// processes racing on pid reuse) storing the same key must never write
/// the same temp path, or one rename publishes the other's half-written
/// bytes.
static TMP_DISCRIMINATOR: AtomicUsize = AtomicUsize::new(0);

/// FNV-1a 64-bit hash: tiny, stable across platforms and runs (unlike
/// `std`'s `DefaultHasher`, which is documented as unstable).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The environment component of a cache key: a cached result is only valid
/// on a machine that would plausibly reproduce it.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvFingerprint(String);

impl EnvFingerprint {
    /// Fingerprint of the current machine (CPU model/MHz, RAM, OS).
    pub fn capture() -> Self {
        EnvFingerprint::from_spec(&EnvSpec::capture())
    }

    /// Fingerprint of an explicit [`EnvSpec`] (tests, simulations).
    pub fn from_spec(spec: &EnvSpec) -> Self {
        EnvFingerprint(format!(
            "cpu={} {} @{}MHz caches={:?} ram={}MiB os={}",
            spec.cpu_vendor, spec.cpu_model, spec.cpu_mhz, spec.cache_kib, spec.ram_mib, spec.os
        ))
    }

    /// A fingerprint that matches nothing real — for simulated experiments
    /// whose responses do not depend on the hardware.
    pub fn simulated(label: &str) -> Self {
        EnvFingerprint(format!("simulated:{label}"))
    }

    /// The canonical string hashed into keys.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Everything that determines one unit's response, canonicalized to text.
/// Two units with equal canonical strings are the same measurement.
pub fn cache_key(
    assignment: &Assignment,
    protocol: &RunProtocol,
    replicate: usize,
    seed: u64,
    env: &EnvFingerprint,
) -> u64 {
    let canonical = format!(
        "assignment[{assignment}] protocol[{}] replicate[{replicate}] seed[{seed}] env[{}]",
        protocol.describe(),
        env.as_str()
    );
    fnv1a(canonical.as_bytes())
}

/// On-disk cache of unit responses.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    enabled: bool,
    faults: Option<Arc<FaultRegistry>>,
    /// Lookups that found an entry (resumed units).
    pub hits: std::sync::atomic::AtomicUsize,
    /// Lookups that found nothing (units that must execute).
    pub misses: std::sync::atomic::AtomicUsize,
}

impl ResultCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    /// Returns the I/O error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            dir,
            enabled: true,
            faults: None,
            hits: std::sync::atomic::AtomicUsize::new(0),
            misses: std::sync::atomic::AtomicUsize::new(0),
        })
    }

    /// Arms a fault registry: `cache.lookup` and `cache.store` failpoints
    /// (keyed by cache key) can then fail I/O deterministically. A failed
    /// lookup is a miss; a failed store is skipped — either way the cache
    /// degrades to re-measurement, never to a failed sweep.
    pub fn with_faults(mut self, faults: Arc<FaultRegistry>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// A cache that stores and returns nothing — the `--no-cache` escape
    /// hatch, so call sites need no `Option` plumbing.
    pub fn disabled() -> Self {
        ResultCache {
            dir: PathBuf::new(),
            enabled: false,
            faults: None,
            hits: std::sync::atomic::AtomicUsize::new(0),
            misses: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Whether lookups/stores do anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.unit"))
    }

    /// Looks up a unit response. `None` means the unit must execute.
    /// A torn, truncated, or otherwise unparseable entry is a miss, never
    /// a panic — the unit simply re-measures and overwrites it.
    pub fn lookup(&self, key: u64) -> Option<f64> {
        if !self.enabled {
            return None;
        }
        let io_failed = self
            .faults
            .as_ref()
            .is_some_and(|f| f.io_fails("cache.lookup", key));
        let found = if io_failed {
            None
        } else {
            std::fs::read_to_string(self.path_for(key))
                .ok()
                .and_then(|text| text.trim().parse::<f64>().ok())
        };
        match found {
            Some(v) => {
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a unit response. Write errors are swallowed — a cache that
    /// cannot persist degrades to re-measurement, never to a failed sweep.
    pub fn store(&self, key: u64, response: f64) {
        if !self.enabled {
            return;
        }
        if self
            .faults
            .as_ref()
            .is_some_and(|f| f.io_fails("cache.store", key))
        {
            return;
        }
        // The temp name carries pid + a process-wide counter: concurrent
        // stores of the *same* key (replicated sweeps racing, two sweep
        // processes sharing a cache dir) each write their own temp file,
        // so the final rename always publishes a complete entry.
        let tmp = self.dir.join(format!(
            "{key:016x}.{}-{}.tmp",
            std::process::id(),
            TMP_DISCRIMINATOR.fetch_add(1, Ordering::Relaxed)
        ));
        // 17 significant digits round-trip any f64 exactly.
        if std::fs::write(&tmp, format!("{response:.17e}\n")).is_ok()
            && std::fs::rename(&tmp, self.path_for(key)).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Number of entries on disk (0 when disabled).
    pub fn len(&self) -> usize {
        if !self.enabled {
            return 0;
        }
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "unit"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The directory backing this cache (empty path when disabled).
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfeval_core::factor::Level;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("perfeval-exec-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assignment(x: f64) -> Assignment {
        Assignment::new(vec![("x".into(), Level::Num(x))])
    }

    #[test]
    fn key_is_stable_and_sensitive() {
        let env = EnvFingerprint::simulated("test");
        let proto = RunProtocol::hot(0, 3);
        let k = cache_key(&assignment(1.0), &proto, 0, 42, &env);
        assert_eq!(k, cache_key(&assignment(1.0), &proto, 0, 42, &env));
        assert_ne!(k, cache_key(&assignment(2.0), &proto, 0, 42, &env));
        assert_ne!(k, cache_key(&assignment(1.0), &proto, 1, 42, &env));
        assert_ne!(k, cache_key(&assignment(1.0), &proto, 0, 43, &env));
        assert_ne!(
            k,
            cache_key(&assignment(1.0), &RunProtocol::cold(3), 0, 42, &env)
        );
        assert_ne!(
            k,
            cache_key(
                &assignment(1.0),
                &proto,
                0,
                42,
                &EnvFingerprint::simulated("other")
            )
        );
    }

    #[test]
    fn store_then_lookup_roundtrips_exactly() {
        let dir = temp_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let value = 123.456_789_012_345_67_f64;
        cache.store(7, value);
        assert_eq!(cache.lookup(7), Some(value), "f64 must round-trip bitwise");
        assert_eq!(cache.lookup(8), None);
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hit_miss_counters() {
        let dir = temp_dir("counters");
        let cache = ResultCache::open(&dir).unwrap();
        cache.store(1, 1.0);
        let _ = cache.lookup(1);
        let _ = cache.lookup(2);
        let _ = cache.lookup(1);
        assert_eq!(cache.hits.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert_eq!(cache.misses.load(std::sync::atomic::Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = ResultCache::disabled();
        cache.store(1, 1.0);
        assert_eq!(cache.lookup(1), None);
        assert!(!cache.is_enabled());
        assert!(cache.is_empty());
    }

    #[test]
    fn torn_or_truncated_entries_are_misses_not_panics() {
        let dir = temp_dir("torn");
        let cache = ResultCache::open(&dir).unwrap();
        // Simulate entries corrupted by a crash mid-write (pre-rename
        // discipline) or disk trouble: garbage, truncation, emptiness.
        for (key, bytes) in [
            (1u64, &b"not a number"[..]),
            (2, &b"1.23e"[..]),
            (3, &b""[..]),
            (4, &[0xFF, 0xFE, 0x00, 0x80][..]),
        ] {
            std::fs::write(dir.join(format!("{key:016x}.unit")), bytes).unwrap();
            assert_eq!(cache.lookup(key), None, "key {key} must read as a miss");
        }
        // A miss is recoverable: re-store overwrites the garbage.
        cache.store(1, 9.5);
        assert_eq!(cache.lookup(1), Some(9.5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_same_key_stores_never_publish_torn_entries() {
        let dir = temp_dir("race");
        let cache = ResultCache::open(&dir).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..50 {
                        cache.store(99, (t * 50 + i) as f64);
                    }
                });
            }
            let cache = &cache;
            s.spawn(move || {
                for _ in 0..200 {
                    if let Some(v) = cache.lookup(99) {
                        assert!(
                            (0.0..200.0).contains(&v),
                            "published entry must be one complete write, got {v}"
                        );
                    }
                }
            });
        });
        assert!(cache.lookup(99).is_some());
        // No stray temp files left behind.
        let tmps = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .count();
        assert_eq!(tmps, 0, "all temp files renamed or cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_failures_degrade_to_re_measurement() {
        use perfeval_fault::{FaultAction, FaultRegistry, Trigger};
        let dir = temp_dir("fault-io");
        let faults = Arc::new(
            FaultRegistry::new(3)
                .armed_always("cache.store", Trigger::Key(10), FaultAction::FailIo)
                .armed_always("cache.lookup", Trigger::Key(11), FaultAction::FailIo),
        );
        let cache = ResultCache::open(&dir)
            .unwrap()
            .with_faults(Arc::clone(&faults));
        // Failed store: nothing lands on disk, lookup misses.
        cache.store(10, 1.0);
        assert_eq!(cache.lookup(10), None);
        // Failed lookup: entry exists on disk but the read "fails" — the
        // unit re-measures rather than trusting unreadable state.
        cache.store(11, 2.0);
        assert_eq!(cache.lookup(11), None);
        assert_eq!(cache.len(), 1, "key 11's entry was stored");
        // Untouched keys behave normally.
        cache.store(12, 3.0);
        assert_eq!(cache.lookup(12), Some(3.0));
        assert!(faults.fired("cache.store") >= 1);
        assert!(faults.fired("cache.lookup") >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn env_fingerprint_reflects_spec() {
        let spec = EnvSpec::tutorial_laptop();
        let fp = EnvFingerprint::from_spec(&spec);
        assert!(fp.as_str().contains("Pentium"));
        assert_ne!(
            fp,
            EnvFingerprint::from_spec(&EnvSpec {
                ram_mib: 4096,
                ..spec
            })
        );
    }
}
