//! The worker pool, re-exported from the shared [`perfeval_pool`] crate.
//!
//! The pool started life here; it now also powers minidb's morsel-driven
//! parallel operators, so the implementation lives in `crates/pool` and
//! this module keeps the historical `perfeval_exec::pool::*` paths alive.

pub use perfeval_pool::{
    parallel_map, parallel_map_caught, parallel_map_traced, CaughtPanic, WorkerStats,
};
