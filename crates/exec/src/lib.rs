//! # perfeval-exec
//!
//! Deterministic parallel experiment execution for the `perfeval` toolkit.
//!
//! The tutorial's repeatability chapter demands that an experiment be
//! re-runnable bit-identically from its recorded configuration. This crate
//! extends that demand across threads: a design executed on 8 workers must
//! produce the *same* response table as the same design executed serially,
//! or parallelism has silently become a factor of the experiment. The
//! pieces that make it hold:
//!
//! * [`plan`] — [`plan::RunPlan`] expands a design × protocol into
//!   independent [`plan::RunUnit`]s (one measured replicate each), with
//!   per-unit seeds derived as a pure function of a root seed.
//! * [`order`] — [`order::OrderPolicy`]: as-designed, shuffled (the
//!   Jain ch. 16 recommendation), or replicate-major blocks. Order affects
//!   which environment drift lands on which unit — never which response
//!   lands in which design row.
//! * [`pool`] — a dependency-free worker pool (`std::thread::scope` + an
//!   atomic work cursor); results land in slots addressed by unit index.
//! * [`cache`] — a content-addressed on-disk result cache keyed by
//!   (assignment, protocol, seed, environment fingerprint), so interrupted
//!   sweeps resume without re-measuring. Disable with
//!   [`cache::ResultCache::disabled`] (the `--no-cache` escape hatch).
//! * [`progress`] — per-unit progress snapshots (completed/total,
//!   throughput, ETA) and an end-of-sweep [`progress::ExecReport`] with
//!   per-worker counters, straggler flags, and the per-unit failure
//!   taxonomy.
//! * [`outcome`] — failure containment: [`outcome::UnitOutcome`] (a unit
//!   panicking or hanging becomes a *value*, not a dead sweep),
//!   [`outcome::RetryPolicy`] (bounded seeded-backoff retries, per-unit
//!   wall-clock deadlines), and [`outcome::SweepResult`] (a partial sweep
//!   reports its missing cells instead of silently assembling).
//! * [`scheduler`] — [`scheduler::Scheduler`] ties the above together,
//!   with an `exec.unit.run` failpoint for `perfeval-fault` injection.
//! * [`runner_ext`] — [`runner_ext::ParallelRunner`] grafts
//!   `run_*_parallel` methods onto `perfeval_core::Runner`.
//!
//! ## Example
//!
//! ```
//! use perfeval_core::runner::{Assignment, Runner};
//! use perfeval_core::twolevel::TwoLevelDesign;
//! use perfeval_exec::ParallelRunner;
//!
//! let design = TwoLevelDesign::full(&["memory", "cache"]);
//! let experiment = |a: &Assignment| {
//!     40.0 + 20.0 * a.num("memory").unwrap() + 10.0 * a.num("cache").unwrap()
//!         + 5.0 * a.num("memory").unwrap() * a.num("cache").unwrap()
//! };
//! let runner = Runner::new(3);
//! let parallel = runner.run_two_level_parallel(&design, &experiment, 4);
//! let serial = runner.run_two_level_sync(&design, &experiment);
//! assert_eq!(parallel, serial); // bit-identical, by construction
//! ```
#![warn(missing_docs)]

pub mod cache;
pub mod order;
pub mod outcome;
pub mod plan;
pub mod pool;
pub mod progress;
pub mod runner_ext;
pub mod scheduler;

pub use cache::{cache_key, EnvFingerprint, ResultCache};
pub use order::OrderPolicy;
pub use outcome::{RetryPolicy, SweepResult, UnitOutcome, UnitReport};
pub use plan::{RunPlan, RunUnit};
pub use pool::{parallel_map, parallel_map_caught, parallel_map_traced, CaughtPanic, WorkerStats};
pub use progress::{ExecReport, ProgressSnapshot};
pub use runner_ext::ParallelRunner;
pub use scheduler::{Scheduler, UnitExperiment};
