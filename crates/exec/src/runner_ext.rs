//! `run_parallel`: the parallel sibling of [`Runner`]'s serial sync paths.
//!
//! `perfeval-core` cannot depend on this crate, so the parallel entry
//! points are an extension trait: bring [`ParallelRunner`] into scope and
//! every [`Runner`] gains `run_*_parallel` methods whose results are
//! bit-identical to the corresponding `run_*_sync` calls (the property the
//! workspace proptests assert).

use crate::cache::{EnvFingerprint, ResultCache};
use crate::order::OrderPolicy;
use crate::outcome::{RetryPolicy, SweepResult};
use crate::plan::RunPlan;
use crate::scheduler::Scheduler;
use perfeval_core::design::Design;
use perfeval_core::runner::{
    design_assignments, two_level_assignments, Assignment, ResponseTable, Runner, SyncExperiment,
};
use perfeval_core::twolevel::TwoLevelDesign;
use perfeval_measure::protocol::RunProtocol;
use perfeval_trace::Tracer;

/// Root seed used when the caller does not care about per-unit seeds
/// (plain [`SyncExperiment`]s never see them).
const DEFAULT_ROOT_SEED: u64 = 0;

/// Parallel execution methods for [`Runner`].
pub trait ParallelRunner {
    /// Executes an explicit run list on `threads` workers. The returned
    /// table is bit-identical to
    /// [`Runner::run_assignments_sync`] on the same inputs.
    fn run_assignments_parallel<E: SyncExperiment>(
        &self,
        assignments: Vec<Assignment>,
        experiment: &E,
        threads: usize,
    ) -> ResponseTable;

    /// Executes a multi-level [`Design`] on `threads` workers.
    fn run_design_parallel<E: SyncExperiment>(
        &self,
        design: &Design,
        experiment: &E,
        threads: usize,
    ) -> ResponseTable;

    /// Executes a [`TwoLevelDesign`] on `threads` workers.
    fn run_two_level_parallel<E: SyncExperiment>(
        &self,
        design: &TwoLevelDesign,
        experiment: &E,
        threads: usize,
    ) -> ResponseTable;

    /// [`ParallelRunner::run_assignments_parallel`] recording the sweep
    /// into `tracer`: one `sweep` root span plus per-unit `unit <n>` spans
    /// (with `queue-wait`/`run` children) on each worker's lane.
    fn run_assignments_parallel_traced<E: SyncExperiment>(
        &self,
        assignments: Vec<Assignment>,
        experiment: &E,
        threads: usize,
        tracer: &Tracer,
    ) -> ResponseTable;

    /// [`ParallelRunner::run_design_parallel`] recording into `tracer`.
    fn run_design_parallel_traced<E: SyncExperiment>(
        &self,
        design: &Design,
        experiment: &E,
        threads: usize,
        tracer: &Tracer,
    ) -> ResponseTable;

    /// [`ParallelRunner::run_two_level_parallel`] recording into `tracer`.
    fn run_two_level_parallel_traced<E: SyncExperiment>(
        &self,
        design: &TwoLevelDesign,
        experiment: &E,
        threads: usize,
        tracer: &Tracer,
    ) -> ResponseTable;

    /// Failure-contained execution of an explicit run list: a panicking or
    /// hanging experiment yields a [`SweepResult`] with per-unit outcomes
    /// instead of killing the process. `policy` sets attempts, backoff,
    /// and the per-unit deadline.
    fn run_assignments_contained<E: SyncExperiment>(
        &self,
        assignments: Vec<Assignment>,
        experiment: &E,
        threads: usize,
        policy: RetryPolicy,
    ) -> SweepResult;
}

impl ParallelRunner for Runner {
    fn run_assignments_parallel<E: SyncExperiment>(
        &self,
        assignments: Vec<Assignment>,
        experiment: &E,
        threads: usize,
    ) -> ResponseTable {
        run_assignments(self, assignments, experiment, threads, None)
    }

    fn run_design_parallel<E: SyncExperiment>(
        &self,
        design: &Design,
        experiment: &E,
        threads: usize,
    ) -> ResponseTable {
        self.run_assignments_parallel(design_assignments(design), experiment, threads)
    }

    fn run_two_level_parallel<E: SyncExperiment>(
        &self,
        design: &TwoLevelDesign,
        experiment: &E,
        threads: usize,
    ) -> ResponseTable {
        self.run_assignments_parallel(two_level_assignments(design), experiment, threads)
    }

    fn run_assignments_parallel_traced<E: SyncExperiment>(
        &self,
        assignments: Vec<Assignment>,
        experiment: &E,
        threads: usize,
        tracer: &Tracer,
    ) -> ResponseTable {
        run_assignments(self, assignments, experiment, threads, Some(tracer))
    }

    fn run_design_parallel_traced<E: SyncExperiment>(
        &self,
        design: &Design,
        experiment: &E,
        threads: usize,
        tracer: &Tracer,
    ) -> ResponseTable {
        self.run_assignments_parallel_traced(
            design_assignments(design),
            experiment,
            threads,
            tracer,
        )
    }

    fn run_two_level_parallel_traced<E: SyncExperiment>(
        &self,
        design: &TwoLevelDesign,
        experiment: &E,
        threads: usize,
        tracer: &Tracer,
    ) -> ResponseTable {
        self.run_assignments_parallel_traced(
            two_level_assignments(design),
            experiment,
            threads,
            tracer,
        )
    }

    fn run_assignments_contained<E: SyncExperiment>(
        &self,
        assignments: Vec<Assignment>,
        experiment: &E,
        threads: usize,
        policy: RetryPolicy,
    ) -> SweepResult {
        let plan = RunPlan::expand(
            assignments,
            RunProtocol::hot(0, self.replications),
            DEFAULT_ROOT_SEED,
        );
        Scheduler::new(threads)
            .with_order(OrderPolicy::AsDesigned)
            .with_policy(policy)
            .execute_contained(
                &plan,
                experiment,
                &ResultCache::disabled(),
                &EnvFingerprint::simulated("run_parallel"),
                None,
            )
    }
}

/// Shared body of the traced/untraced assignment paths.
fn run_assignments<E: SyncExperiment>(
    runner: &Runner,
    assignments: Vec<Assignment>,
    experiment: &E,
    threads: usize,
    tracer: Option<&Tracer>,
) -> ResponseTable {
    // hot(0, n) + KeepPolicy::All mirrors the serial Runner exactly:
    // n measured replications per run, all kept.
    let plan = RunPlan::expand(
        assignments,
        RunProtocol::hot(0, runner.replications),
        DEFAULT_ROOT_SEED,
    );
    Scheduler::new(threads)
        .with_order(OrderPolicy::AsDesigned)
        .execute_traced(
            &plan,
            experiment,
            &ResultCache::disabled(),
            &EnvFingerprint::simulated("run_parallel"),
            None,
            tracer,
        )
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfeval_core::factor::Factor;

    #[test]
    fn parallel_matches_serial_sync_on_a_design() {
        let design = Design::full_factorial(vec![
            Factor::numeric("a", &[1.0, 2.0, 3.0]),
            Factor::numeric("b", &[10.0, 20.0]),
        ]);
        let exp = |a: &Assignment| a.num("a").unwrap() * a.num("b").unwrap();
        let runner = Runner::new(4);
        let serial = runner.run_design_sync(&design, &exp);
        for threads in [1, 2, 8] {
            assert_eq!(runner.run_design_parallel(&design, &exp, threads), serial);
        }
    }

    #[test]
    fn parallel_matches_serial_sync_on_two_level() {
        let d = TwoLevelDesign::full(&["A", "B", "C"]);
        let exp = |a: &Assignment| {
            40.0 + 20.0 * a.num("A").unwrap() + 10.0 * a.num("B").unwrap()
                - 3.0 * a.num("C").unwrap()
        };
        let runner = Runner::new(2);
        assert_eq!(
            runner.run_two_level_parallel(&d, &exp, 4),
            runner.run_two_level_sync(&d, &exp)
        );
    }

    #[test]
    fn replicate_dependent_experiments_stay_identical() {
        struct Exp;
        impl SyncExperiment for Exp {
            fn respond(&self, a: &Assignment, replicate: usize) -> f64 {
                a.num("A").unwrap() * 7.0 + replicate as f64 * 0.125
            }
        }
        let d = TwoLevelDesign::full(&["A"]);
        let runner = Runner::new(5);
        assert_eq!(
            runner.run_two_level_parallel(&d, &Exp, 3),
            runner.run_two_level_sync(&d, &Exp)
        );
    }

    #[test]
    fn contained_run_survives_a_panicking_experiment() {
        let design = Design::full_factorial(vec![Factor::numeric("a", &[1.0, 2.0, 3.0])]);
        let exp = |a: &Assignment| {
            let v = a.num("a").unwrap();
            assert!(v < 3.0, "experiment rejects a=3");
            v * 10.0
        };
        let runner = Runner::new(2);
        let sweep = runner.run_assignments_contained(
            design_assignments(&design),
            &exp,
            4,
            RetryPolicy::default(),
        );
        assert!(!sweep.is_complete());
        assert_eq!(sweep.report.quarantined.len(), 2, "both a=3 replicates");
        assert_eq!(
            sweep.responses.iter().filter(|r| r.is_some()).count(),
            4,
            "healthy cells all measured"
        );
    }
}
