//! Run plans: a design × protocol expanded into independent units.
//!
//! The unit of scheduling is **one measured replicate of one design run**.
//! That granularity is what makes run-order policies meaningful (Jain's
//! ch. 16 replication blocks need to interleave *replicates*, not whole
//! runs) and what lets a worker pool balance load at the finest level.
//!
//! Determinism contract: every [`RunUnit`] carries a seed derived as a
//! *pure function* of the plan's root seed and the unit's `(run, replicate)`
//! coordinates ([`SplitMix64::split`]), and results are assembled into
//! slots addressed by those same coordinates. Execution order, thread
//! count, and scheduling jitter therefore cannot change the assembled
//! [`ResponseTable`] — the bit-identity the proptests assert.

use perfeval_core::runner::{Assignment, ResponseTable};
use perfeval_measure::protocol::{KeepPolicy, RunProtocol};
use perfeval_stats::rng::SplitMix64;

/// One independently schedulable measurement: a single replicate of a
/// single design run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunUnit {
    /// Position in the plan's canonical (as-designed) enumeration.
    pub index: usize,
    /// Design run (row) this unit belongs to.
    pub run: usize,
    /// Replicate number within the run, `0..replications`.
    pub replicate: usize,
    /// Per-unit seed: `split(root_seed, index)`. Identical whether the
    /// unit executes first, last, serially, or on any thread.
    pub seed: u64,
}

/// A design expanded into schedulable units.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// One assignment per design run, in design order.
    pub assignments: Vec<Assignment>,
    /// The protocol the plan implements (kept for documentation and for
    /// the keep policy applied at assembly).
    pub protocol: RunProtocol,
    /// Root seed all unit seeds derive from.
    pub root_seed: u64,
    /// Every unit, in canonical run-major order
    /// (`run 0 rep 0, run 0 rep 1, …, run 1 rep 0, …`).
    pub units: Vec<RunUnit>,
}

impl RunPlan {
    /// Expands `assignments × protocol.replications` into units with
    /// per-unit seeds derived from `root_seed`.
    ///
    /// # Panics
    /// Panics if the protocol has zero replications.
    pub fn expand(assignments: Vec<Assignment>, protocol: RunProtocol, root_seed: u64) -> Self {
        assert!(protocol.replications > 0, "protocol needs >= 1 replication");
        let reps = protocol.replications;
        let mut units = Vec::with_capacity(assignments.len() * reps);
        for run in 0..assignments.len() {
            for replicate in 0..reps {
                let index = run * reps + replicate;
                units.push(RunUnit {
                    index,
                    run,
                    replicate,
                    seed: SplitMix64::split(root_seed, index as u64).state(),
                });
            }
        }
        RunPlan {
            assignments,
            protocol,
            root_seed,
            units,
        }
    }

    /// Number of units (runs × replications).
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Number of design runs.
    pub fn run_count(&self) -> usize {
        self.assignments.len()
    }

    /// Measured replications per run.
    pub fn replications(&self) -> usize {
        self.protocol.replications
    }

    /// Assembles per-unit responses (indexed by canonical unit index) into
    /// a [`ResponseTable`], applying the protocol's keep policy per run.
    ///
    /// # Panics
    /// Panics if `responses.len() != self.unit_count()`.
    pub fn assemble(&self, responses: &[f64]) -> ResponseTable {
        assert_eq!(
            responses.len(),
            self.unit_count(),
            "one response per unit required"
        );
        let reps = self.replications();
        let replicates = (0..self.run_count())
            .map(|run| {
                let all = &responses[run * reps..(run + 1) * reps];
                match self.protocol.keep {
                    KeepPolicy::All => all.to_vec(),
                    KeepPolicy::Last => vec![*all.last().expect("replications >= 1")],
                    KeepPolicy::LastN(n) => {
                        let skip = all.len().saturating_sub(n.max(1));
                        all[skip..].to_vec()
                    }
                }
            })
            .collect();
        ResponseTable {
            assignments: self.assignments.clone(),
            replicates,
        }
    }

    /// One-line plan description for reports: protocol, size, root seed.
    pub fn describe(&self) -> String {
        format!(
            "{} runs x {} replications = {} units ({}), root seed {}",
            self.run_count(),
            self.replications(),
            self.unit_count(),
            self.protocol.describe(),
            self.root_seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfeval_core::factor::Level;

    fn assignments(n: usize) -> Vec<Assignment> {
        (0..n)
            .map(|i| Assignment::new(vec![("x".into(), Level::Num(i as f64))]))
            .collect()
    }

    #[test]
    fn expand_enumerates_run_major() {
        let plan = RunPlan::expand(assignments(3), RunProtocol::hot(0, 2), 42);
        assert_eq!(plan.unit_count(), 6);
        let coords: Vec<(usize, usize)> = plan.units.iter().map(|u| (u.run, u.replicate)).collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]);
        assert!(plan.units.iter().enumerate().all(|(i, u)| u.index == i));
    }

    #[test]
    fn unit_seeds_are_distinct_and_stable() {
        let plan_a = RunPlan::expand(assignments(4), RunProtocol::hot(0, 3), 7);
        let plan_b = RunPlan::expand(assignments(4), RunProtocol::hot(0, 3), 7);
        assert_eq!(plan_a.units, plan_b.units);
        let mut seeds: Vec<u64> = plan_a.units.iter().map(|u| u.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), plan_a.unit_count(), "seeds must be distinct");
    }

    #[test]
    fn different_roots_give_different_seeds() {
        let a = RunPlan::expand(assignments(2), RunProtocol::hot(0, 2), 1);
        let b = RunPlan::expand(assignments(2), RunProtocol::hot(0, 2), 2);
        assert_ne!(a.units[0].seed, b.units[0].seed);
    }

    #[test]
    fn assemble_keeps_all() {
        let plan = RunPlan::expand(assignments(2), RunProtocol::hot(0, 3), 0);
        let table = plan.assemble(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(
            table.replicates,
            vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]
        );
    }

    #[test]
    fn assemble_keeps_last_of_three() {
        let plan = RunPlan::expand(assignments(2), RunProtocol::last_of_three_hot(), 0);
        let table = plan.assemble(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(table.replicates, vec![vec![3.0], vec![6.0]]);
    }

    #[test]
    fn assemble_keeps_last_n() {
        let protocol = RunProtocol {
            state: perfeval_measure::protocol::CacheState::Hot,
            warmup: 0,
            replications: 4,
            keep: KeepPolicy::LastN(2),
        };
        let plan = RunPlan::expand(assignments(1), protocol, 0);
        let table = plan.assemble(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(table.replicates, vec![vec![3.0, 4.0]]);
    }

    #[test]
    #[should_panic(expected = "one response per unit")]
    fn assemble_rejects_wrong_length() {
        let plan = RunPlan::expand(assignments(2), RunProtocol::hot(0, 2), 0);
        let _ = plan.assemble(&[1.0]);
    }

    #[test]
    fn describe_mentions_size_and_seed() {
        let plan = RunPlan::expand(assignments(3), RunProtocol::hot(1, 2), 99);
        let d = plan.describe();
        assert!(d.contains("3 runs"));
        assert!(d.contains("6 units"));
        assert!(d.contains("99"));
    }
}
