//! The scheduler: executes a [`RunPlan`] across the worker pool.
//!
//! Responsibilities, in order: permute the units per the
//! [`OrderPolicy`], consult the [`ResultCache`] before measuring, execute
//! misses through [`parallel_map`], scatter results back into canonical
//! slots, and assemble the [`ResponseTable`]. The determinism argument
//! lives in the scatter step: position `p` of the execution order maps to
//! canonical unit `order[p]`, so the assembled table is invariant under
//! the order policy and thread count.

use crate::cache::{cache_key, EnvFingerprint, ResultCache};
use crate::order::OrderPolicy;
use crate::plan::{RunPlan, RunUnit};
use crate::pool::parallel_map;
use crate::progress::{ExecReport, ProgressSnapshot};
use perfeval_core::runner::{Assignment, ResponseTable, SyncExperiment};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A system under test addressed at unit granularity. The blanket impl
/// adapts any [`SyncExperiment`]; implement this directly to consume the
/// per-unit seed (e.g. to drive a per-measurement workload generator).
pub trait UnitExperiment: Sync {
    /// Measures one unit and returns its response.
    fn respond_unit(&self, assignment: &Assignment, unit: &RunUnit) -> f64;

    /// Optional per-unit setup (e.g. flush caches for cold protocols).
    fn prepare(&self, _assignment: &Assignment) {}
}

impl<E: SyncExperiment> UnitExperiment for E {
    fn respond_unit(&self, assignment: &Assignment, unit: &RunUnit) -> f64 {
        SyncExperiment::respond(self, assignment, unit.replicate)
    }

    fn prepare(&self, assignment: &Assignment) {
        SyncExperiment::prepare(self, assignment);
    }
}

/// Progress hook type: called after every completed unit.
pub type ProgressHook<'a> = &'a (dyn Fn(ProgressSnapshot) + Sync);

/// Executes run plans deterministically in parallel.
#[derive(Debug, Clone, Copy)]
pub struct Scheduler {
    /// Worker threads (1 = serial, no spawning).
    pub threads: usize,
    /// Execution-order policy.
    pub order: OrderPolicy,
}

impl Scheduler {
    /// A scheduler with `threads` workers and as-designed order.
    pub fn new(threads: usize) -> Self {
        Scheduler {
            threads: threads.max(1),
            order: OrderPolicy::AsDesigned,
        }
    }

    /// Sets the order policy.
    pub fn with_order(mut self, order: OrderPolicy) -> Self {
        self.order = order;
        self
    }

    /// Executes `plan` against `experiment`, serving repeats from `cache`
    /// and reporting progress through `progress` (if given).
    ///
    /// Returns the assembled [`ResponseTable`] — bit-identical regardless
    /// of `threads` and `order` — plus an [`ExecReport`] describing how
    /// the execution went.
    pub fn execute<E: UnitExperiment + ?Sized>(
        &self,
        plan: &RunPlan,
        experiment: &E,
        cache: &ResultCache,
        env: &EnvFingerprint,
        progress: Option<ProgressHook<'_>>,
    ) -> (ResponseTable, ExecReport) {
        let order = self.order.order(plan);
        let total = order.len();
        let executed = AtomicUsize::new(0);
        let from_cache = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        let t0 = std::time::Instant::now();

        let (values, workers) = parallel_map(total, self.threads, |p| {
            let unit = &plan.units[order[p]];
            let assignment = &plan.assignments[unit.run];
            let key = cache_key(assignment, &plan.protocol, unit.replicate, unit.seed, env);
            let value = match cache.lookup(key) {
                Some(v) => {
                    from_cache.fetch_add(1, Ordering::Relaxed);
                    v
                }
                None => {
                    experiment.prepare(assignment);
                    let v = experiment.respond_unit(assignment, unit);
                    cache.store(key, v);
                    executed.fetch_add(1, Ordering::Relaxed);
                    v
                }
            };
            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(hook) = progress {
                hook(ProgressSnapshot {
                    completed: done,
                    total,
                    elapsed_secs: t0.elapsed().as_secs_f64(),
                });
            }
            value
        });

        // Scatter execution-order results back into canonical unit slots.
        let mut responses = vec![0.0; plan.unit_count()];
        for (p, v) in values.into_iter().enumerate() {
            responses[order[p]] = v;
        }
        let table = plan.assemble(&responses);
        let report = ExecReport {
            threads: self.threads,
            total_units: total,
            executed: executed.into_inner(),
            from_cache: from_cache.into_inner(),
            wall_secs: t0.elapsed().as_secs_f64(),
            workers,
            order: self.order.describe(),
            plan: plan.describe(),
        };
        (table, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfeval_core::factor::Level;
    use perfeval_measure::protocol::RunProtocol;

    fn plan(runs: usize, reps: usize, seed: u64) -> RunPlan {
        let assignments = (0..runs)
            .map(|i| Assignment::new(vec![("x".into(), Level::Num(i as f64))]))
            .collect();
        RunPlan::expand(assignments, RunProtocol::hot(0, reps), seed)
    }

    /// Response depends on assignment and replicate only — the purity the
    /// determinism contract requires.
    fn experiment() -> impl SyncExperiment {
        struct Exp;
        impl SyncExperiment for Exp {
            fn respond(&self, a: &Assignment, replicate: usize) -> f64 {
                a.num("x").unwrap() * 100.0 + replicate as f64
            }
        }
        Exp
    }

    #[test]
    fn identical_across_threads_and_orders() {
        let p = plan(5, 3, 42);
        let env = EnvFingerprint::simulated("sched-test");
        let exp = experiment();
        let baseline = Scheduler::new(1)
            .execute(&p, &exp, &ResultCache::disabled(), &env, None)
            .0;
        for threads in [2, 4] {
            for order in [
                OrderPolicy::AsDesigned,
                OrderPolicy::Shuffled(9),
                OrderPolicy::Blocked,
            ] {
                let table = Scheduler::new(threads)
                    .with_order(order)
                    .execute(&p, &exp, &ResultCache::disabled(), &env, None)
                    .0;
                assert_eq!(table, baseline, "threads={threads} order={order:?}");
            }
        }
    }

    #[test]
    fn resumed_sweep_executes_zero_new_measurements() {
        let dir =
            std::env::temp_dir().join(format!("perfeval-exec-sched-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let env = EnvFingerprint::simulated("resume-test");
        let p = plan(4, 2, 7);
        let exp = experiment();

        let (first, report1) = Scheduler::new(2).execute(&p, &exp, &cache, &env, None);
        assert_eq!(report1.executed, 8);
        assert_eq!(report1.from_cache, 0);

        let (second, report2) = Scheduler::new(2).execute(&p, &exp, &cache, &env, None);
        assert_eq!(
            report2.executed, 0,
            "fully cached sweep re-measures nothing"
        );
        assert_eq!(report2.from_cache, 8);
        assert_eq!(first, second, "cached results identical to measured ones");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_hook_fires_once_per_unit() {
        let p = plan(3, 2, 0);
        let env = EnvFingerprint::simulated("progress-test");
        let calls = AtomicUsize::new(0);
        let hook = |s: ProgressSnapshot| {
            assert_eq!(s.total, 6);
            assert!(s.completed >= 1 && s.completed <= 6);
            calls.fetch_add(1, Ordering::Relaxed);
        };
        let exp = experiment();
        Scheduler::new(2).execute(&p, &exp, &ResultCache::disabled(), &env, Some(&hook));
        assert_eq!(calls.into_inner(), 6);
    }

    #[test]
    fn closure_experiments_work_via_blanket_impls() {
        let p = plan(2, 2, 0);
        let env = EnvFingerprint::simulated("closure-test");
        let exp = |a: &Assignment| a.num("x").unwrap() + 1.0;
        let (table, _) = Scheduler::new(1).execute(&p, &exp, &ResultCache::disabled(), &env, None);
        assert_eq!(table.means(), vec![1.0, 2.0]);
    }

    #[test]
    fn unit_experiment_can_consume_seeds() {
        struct Seeded;
        impl UnitExperiment for Seeded {
            fn respond_unit(&self, _: &Assignment, unit: &RunUnit) -> f64 {
                unit.seed as f64
            }
        }
        let p = plan(2, 1, 5);
        let env = EnvFingerprint::simulated("seeded-test");
        let serial = Scheduler::new(1)
            .execute(&p, &Seeded, &ResultCache::disabled(), &env, None)
            .0;
        let parallel = Scheduler::new(4)
            .with_order(OrderPolicy::Shuffled(3))
            .execute(&p, &Seeded, &ResultCache::disabled(), &env, None)
            .0;
        assert_eq!(serial, parallel, "seeds are order-independent");
    }
}
