//! The scheduler: executes a [`RunPlan`] across the worker pool.
//!
//! Responsibilities, in order: permute the units per the
//! [`OrderPolicy`], consult the [`ResultCache`] before measuring, execute
//! misses through [`parallel_map`], scatter results back into canonical
//! slots, and assemble the [`ResponseTable`]. The determinism argument
//! lives in the scatter step: position `p` of the execution order maps to
//! canonical unit `order[p]`, so the assembled table is invariant under
//! the order policy and thread count.

use crate::cache::{cache_key, EnvFingerprint, ResultCache};
use crate::order::OrderPolicy;
use crate::plan::{RunPlan, RunUnit};
use crate::pool::parallel_map_traced;
use crate::progress::{ExecReport, ProgressSnapshot};
use perfeval_core::runner::{Assignment, ResponseTable, SyncExperiment};
use perfeval_trace::Tracer;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A system under test addressed at unit granularity. The blanket impl
/// adapts any [`SyncExperiment`]; implement this directly to consume the
/// per-unit seed (e.g. to drive a per-measurement workload generator).
pub trait UnitExperiment: Sync {
    /// Measures one unit and returns its response.
    fn respond_unit(&self, assignment: &Assignment, unit: &RunUnit) -> f64;

    /// Optional per-unit setup (e.g. flush caches for cold protocols).
    fn prepare(&self, _assignment: &Assignment) {}
}

impl<E: SyncExperiment> UnitExperiment for E {
    fn respond_unit(&self, assignment: &Assignment, unit: &RunUnit) -> f64 {
        SyncExperiment::respond(self, assignment, unit.replicate)
    }

    fn prepare(&self, assignment: &Assignment) {
        SyncExperiment::prepare(self, assignment);
    }
}

/// Progress hook type: called after every completed unit.
pub type ProgressHook<'a> = &'a (dyn Fn(ProgressSnapshot) + Sync);

/// Executes run plans deterministically in parallel.
#[derive(Debug, Clone, Copy)]
pub struct Scheduler {
    /// Worker threads (1 = serial, no spawning).
    pub threads: usize,
    /// Execution-order policy.
    pub order: OrderPolicy,
}

impl Scheduler {
    /// A scheduler with `threads` workers and as-designed order.
    pub fn new(threads: usize) -> Self {
        Scheduler {
            threads: threads.max(1),
            order: OrderPolicy::AsDesigned,
        }
    }

    /// Sets the order policy.
    pub fn with_order(mut self, order: OrderPolicy) -> Self {
        self.order = order;
        self
    }

    /// Executes `plan` against `experiment`, serving repeats from `cache`
    /// and reporting progress through `progress` (if given).
    ///
    /// Returns the assembled [`ResponseTable`] — bit-identical regardless
    /// of `threads` and `order` — plus an [`ExecReport`] describing how
    /// the execution went.
    pub fn execute<E: UnitExperiment + ?Sized>(
        &self,
        plan: &RunPlan,
        experiment: &E,
        cache: &ResultCache,
        env: &EnvFingerprint,
        progress: Option<ProgressHook<'_>>,
    ) -> (ResponseTable, ExecReport) {
        self.execute_traced(plan, experiment, cache, env, progress, None)
    }

    /// [`Scheduler::execute`] with an optional tracer.
    ///
    /// The sweep records one `sweep` root span on the calling thread and,
    /// per unit, a `unit <n>` span on whichever worker lane ran it. Each
    /// unit span starts when its worker became free, so it decomposes into
    /// a `queue-wait` child (dispatch + cache lookup + prepare) and — on a
    /// cache miss — a `run` child around the actual measurement; cache hits
    /// have no `run` child. Unit spans carry `cache` and `queued_ms`
    /// attributes.
    pub fn execute_traced<E: UnitExperiment + ?Sized>(
        &self,
        plan: &RunPlan,
        experiment: &E,
        cache: &ResultCache,
        env: &EnvFingerprint,
        progress: Option<ProgressHook<'_>>,
        tracer: Option<&Tracer>,
    ) -> (ResponseTable, ExecReport) {
        let order = self.order.order(plan);
        let total = order.len();
        let executed = AtomicUsize::new(0);
        let from_cache = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        let t0 = std::time::Instant::now();

        let mut sweep = tracer.map(|t| t.span("sweep"));
        if let Some(g) = sweep.as_mut() {
            g.attr("units", total)
                .attr("threads", self.threads)
                .attr("order", self.order.describe());
        }
        let sweep_start_ns = tracer.map(|t| t.now_ns()).unwrap_or(0);

        let (values, workers) = parallel_map_traced(total, self.threads, tracer, |p| {
            let unit = &plan.units[order[p]];
            let assignment = &plan.assignments[unit.run];
            // Anchor the unit span where this worker became free: the gap
            // until the work is actually picked up is genuine queue wait,
            // not run time — conflating them is exactly the "be aware what
            // you measure" trap.
            let anchor_ns = tracer.map(|t| t.lane_resume_ns().max(sweep_start_ns));
            let pickup_ns = tracer.map(|t| t.now_ns());
            let mut unit_span =
                tracer.map(|t| t.span_at(&format!("unit {}", order[p]), anchor_ns.unwrap()));
            if let (Some(g), Some(anchor), Some(pickup)) =
                (unit_span.as_mut(), anchor_ns, pickup_ns)
            {
                g.attr("run", unit.run)
                    .attr("replicate", unit.replicate)
                    .attr("queued_ms", pickup.saturating_sub(anchor) as f64 / 1e6);
            }
            let queue_wait = tracer.map(|t| t.span_at("queue-wait", anchor_ns.unwrap_or(0)));

            let key = cache_key(assignment, &plan.protocol, unit.replicate, unit.seed, env);
            let value = match cache.lookup(key) {
                Some(v) => {
                    drop(queue_wait);
                    if let Some(g) = unit_span.as_mut() {
                        g.attr("cache", "hit");
                    }
                    from_cache.fetch_add(1, Ordering::Relaxed);
                    v
                }
                None => {
                    experiment.prepare(assignment);
                    drop(queue_wait);
                    let run_span = tracer.map(|t| t.span("run"));
                    let v = experiment.respond_unit(assignment, unit);
                    drop(run_span);
                    cache.store(key, v);
                    if let Some(g) = unit_span.as_mut() {
                        g.attr("cache", "miss");
                    }
                    executed.fetch_add(1, Ordering::Relaxed);
                    v
                }
            };
            drop(unit_span);
            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(hook) = progress {
                hook(ProgressSnapshot {
                    completed: done,
                    total,
                    elapsed_secs: t0.elapsed().as_secs_f64(),
                });
            }
            value
        });
        drop(sweep);

        // Scatter execution-order results back into canonical unit slots.
        let mut responses = vec![0.0; plan.unit_count()];
        for (p, v) in values.into_iter().enumerate() {
            responses[order[p]] = v;
        }
        let table = plan.assemble(&responses);
        let report = ExecReport {
            threads: self.threads,
            total_units: total,
            executed: executed.into_inner(),
            from_cache: from_cache.into_inner(),
            wall_secs: t0.elapsed().as_secs_f64(),
            workers,
            order: self.order.describe(),
            plan: plan.describe(),
        };
        (table, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfeval_core::factor::Level;
    use perfeval_measure::protocol::RunProtocol;

    fn plan(runs: usize, reps: usize, seed: u64) -> RunPlan {
        let assignments = (0..runs)
            .map(|i| Assignment::new(vec![("x".into(), Level::Num(i as f64))]))
            .collect();
        RunPlan::expand(assignments, RunProtocol::hot(0, reps), seed)
    }

    /// Response depends on assignment and replicate only — the purity the
    /// determinism contract requires.
    fn experiment() -> impl SyncExperiment {
        struct Exp;
        impl SyncExperiment for Exp {
            fn respond(&self, a: &Assignment, replicate: usize) -> f64 {
                a.num("x").unwrap() * 100.0 + replicate as f64
            }
        }
        Exp
    }

    #[test]
    fn identical_across_threads_and_orders() {
        let p = plan(5, 3, 42);
        let env = EnvFingerprint::simulated("sched-test");
        let exp = experiment();
        let baseline = Scheduler::new(1)
            .execute(&p, &exp, &ResultCache::disabled(), &env, None)
            .0;
        for threads in [2, 4] {
            for order in [
                OrderPolicy::AsDesigned,
                OrderPolicy::Shuffled(9),
                OrderPolicy::Blocked,
            ] {
                let table = Scheduler::new(threads)
                    .with_order(order)
                    .execute(&p, &exp, &ResultCache::disabled(), &env, None)
                    .0;
                assert_eq!(table, baseline, "threads={threads} order={order:?}");
            }
        }
    }

    #[test]
    fn resumed_sweep_executes_zero_new_measurements() {
        let dir =
            std::env::temp_dir().join(format!("perfeval-exec-sched-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let env = EnvFingerprint::simulated("resume-test");
        let p = plan(4, 2, 7);
        let exp = experiment();

        let (first, report1) = Scheduler::new(2).execute(&p, &exp, &cache, &env, None);
        assert_eq!(report1.executed, 8);
        assert_eq!(report1.from_cache, 0);

        let (second, report2) = Scheduler::new(2).execute(&p, &exp, &cache, &env, None);
        assert_eq!(
            report2.executed, 0,
            "fully cached sweep re-measures nothing"
        );
        assert_eq!(report2.from_cache, 8);
        assert_eq!(first, second, "cached results identical to measured ones");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_hook_fires_once_per_unit() {
        let p = plan(3, 2, 0);
        let env = EnvFingerprint::simulated("progress-test");
        let calls = AtomicUsize::new(0);
        let hook = |s: ProgressSnapshot| {
            assert_eq!(s.total, 6);
            assert!(s.completed >= 1 && s.completed <= 6);
            calls.fetch_add(1, Ordering::Relaxed);
        };
        let exp = experiment();
        Scheduler::new(2).execute(&p, &exp, &ResultCache::disabled(), &env, Some(&hook));
        assert_eq!(calls.into_inner(), 6);
    }

    #[test]
    fn closure_experiments_work_via_blanket_impls() {
        let p = plan(2, 2, 0);
        let env = EnvFingerprint::simulated("closure-test");
        let exp = |a: &Assignment| a.num("x").unwrap() + 1.0;
        let (table, _) = Scheduler::new(1).execute(&p, &exp, &ResultCache::disabled(), &env, None);
        assert_eq!(table.means(), vec![1.0, 2.0]);
    }

    #[test]
    fn traced_sweep_records_units_across_worker_lanes() {
        let p = plan(4, 4, 1);
        let env = EnvFingerprint::simulated("trace-test");
        let exp = |a: &Assignment| {
            // Enough work per unit that both workers demonstrably run some.
            let mut acc = a.num("x").unwrap() as u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (acc % 97) as f64
        };
        let tracer = Tracer::new();
        let untraced = Scheduler::new(2)
            .execute(&p, &exp, &ResultCache::disabled(), &env, None)
            .0;
        let traced = Scheduler::new(2)
            .execute_traced(
                &p,
                &exp,
                &ResultCache::disabled(),
                &env,
                None,
                Some(&tracer),
            )
            .0;
        assert_eq!(traced, untraced, "tracing must not perturb results");

        let trace = tracer.snapshot();
        let sweep = trace.find("sweep").next().expect("sweep span recorded");
        assert_eq!(sweep.attr("units"), Some(&16u64.into()));
        assert_eq!(trace.find("sweep").count(), 1, "one sweep root");

        let worker_lanes_with_units = trace
            .lanes
            .iter()
            .filter(|l| {
                l.label.starts_with("worker-")
                    && l.records.iter().any(|s| s.name.starts_with("unit "))
            })
            .count();
        assert!(
            worker_lanes_with_units >= 2,
            "expected unit spans on >=2 worker lanes, got {worker_lanes_with_units}"
        );

        // 16 units, cache disabled: every unit span is a miss with a
        // queue-wait child and a run child.
        let units: Vec<_> = trace
            .lanes
            .iter()
            .flat_map(|l| l.records.iter())
            .filter(|s| s.name.starts_with("unit "))
            .collect();
        assert_eq!(units.len(), 16);
        for u in &units {
            assert_eq!(u.attr("cache"), Some(&"miss".into()));
            assert!(u.attr("queued_ms").is_some());
        }
        assert_eq!(trace.find("queue-wait").count(), 16);
        assert_eq!(trace.find("run").count(), 16);
    }

    #[test]
    fn traced_cache_hits_have_no_run_child() {
        let dir = std::env::temp_dir().join(format!(
            "perfeval-exec-sched-trace-hit-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let env = EnvFingerprint::simulated("trace-hit-test");
        let p = plan(3, 2, 11);
        let exp = experiment();
        Scheduler::new(1).execute(&p, &exp, &cache, &env, None);

        let tracer = Tracer::new();
        Scheduler::new(1).execute_traced(&p, &exp, &cache, &env, None, Some(&tracer));
        let trace = tracer.snapshot();
        let hits = trace
            .lanes
            .iter()
            .flat_map(|l| l.records.iter())
            .filter(|s| s.name.starts_with("unit "))
            .filter(|s| s.attr("cache") == Some(&"hit".into()))
            .count();
        assert_eq!(hits, 6, "every unit served from cache");
        assert_eq!(trace.find("run").count(), 0, "cache hits never run");
        assert_eq!(trace.find("queue-wait").count(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serial_traced_sweep_nests_units_under_sweep() {
        let p = plan(2, 2, 3);
        let env = EnvFingerprint::simulated("trace-serial-test");
        let exp = experiment();
        let tracer = Tracer::new();
        Scheduler::new(1).execute_traced(
            &p,
            &exp,
            &ResultCache::disabled(),
            &env,
            None,
            Some(&tracer),
        );
        let trace = tracer.snapshot();
        assert_eq!(trace.lanes.len(), 1, "serial sweep uses one lane");
        let sweep = trace.find("sweep").next().expect("sweep recorded").clone();
        let units: Vec<_> = trace
            .lanes
            .iter()
            .flat_map(|l| l.records.iter())
            .filter(|s| s.name.starts_with("unit "))
            .collect();
        assert_eq!(units.len(), 4);
        let mut prev_end = 0u64;
        for u in &units {
            assert_eq!(u.parent, Some(sweep.id), "unit nests under sweep");
            assert!(u.start_ns >= sweep.start_ns && u.end_ns <= sweep.end_ns);
            assert!(u.start_ns >= prev_end, "sibling units must not overlap");
            prev_end = u.end_ns;
        }
    }

    #[test]
    fn unit_experiment_can_consume_seeds() {
        struct Seeded;
        impl UnitExperiment for Seeded {
            fn respond_unit(&self, _: &Assignment, unit: &RunUnit) -> f64 {
                unit.seed as f64
            }
        }
        let p = plan(2, 1, 5);
        let env = EnvFingerprint::simulated("seeded-test");
        let serial = Scheduler::new(1)
            .execute(&p, &Seeded, &ResultCache::disabled(), &env, None)
            .0;
        let parallel = Scheduler::new(4)
            .with_order(OrderPolicy::Shuffled(3))
            .execute(&p, &Seeded, &ResultCache::disabled(), &env, None)
            .0;
        assert_eq!(serial, parallel, "seeds are order-independent");
    }
}
