//! The scheduler: executes a [`RunPlan`] across the worker pool.
//!
//! Responsibilities, in order: permute the units per the
//! [`OrderPolicy`], consult the [`ResultCache`] before measuring, execute
//! misses through the worker pool, scatter results back into canonical
//! slots, and assemble the [`ResponseTable`]. The determinism argument
//! lives in the scatter step: position `p` of the execution order maps to
//! canonical unit `order[p]`, so the assembled table is invariant under
//! the order policy and thread count.
//!
//! Failure containment (the [`RetryPolicy`] path): every measurement
//! attempt runs under `catch_unwind`, so a panicking unit yields
//! [`UnitOutcome::Panicked`] instead of killing the sweep; a watchdog
//! thread cancels units past their wall-clock deadline (cooperatively,
//! through the fault layer's cancel token — in-process containment cannot
//! kill a thread), yielding [`UnitOutcome::TimedOut`]; failed units retry
//! with seeded, bounded backoff up to `max_attempts`, and units that fail
//! every attempt are quarantined. The [`SweepResult`] reports every cell
//! either way — a partial sweep never silently assembles into a table.

use crate::cache::{cache_key, EnvFingerprint, ResultCache};
use crate::order::OrderPolicy;
use crate::outcome::{RetryPolicy, SweepResult, UnitOutcome, UnitReport};
use crate::plan::{RunPlan, RunUnit};
use crate::pool::parallel_map_caught;
use crate::progress::{ExecReport, ProgressSnapshot};
use perfeval_core::runner::{Assignment, ResponseTable, SyncExperiment};
use perfeval_fault::{panic_message, set_cancel_token, FaultRegistry, TimeoutSignal};
use perfeval_stats::rng::SplitMix64;
use perfeval_trace::Tracer;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A system under test addressed at unit granularity. The blanket impl
/// adapts any [`SyncExperiment`]; implement this directly to consume the
/// per-unit seed (e.g. to drive a per-measurement workload generator).
pub trait UnitExperiment: Sync {
    /// Measures one unit and returns its response.
    fn respond_unit(&self, assignment: &Assignment, unit: &RunUnit) -> f64;

    /// Optional per-unit setup (e.g. flush caches for cold protocols).
    fn prepare(&self, _assignment: &Assignment) {}
}

impl<E: SyncExperiment> UnitExperiment for E {
    fn respond_unit(&self, assignment: &Assignment, unit: &RunUnit) -> f64 {
        SyncExperiment::respond(self, assignment, unit.replicate)
    }

    fn prepare(&self, assignment: &Assignment) {
        SyncExperiment::prepare(self, assignment);
    }
}

/// Progress hook type: called after every completed unit.
pub type ProgressHook<'a> = &'a (dyn Fn(ProgressSnapshot) + Sync);

/// Seeded, bounded backoff before retry `attempt` (2-based): base doubles
/// per retry (capped) plus up to one base of seeded jitter, never more
/// than 250 ms. Deterministic in its *choice* — the same unit seed and
/// attempt always picks the same backoff, like every other plan decision.
fn backoff_ms(base: f64, seed: u64, attempt: u32) -> f64 {
    if base <= 0.0 {
        return 0.0;
    }
    let exponent = attempt.saturating_sub(2).min(6);
    let jitter = SplitMix64::split(seed, attempt as u64).next_f64() * base;
    (base * (1u64 << exponent) as f64 + jitter).min(250.0)
}

/// The watchdog lane's cancel board: canonical unit index → (deadline,
/// cancel flag). Workers register an entry per attempt; the watchdog trips
/// the flag when the deadline passes.
type CancelBoard = Mutex<HashMap<usize, (Instant, Arc<AtomicBool>)>>;

/// Executes run plans deterministically in parallel.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// Worker threads (1 = serial, no spawning).
    pub threads: usize,
    /// Execution-order policy.
    pub order: OrderPolicy,
    /// Failure-containment policy (attempts, backoff, deadline). The
    /// default grants one attempt with no deadline.
    pub policy: RetryPolicy,
    /// Fault registry consulted at the `exec.unit.run` failpoint before
    /// every measurement attempt; `None` injects nothing.
    pub faults: Option<Arc<FaultRegistry>>,
}

impl Scheduler {
    /// A scheduler with `threads` workers and as-designed order.
    pub fn new(threads: usize) -> Self {
        Scheduler {
            threads: threads.max(1),
            order: OrderPolicy::AsDesigned,
            policy: RetryPolicy::default(),
            faults: None,
        }
    }

    /// Sets the order policy.
    pub fn with_order(mut self, order: OrderPolicy) -> Self {
        self.order = order;
        self
    }

    /// Sets the failure-containment policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Arms a fault registry: the scheduler evaluates the `exec.unit.run`
    /// failpoint (keyed by canonical unit index, 1-based attempt) before
    /// every measurement attempt.
    pub fn with_faults(mut self, faults: Arc<FaultRegistry>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Executes `plan` against `experiment`, serving repeats from `cache`
    /// and reporting progress through `progress` (if given).
    ///
    /// Returns the assembled [`ResponseTable`] — bit-identical regardless
    /// of `threads` and `order` — plus an [`ExecReport`] describing how
    /// the execution went.
    ///
    /// # Panics
    /// Panics with the missing-cell taxonomy if any unit failed every
    /// allowed attempt (the historical fail-fast contract). Callers that
    /// can degrade should use [`Scheduler::execute_contained`].
    pub fn execute<E: UnitExperiment + ?Sized>(
        &self,
        plan: &RunPlan,
        experiment: &E,
        cache: &ResultCache,
        env: &EnvFingerprint,
        progress: Option<ProgressHook<'_>>,
    ) -> (ResponseTable, ExecReport) {
        self.execute_contained_traced(plan, experiment, cache, env, progress, None)
            .expect_complete()
    }

    /// [`Scheduler::execute`] with an optional tracer.
    ///
    /// The sweep records one `sweep` root span on the calling thread and,
    /// per unit, a `unit <n>` span on whichever worker lane ran it. Each
    /// unit span starts when its worker became free, so it decomposes into
    /// a `queue-wait` child (dispatch + cache lookup) and — on a cache
    /// miss — a `run` child per measurement attempt; cache hits have no
    /// `run` child. Unit spans carry `cache`, `queued_ms`, `outcome`, and
    /// `attempts` attributes.
    ///
    /// # Panics
    /// Like [`Scheduler::execute`], panics if any unit was quarantined.
    pub fn execute_traced<E: UnitExperiment + ?Sized>(
        &self,
        plan: &RunPlan,
        experiment: &E,
        cache: &ResultCache,
        env: &EnvFingerprint,
        progress: Option<ProgressHook<'_>>,
        tracer: Option<&Tracer>,
    ) -> (ResponseTable, ExecReport) {
        self.execute_contained_traced(plan, experiment, cache, env, progress, tracer)
            .expect_complete()
    }

    /// Failure-contained execution: never panics on unit failure. Returns
    /// a [`SweepResult`] whose report accounts for every cell; the table
    /// assembles only when every cell was measured.
    pub fn execute_contained<E: UnitExperiment + ?Sized>(
        &self,
        plan: &RunPlan,
        experiment: &E,
        cache: &ResultCache,
        env: &EnvFingerprint,
        progress: Option<ProgressHook<'_>>,
    ) -> SweepResult {
        self.execute_contained_traced(plan, experiment, cache, env, progress, None)
    }

    /// [`Scheduler::execute_contained`] with an optional tracer. When a
    /// deadline is set, a `watchdog` lane appears in the trace with one
    /// `deadline-fired` span per cancelled attempt.
    pub fn execute_contained_traced<E: UnitExperiment + ?Sized>(
        &self,
        plan: &RunPlan,
        experiment: &E,
        cache: &ResultCache,
        env: &EnvFingerprint,
        progress: Option<ProgressHook<'_>>,
        tracer: Option<&Tracer>,
    ) -> SweepResult {
        let order = self.order.order(plan);
        let total = order.len();
        let executed = AtomicUsize::new(0);
        let from_cache = AtomicUsize::new(0);
        let retries = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        let t0 = Instant::now();

        let mut sweep = tracer.map(|t| t.span("sweep"));
        if let Some(g) = sweep.as_mut() {
            g.attr("units", total)
                .attr("threads", self.threads)
                .attr("order", self.order.describe())
                .attr("policy", self.policy.describe());
        }
        let sweep_start_ns = tracer.map(|t| t.now_ns()).unwrap_or(0);

        let board: CancelBoard = Mutex::new(HashMap::new());
        let watchdog_stop = AtomicBool::new(false);

        let run_unit = |p: usize| -> (Option<f64>, UnitReport) {
            let canonical = order[p];
            let unit = &plan.units[canonical];
            let assignment = &plan.assignments[unit.run];
            // Anchor the unit span where this worker became free: the gap
            // until the work is actually picked up is genuine queue wait,
            // not run time — conflating them is exactly the "be aware what
            // you measure" trap.
            let anchor_ns = tracer.map(|t| t.lane_resume_ns().max(sweep_start_ns));
            let pickup_ns = tracer.map(|t| t.now_ns());
            let mut unit_span =
                tracer.map(|t| t.span_at(&format!("unit {canonical}"), anchor_ns.unwrap()));
            if let (Some(g), Some(anchor), Some(pickup)) =
                (unit_span.as_mut(), anchor_ns, pickup_ns)
            {
                g.attr("run", unit.run)
                    .attr("replicate", unit.replicate)
                    .attr("queued_ms", pickup.saturating_sub(anchor) as f64 / 1e6);
            }
            let queue_wait = tracer.map(|t| t.span_at("queue-wait", anchor_ns.unwrap_or(0)));

            let key = cache_key(assignment, &plan.protocol, unit.replicate, unit.seed, env);
            let (value, outcome, attempts) = match cache.lookup(key) {
                Some(v) => {
                    drop(queue_wait);
                    if let Some(g) = unit_span.as_mut() {
                        g.attr("cache", "hit");
                    }
                    from_cache.fetch_add(1, Ordering::Relaxed);
                    (Some(v), UnitOutcome::Cached, 0u32)
                }
                None => {
                    drop(queue_wait);
                    if let Some(g) = unit_span.as_mut() {
                        g.attr("cache", "miss");
                    }
                    let mut attempt = 0u32;
                    loop {
                        attempt += 1;
                        if attempt > 1 {
                            retries.fetch_add(1, Ordering::Relaxed);
                            let wait = backoff_ms(self.policy.backoff_ms, unit.seed, attempt);
                            if wait > 0.0 {
                                let mut bspan = tracer.map(|t| t.span("backoff"));
                                if let Some(g) = bspan.as_mut() {
                                    g.attr("attempt", attempt as usize);
                                }
                                std::thread::sleep(Duration::from_secs_f64(wait / 1e3));
                            }
                        }

                        let cancel = Arc::new(AtomicBool::new(false));
                        let started = Instant::now();
                        if let Some(deadline) = self.policy.deadline_ms {
                            board.lock().unwrap_or_else(PoisonError::into_inner).insert(
                                canonical,
                                (
                                    started + Duration::from_secs_f64(deadline / 1e3),
                                    Arc::clone(&cancel),
                                ),
                            );
                        }
                        set_cancel_token(Some(Arc::clone(&cancel)));
                        let mut run_span = tracer.map(|t| t.span("run"));
                        if let Some(g) = run_span.as_mut() {
                            g.attr("attempt", attempt as usize);
                        }
                        // AssertUnwindSafe: the attempt writes nothing the
                        // sweep reads after a failure — its only output is
                        // the caught return value.
                        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            if let Some(faults) = &self.faults {
                                faults.fire("exec.unit.run", canonical as u64, attempt);
                            }
                            experiment.prepare(assignment);
                            experiment.respond_unit(assignment, unit)
                        }));
                        drop(run_span);
                        set_cancel_token(None);
                        if self.policy.deadline_ms.is_some() {
                            board
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .remove(&canonical);
                        }

                        let failure = match result {
                            Ok(v) => {
                                // A value computed past the deadline is a
                                // measurement the policy already declared
                                // invalid — classify, don't keep it.
                                let late = self.policy.deadline_ms.is_some_and(|d| {
                                    cancel.load(Ordering::Relaxed)
                                        || started.elapsed().as_secs_f64() * 1e3 > d
                                });
                                if !late {
                                    executed.fetch_add(1, Ordering::Relaxed);
                                    cache.store(key, v);
                                    break (Some(v), UnitOutcome::Measured, attempt);
                                }
                                UnitOutcome::TimedOut
                            }
                            Err(payload) => {
                                if payload.downcast_ref::<TimeoutSignal>().is_some() {
                                    UnitOutcome::TimedOut
                                } else {
                                    UnitOutcome::Panicked(panic_message(payload.as_ref()))
                                }
                            }
                        };
                        if attempt >= self.policy.max_attempts {
                            break (None, failure, attempt);
                        }
                    }
                }
            };

            let quarantined = value.is_none();
            if let Some(g) = unit_span.as_mut() {
                g.attr("outcome", outcome.label())
                    .attr("attempts", attempts as usize);
                if quarantined {
                    g.attr("quarantined", "true");
                }
            }
            drop(unit_span);
            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(hook) = progress {
                hook(ProgressSnapshot {
                    completed: done,
                    total,
                    elapsed_secs: t0.elapsed().as_secs_f64(),
                });
            }
            (
                value,
                UnitReport {
                    unit: canonical,
                    run: unit.run,
                    replicate: unit.replicate,
                    outcome,
                    attempts,
                    quarantined,
                },
            )
        };

        // The watchdog shares the workers' scope so it can borrow the
        // board and tracer; it polls well under the deadline granularity
        // and trips cancel flags — the fault layer's `Hang` observes them.
        let (slots, workers) = std::thread::scope(|scope| {
            let watchdog = self.policy.deadline_ms.map(|deadline| {
                let board = &board;
                let stop = &watchdog_stop;
                let poll = Duration::from_secs_f64((deadline / 8.0).clamp(1.0, 10.0) / 1e3);
                std::thread::Builder::new()
                    .name("watchdog".into())
                    .spawn_scoped(scope, move || {
                        if let Some(t) = tracer {
                            t.label_thread("watchdog");
                        }
                        while !stop.load(Ordering::Relaxed) {
                            let now = Instant::now();
                            {
                                let entries = board.lock().unwrap_or_else(PoisonError::into_inner);
                                for (unit, (due, flag)) in entries.iter() {
                                    if now >= *due && !flag.swap(true, Ordering::Relaxed) {
                                        if let Some(t) = tracer {
                                            let mut g = t.span("deadline-fired");
                                            g.attr("unit", *unit);
                                        }
                                    }
                                }
                            }
                            std::thread::sleep(poll);
                        }
                    })
                    .expect("failed to spawn watchdog")
            });
            let out = parallel_map_caught(total, self.threads, tracer, run_unit);
            watchdog_stop.store(true, Ordering::Relaxed);
            if let Some(handle) = watchdog {
                let _ = handle.join();
            }
            out
        });
        drop(sweep);

        // Scatter execution-order results back into canonical unit slots.
        // The pool-level catch is a second belt — `run_unit` contains its
        // own panics — but a panicking progress hook still lands here.
        let mut responses: Vec<Option<f64>> = vec![None; plan.unit_count()];
        let mut units: Vec<Option<UnitReport>> = vec![None; plan.unit_count()];
        for (p, slot) in slots.into_iter().enumerate() {
            let canonical = order[p];
            let (value, unit_report) = match slot {
                Ok(pair) => pair,
                Err(caught) => {
                    let unit = &plan.units[canonical];
                    (
                        None,
                        UnitReport {
                            unit: canonical,
                            run: unit.run,
                            replicate: unit.replicate,
                            outcome: UnitOutcome::Panicked(caught.message),
                            attempts: 1,
                            quarantined: true,
                        },
                    )
                }
            };
            responses[canonical] = value;
            units[canonical] = Some(unit_report);
        }
        let units: Vec<UnitReport> = units
            .into_iter()
            .map(|u| u.expect("every unit reported"))
            .collect();
        let quarantined: Vec<usize> = units
            .iter()
            .filter(|u| u.quarantined)
            .map(|u| u.unit)
            .collect();

        let table = if responses.iter().all(Option::is_some) {
            let values: Vec<f64> = responses.iter().map(|v| v.unwrap()).collect();
            Some(plan.assemble(&values))
        } else {
            None
        };
        let report = ExecReport {
            threads: self.threads,
            total_units: total,
            executed: executed.into_inner(),
            from_cache: from_cache.into_inner(),
            retries: retries.into_inner(),
            quarantined,
            units,
            wall_secs: t0.elapsed().as_secs_f64(),
            workers,
            order: self.order.describe(),
            plan: plan.describe(),
        };
        SweepResult {
            responses,
            table,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfeval_core::factor::Level;
    use perfeval_fault::{FaultAction, Trigger};
    use perfeval_measure::protocol::RunProtocol;

    fn plan(runs: usize, reps: usize, seed: u64) -> RunPlan {
        let assignments = (0..runs)
            .map(|i| Assignment::new(vec![("x".into(), Level::Num(i as f64))]))
            .collect();
        RunPlan::expand(assignments, RunProtocol::hot(0, reps), seed)
    }

    /// Response depends on assignment and replicate only — the purity the
    /// determinism contract requires.
    fn experiment() -> impl SyncExperiment {
        struct Exp;
        impl SyncExperiment for Exp {
            fn respond(&self, a: &Assignment, replicate: usize) -> f64 {
                a.num("x").unwrap() * 100.0 + replicate as f64
            }
        }
        Exp
    }

    #[test]
    fn identical_across_threads_and_orders() {
        let p = plan(5, 3, 42);
        let env = EnvFingerprint::simulated("sched-test");
        let exp = experiment();
        let baseline = Scheduler::new(1)
            .execute(&p, &exp, &ResultCache::disabled(), &env, None)
            .0;
        for threads in [2, 4] {
            for order in [
                OrderPolicy::AsDesigned,
                OrderPolicy::Shuffled(9),
                OrderPolicy::Blocked,
            ] {
                let table = Scheduler::new(threads)
                    .with_order(order)
                    .execute(&p, &exp, &ResultCache::disabled(), &env, None)
                    .0;
                assert_eq!(table, baseline, "threads={threads} order={order:?}");
            }
        }
    }

    #[test]
    fn resumed_sweep_executes_zero_new_measurements() {
        let dir =
            std::env::temp_dir().join(format!("perfeval-exec-sched-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let env = EnvFingerprint::simulated("resume-test");
        let p = plan(4, 2, 7);
        let exp = experiment();

        let (first, report1) = Scheduler::new(2).execute(&p, &exp, &cache, &env, None);
        assert_eq!(report1.executed, 8);
        assert_eq!(report1.from_cache, 0);

        let (second, report2) = Scheduler::new(2).execute(&p, &exp, &cache, &env, None);
        assert_eq!(
            report2.executed, 0,
            "fully cached sweep re-measures nothing"
        );
        assert_eq!(report2.from_cache, 8);
        assert!(report2
            .units
            .iter()
            .all(|u| u.outcome == UnitOutcome::Cached && u.attempts == 0));
        assert_eq!(first, second, "cached results identical to measured ones");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_hook_fires_once_per_unit() {
        let p = plan(3, 2, 0);
        let env = EnvFingerprint::simulated("progress-test");
        let calls = AtomicUsize::new(0);
        let hook = |s: ProgressSnapshot| {
            assert_eq!(s.total, 6);
            assert!(s.completed >= 1 && s.completed <= 6);
            calls.fetch_add(1, Ordering::Relaxed);
        };
        let exp = experiment();
        Scheduler::new(2).execute(&p, &exp, &ResultCache::disabled(), &env, Some(&hook));
        assert_eq!(calls.into_inner(), 6);
    }

    #[test]
    fn closure_experiments_work_via_blanket_impls() {
        let p = plan(2, 2, 0);
        let env = EnvFingerprint::simulated("closure-test");
        let exp = |a: &Assignment| a.num("x").unwrap() + 1.0;
        let (table, _) = Scheduler::new(1).execute(&p, &exp, &ResultCache::disabled(), &env, None);
        assert_eq!(table.means(), vec![1.0, 2.0]);
    }

    #[test]
    fn traced_sweep_records_units_across_worker_lanes() {
        let p = plan(4, 4, 1);
        let env = EnvFingerprint::simulated("trace-test");
        let exp = |a: &Assignment| {
            // Enough work per unit that both workers demonstrably run some.
            let mut acc = a.num("x").unwrap() as u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (acc % 97) as f64
        };
        let tracer = Tracer::new();
        let untraced = Scheduler::new(2)
            .execute(&p, &exp, &ResultCache::disabled(), &env, None)
            .0;
        let traced = Scheduler::new(2)
            .execute_traced(
                &p,
                &exp,
                &ResultCache::disabled(),
                &env,
                None,
                Some(&tracer),
            )
            .0;
        assert_eq!(traced, untraced, "tracing must not perturb results");

        let trace = tracer.snapshot();
        let sweep = trace.find("sweep").next().expect("sweep span recorded");
        assert_eq!(sweep.attr("units"), Some(&16u64.into()));
        assert_eq!(trace.find("sweep").count(), 1, "one sweep root");

        let worker_lanes_with_units = trace
            .lanes
            .iter()
            .filter(|l| {
                l.label.starts_with("worker-")
                    && l.records.iter().any(|s| s.name.starts_with("unit "))
            })
            .count();
        assert!(
            worker_lanes_with_units >= 2,
            "expected unit spans on >=2 worker lanes, got {worker_lanes_with_units}"
        );

        // 16 units, cache disabled: every unit span is a miss with a
        // queue-wait child and a run child.
        let units: Vec<_> = trace
            .lanes
            .iter()
            .flat_map(|l| l.records.iter())
            .filter(|s| s.name.starts_with("unit "))
            .collect();
        assert_eq!(units.len(), 16);
        for u in &units {
            assert_eq!(u.attr("cache"), Some(&"miss".into()));
            assert!(u.attr("queued_ms").is_some());
            assert_eq!(u.attr("outcome"), Some(&"measured".into()));
            assert_eq!(u.attr("attempts"), Some(&1u64.into()));
        }
        assert_eq!(trace.find("queue-wait").count(), 16);
        assert_eq!(trace.find("run").count(), 16);
    }

    #[test]
    fn traced_cache_hits_have_no_run_child() {
        let dir = std::env::temp_dir().join(format!(
            "perfeval-exec-sched-trace-hit-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let env = EnvFingerprint::simulated("trace-hit-test");
        let p = plan(3, 2, 11);
        let exp = experiment();
        Scheduler::new(1).execute(&p, &exp, &cache, &env, None);

        let tracer = Tracer::new();
        Scheduler::new(1).execute_traced(&p, &exp, &cache, &env, None, Some(&tracer));
        let trace = tracer.snapshot();
        let hits = trace
            .lanes
            .iter()
            .flat_map(|l| l.records.iter())
            .filter(|s| s.name.starts_with("unit "))
            .filter(|s| s.attr("cache") == Some(&"hit".into()))
            .count();
        assert_eq!(hits, 6, "every unit served from cache");
        assert_eq!(trace.find("run").count(), 0, "cache hits never run");
        assert_eq!(trace.find("queue-wait").count(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serial_traced_sweep_nests_units_under_sweep() {
        let p = plan(2, 2, 3);
        let env = EnvFingerprint::simulated("trace-serial-test");
        let exp = experiment();
        let tracer = Tracer::new();
        Scheduler::new(1).execute_traced(
            &p,
            &exp,
            &ResultCache::disabled(),
            &env,
            None,
            Some(&tracer),
        );
        let trace = tracer.snapshot();
        assert_eq!(trace.lanes.len(), 1, "serial sweep uses one lane");
        let sweep = trace.find("sweep").next().expect("sweep recorded").clone();
        let units: Vec<_> = trace
            .lanes
            .iter()
            .flat_map(|l| l.records.iter())
            .filter(|s| s.name.starts_with("unit "))
            .collect();
        assert_eq!(units.len(), 4);
        let mut prev_end = 0u64;
        for u in &units {
            assert_eq!(u.parent, Some(sweep.id), "unit nests under sweep");
            assert!(u.start_ns >= sweep.start_ns && u.end_ns <= sweep.end_ns);
            assert!(u.start_ns >= prev_end, "sibling units must not overlap");
            prev_end = u.end_ns;
        }
    }

    #[test]
    fn unit_experiment_can_consume_seeds() {
        struct Seeded;
        impl UnitExperiment for Seeded {
            fn respond_unit(&self, _: &Assignment, unit: &RunUnit) -> f64 {
                unit.seed as f64
            }
        }
        let p = plan(2, 1, 5);
        let env = EnvFingerprint::simulated("seeded-test");
        let serial = Scheduler::new(1)
            .execute(&p, &Seeded, &ResultCache::disabled(), &env, None)
            .0;
        let parallel = Scheduler::new(4)
            .with_order(OrderPolicy::Shuffled(3))
            .execute(&p, &Seeded, &ResultCache::disabled(), &env, None)
            .0;
        assert_eq!(serial, parallel, "seeds are order-independent");
    }

    // ---- failure containment -------------------------------------------

    /// A registry that panics units 2 and 5 on every attempt.
    fn persistent_panics() -> Arc<FaultRegistry> {
        Arc::new(FaultRegistry::new(7).armed_always(
            "exec.unit.run",
            Trigger::Keys(vec![2, 5]),
            FaultAction::Panic,
        ))
    }

    #[test]
    fn panicking_units_are_contained_and_reported() {
        let p = plan(3, 2, 42);
        let env = EnvFingerprint::simulated("contain-test");
        let exp = experiment();
        for threads in [1, 4] {
            let sweep = Scheduler::new(threads)
                .with_faults(persistent_panics())
                .execute_contained(&p, &exp, &ResultCache::disabled(), &env, None);
            assert!(!sweep.is_complete());
            assert!(sweep.table.is_none(), "partial sweep never assembles");
            assert_eq!(sweep.report.quarantined, vec![2, 5]);
            assert_eq!(sweep.report.units.len(), 6, "every cell accounted for");
            for u in &sweep.report.units {
                if u.unit == 2 || u.unit == 5 {
                    assert!(matches!(u.outcome, UnitOutcome::Panicked(_)));
                    assert!(u.quarantined);
                    assert!(sweep.responses[u.unit].is_none());
                } else {
                    assert_eq!(u.outcome, UnitOutcome::Measured);
                    assert!(sweep.responses[u.unit].is_some());
                }
            }
        }
    }

    #[test]
    fn transient_faults_recover_via_retries_bit_identically() {
        let p = plan(4, 2, 9);
        let env = EnvFingerprint::simulated("retry-test");
        let exp = experiment();
        let clean = Scheduler::new(1)
            .execute(&p, &exp, &ResultCache::disabled(), &env, None)
            .0;
        // Every unit panics on attempts 1-2, succeeds on attempt 3.
        let faults = || {
            Arc::new(FaultRegistry::new(1).armed_transient(
                "exec.unit.run",
                Trigger::Always,
                3,
                FaultAction::Panic,
            ))
        };
        for threads in [1, 4] {
            let sweep = Scheduler::new(threads)
                .with_policy(RetryPolicy::retries(2))
                .with_faults(faults())
                .execute_contained(&p, &exp, &ResultCache::disabled(), &env, None);
            assert!(sweep.is_complete(), "threads={threads}");
            assert_eq!(
                sweep.table.as_ref().unwrap(),
                &clean,
                "recovered sweep is bit-identical to the clean one"
            );
            assert_eq!(sweep.report.retries, 16, "2 extra attempts x 8 units");
            assert!(sweep
                .report
                .units
                .iter()
                .all(|u| u.attempts == 3 && u.outcome == UnitOutcome::Measured));
        }
    }

    #[test]
    fn exhausted_retries_quarantine_with_final_outcome() {
        let p = plan(2, 1, 3);
        let env = EnvFingerprint::simulated("quarantine-test");
        let exp = experiment();
        let faults = Arc::new(FaultRegistry::new(0).armed_always(
            "exec.unit.run",
            Trigger::Key(0),
            FaultAction::Panic,
        ));
        let sweep = Scheduler::new(1)
            .with_policy(RetryPolicy::retries(1))
            .with_faults(faults)
            .execute_contained(&p, &exp, &ResultCache::disabled(), &env, None);
        assert_eq!(sweep.report.quarantined, vec![0]);
        let failed = &sweep.report.units[0];
        assert_eq!(failed.attempts, 2, "both attempts consumed");
        assert!(matches!(failed.outcome, UnitOutcome::Panicked(_)));
        assert_eq!(sweep.report.retries, 1);
    }

    #[test]
    fn hung_units_time_out_via_watchdog() {
        let p = plan(2, 1, 8);
        let env = EnvFingerprint::simulated("watchdog-test");
        let exp = experiment();
        // Unit 1 hangs for 30s (far past the deadline); the watchdog must
        // cancel it, and unit 0 must still measure.
        let faults = Arc::new(FaultRegistry::new(0).armed_always(
            "exec.unit.run",
            Trigger::Key(1),
            FaultAction::Hang { ms: 30_000.0 },
        ));
        let t0 = Instant::now();
        let sweep = Scheduler::new(2)
            .with_policy(RetryPolicy::default().with_deadline_ms(40.0))
            .with_faults(faults)
            .execute_contained(&p, &exp, &ResultCache::disabled(), &env, None);
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "watchdog cancelled the hang"
        );
        assert_eq!(sweep.report.units[1].outcome, UnitOutcome::TimedOut);
        assert!(sweep.report.units[1].quarantined);
        assert_eq!(sweep.report.units[0].outcome, UnitOutcome::Measured);
        assert_eq!(sweep.report.quarantined, vec![1]);
    }

    #[test]
    fn traced_watchdog_lane_records_cancellations() {
        let p = plan(1, 1, 0);
        let env = EnvFingerprint::simulated("watchdog-trace-test");
        let exp = experiment();
        let faults = Arc::new(FaultRegistry::new(0).armed_always(
            "exec.unit.run",
            Trigger::Always,
            FaultAction::Hang { ms: 30_000.0 },
        ));
        let tracer = Tracer::new();
        let sweep = Scheduler::new(1)
            .with_policy(RetryPolicy::default().with_deadline_ms(30.0))
            .with_faults(faults)
            .execute_contained_traced(
                &p,
                &exp,
                &ResultCache::disabled(),
                &env,
                None,
                Some(&tracer),
            );
        assert_eq!(sweep.report.units[0].outcome, UnitOutcome::TimedOut);
        let trace = tracer.snapshot();
        assert!(
            trace.lanes.iter().any(|l| l.label == "watchdog"),
            "watchdog lane present"
        );
        assert!(
            trace.find("deadline-fired").count() >= 1,
            "cancellation recorded"
        );
        let unit = trace
            .lanes
            .iter()
            .flat_map(|l| l.records.iter())
            .find(|s| s.name.starts_with("unit "))
            .expect("unit span");
        assert_eq!(unit.attr("outcome"), Some(&"timed_out".into()));
        assert_eq!(unit.attr("quarantined"), Some(&"true".into()));
    }

    #[test]
    #[should_panic(expected = "sweep incomplete")]
    fn legacy_execute_panics_with_taxonomy_on_quarantine() {
        let p = plan(3, 2, 42);
        let env = EnvFingerprint::simulated("legacy-test");
        let exp = experiment();
        let _ = Scheduler::new(1).with_faults(persistent_panics()).execute(
            &p,
            &exp,
            &ResultCache::disabled(),
            &env,
            None,
        );
    }

    #[test]
    fn failure_report_is_invariant_under_threads_and_order() {
        let p = plan(4, 3, 13);
        let env = EnvFingerprint::simulated("invariant-test");
        let exp = experiment();
        let faults = || {
            Arc::new(
                FaultRegistry::new(5)
                    .armed_always(
                        "exec.unit.run",
                        Trigger::KeyModulo {
                            modulus: 5,
                            remainder: 2,
                        },
                        FaultAction::Panic,
                    )
                    .armed_transient("exec.unit.run", Trigger::Key(0), 2, FaultAction::Panic),
            )
        };
        let baseline = Scheduler::new(1)
            .with_policy(RetryPolicy::retries(1))
            .with_faults(faults())
            .execute_contained(&p, &exp, &ResultCache::disabled(), &env, None);
        for threads in [2, 4] {
            for order in [OrderPolicy::Shuffled(3), OrderPolicy::Blocked] {
                let sweep = Scheduler::new(threads)
                    .with_order(order)
                    .with_policy(RetryPolicy::retries(1))
                    .with_faults(faults())
                    .execute_contained(&p, &exp, &ResultCache::disabled(), &env, None);
                assert_eq!(sweep.report.units, baseline.report.units);
                assert_eq!(sweep.report.quarantined, baseline.report.quarantined);
                assert_eq!(sweep.report.retries, baseline.report.retries);
                assert_eq!(sweep.responses, baseline.responses);
            }
        }
    }
}
