//! Failure taxonomy and containment policy for sweep execution.
//!
//! The tutorial's honesty principle applied to execution itself: when a
//! unit of a sweep crashes, stalls, or keeps failing, the sweep must not
//! die, and — just as important — the report must not pretend. Every unit
//! gets a [`UnitReport`] stating what happened and how many attempts it
//! took; a sweep whose cells are not all measured yields a [`SweepResult`]
//! with `table == None` plus the exact list of missing cells and why, so
//! downstream consumers (allocation of variation, effect estimation) can
//! refuse or degrade *explicitly* instead of averaging over holes.

use perfeval_core::runner::ResponseTable;

/// What finally happened to one run-plan unit.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitOutcome {
    /// Freshly measured successfully.
    Measured,
    /// Served from the result cache (no measurement this execution).
    Cached,
    /// The final attempt panicked; the message is recorded.
    Panicked(String),
    /// The final attempt exceeded the per-unit deadline (watchdog-cancelled
    /// or detected post-hoc).
    TimedOut,
}

impl UnitOutcome {
    /// True if the unit produced a usable response.
    pub fn is_ok(&self) -> bool {
        matches!(self, UnitOutcome::Measured | UnitOutcome::Cached)
    }

    /// Stable lowercase label, used for trace attributes and reports.
    pub fn label(&self) -> &'static str {
        match self {
            UnitOutcome::Measured => "measured",
            UnitOutcome::Cached => "cached",
            UnitOutcome::Panicked(_) => "panicked",
            UnitOutcome::TimedOut => "timed_out",
        }
    }
}

/// Per-unit execution record: the cell coordinates, the final outcome, and
/// the retry accounting. `ExecReport::units` holds one per plan unit, in
/// canonical order — every cell is accounted for, succeeded or not.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitReport {
    /// Canonical unit index in the plan.
    pub unit: usize,
    /// Design run (row).
    pub run: usize,
    /// Replicate within the run.
    pub replicate: usize,
    /// Final outcome.
    pub outcome: UnitOutcome,
    /// Measurement attempts made (0 for cache hits, 1 for a clean first
    /// try, more when retries happened).
    pub attempts: u32,
    /// True if the unit failed on every allowed attempt and was given up
    /// on — its cell is missing from the response table.
    pub quarantined: bool,
}

impl UnitReport {
    /// `run <r> rep <k>: <outcome> after <n> attempt(s)` — one report line.
    pub fn render(&self) -> String {
        let detail = match &self.outcome {
            UnitOutcome::Panicked(msg) => format!("panicked ({msg})"),
            other => other.label().to_owned(),
        };
        format!(
            "run {} rep {}: {detail} after {} attempt(s){}",
            self.run,
            self.replicate,
            self.attempts,
            if self.quarantined {
                " — quarantined"
            } else {
                ""
            }
        )
    }
}

/// Failure-containment policy for one sweep: how many attempts each unit
/// gets, how retries back off, and the per-unit wall-clock deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per unit (>= 1). A unit failing all of them is
    /// quarantined.
    pub max_attempts: u32,
    /// Base backoff between attempts, milliseconds. Actual backoff is a
    /// seeded, bounded function of the unit seed and attempt number —
    /// deterministic in its choice, like everything else in the plan.
    pub backoff_ms: f64,
    /// Per-unit wall-clock deadline in milliseconds. A unit still running
    /// past it is cancelled by the watchdog (cooperatively — in-process
    /// containment cannot kill a thread) or classified as timed out when
    /// it finishes; `None` disables deadlines.
    pub deadline_ms: Option<f64>,
}

impl Default for RetryPolicy {
    /// One attempt, no backoff, no deadline — the historical semantics.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_ms: 0.0,
            deadline_ms: None,
        }
    }
}

impl RetryPolicy {
    /// A policy granting `retries` retries (so `retries + 1` attempts)
    /// with a 1 ms base backoff.
    pub fn retries(retries: u32) -> Self {
        RetryPolicy {
            max_attempts: retries + 1,
            backoff_ms: 1.0,
            ..RetryPolicy::default()
        }
    }

    /// Sets the per-unit deadline.
    ///
    /// # Panics
    /// Panics if `ms` is not positive and finite.
    pub fn with_deadline_ms(mut self, ms: f64) -> Self {
        assert!(ms > 0.0 && ms.is_finite(), "deadline must be positive");
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the base backoff.
    pub fn with_backoff_ms(mut self, ms: f64) -> Self {
        self.backoff_ms = ms.max(0.0);
        self
    }

    /// One-line description for reports.
    pub fn describe(&self) -> String {
        format!(
            "{} attempt(s) per unit{}{}",
            self.max_attempts,
            if self.backoff_ms > 0.0 {
                format!(", {} ms base backoff", self.backoff_ms)
            } else {
                String::new()
            },
            match self.deadline_ms {
                Some(d) => format!(", {d} ms deadline"),
                None => ", no deadline".to_owned(),
            }
        )
    }
}

/// The outcome of a failure-contained sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Per-unit responses in canonical order; `None` where the unit was
    /// quarantined.
    pub responses: Vec<Option<f64>>,
    /// The assembled table — `Some` iff every cell was measured. A partial
    /// sweep never silently assembles.
    pub table: Option<ResponseTable>,
    /// Execution report with the per-unit failure taxonomy.
    pub report: crate::progress::ExecReport,
}

impl SweepResult {
    /// True if every cell produced a response.
    pub fn is_complete(&self) -> bool {
        self.table.is_some()
    }

    /// Unwraps a complete sweep, preserving the historical fail-fast
    /// contract for callers that cannot degrade.
    ///
    /// # Panics
    /// Panics with the missing-cell taxonomy if any unit was quarantined.
    pub fn expect_complete(self) -> (ResponseTable, crate::progress::ExecReport) {
        match self.table {
            Some(table) => (table, self.report),
            None => {
                let missing: Vec<String> = self
                    .report
                    .missing_cells()
                    .iter()
                    .map(|u| u.render())
                    .collect();
                panic!(
                    "sweep incomplete: {} of {} unit(s) failed every attempt — {}",
                    missing.len(),
                    self.report.total_units,
                    missing.join("; ")
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification() {
        assert!(UnitOutcome::Measured.is_ok());
        assert!(UnitOutcome::Cached.is_ok());
        assert!(!UnitOutcome::Panicked("x".into()).is_ok());
        assert!(!UnitOutcome::TimedOut.is_ok());
        assert_eq!(UnitOutcome::TimedOut.label(), "timed_out");
    }

    #[test]
    fn unit_report_renders_the_story() {
        let r = UnitReport {
            unit: 5,
            run: 2,
            replicate: 1,
            outcome: UnitOutcome::Panicked("injected fault: exec.unit.run".into()),
            attempts: 3,
            quarantined: true,
        };
        let line = r.render();
        assert!(line.contains("run 2 rep 1"));
        assert!(line.contains("injected fault"));
        assert!(line.contains("3 attempt(s)"));
        assert!(line.contains("quarantined"));
    }

    #[test]
    fn default_policy_is_the_historical_contract() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.deadline_ms, None);
        assert!(p.describe().contains("1 attempt(s)"));
    }

    #[test]
    fn retries_and_deadline_builders() {
        let p = RetryPolicy::retries(2).with_deadline_ms(50.0);
        assert_eq!(p.max_attempts, 3);
        assert_eq!(p.deadline_ms, Some(50.0));
        assert!(p.describe().contains("50 ms deadline"));
        assert!(p.describe().contains("backoff"));
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_rejected() {
        let _ = RetryPolicy::default().with_deadline_ms(0.0);
    }
}
