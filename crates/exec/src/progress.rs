//! Progress and observability for long sweeps.
//!
//! A sweep that runs for hours with no output is indistinguishable from a
//! hung one, and a straggling worker silently stretches wall time. The
//! scheduler emits [`ProgressSnapshot`]s through a caller-supplied hook and
//! summarizes the whole execution as an [`ExecReport`] — completed/total,
//! per-worker throughput, cache hits, and straggler flags — that
//! `perfeval-harness` renders alongside the scientific results.

use crate::outcome::{UnitOutcome, UnitReport};
use crate::pool::WorkerStats;

/// A point-in-time view of a running sweep, handed to progress hooks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressSnapshot {
    /// Units finished so far (executed or served from cache).
    pub completed: usize,
    /// Total units in the plan.
    pub total: usize,
    /// Wall-clock seconds since the sweep started.
    pub elapsed_secs: f64,
}

impl ProgressSnapshot {
    /// Completed fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.completed as f64 / self.total as f64
        }
    }

    /// Units per second so far.
    pub fn throughput(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.completed as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }

    /// Estimated seconds to completion, extrapolating current throughput;
    /// `None` until at least one unit has finished.
    pub fn eta_secs(&self) -> Option<f64> {
        if self.completed == 0 {
            return None;
        }
        let rate = self.throughput();
        if rate > 0.0 {
            Some((self.total - self.completed) as f64 / rate)
        } else {
            None
        }
    }

    /// `"17/64 (26.6%), 3.1 units/s, ETA 15s"` — the progress line.
    pub fn render(&self) -> String {
        let eta = match self.eta_secs() {
            Some(s) => format!("ETA {s:.0}s"),
            None => "ETA unknown".to_owned(),
        };
        format!(
            "{}/{} ({:.1}%), {:.1} units/s, {eta}",
            self.completed,
            self.total,
            100.0 * self.fraction(),
            self.throughput()
        )
    }
}

/// Summary of one scheduler execution, for inclusion in reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Worker threads used.
    pub threads: usize,
    /// Units in the plan.
    pub total_units: usize,
    /// Units actually measured this execution.
    pub executed: usize,
    /// Units served from the result cache.
    pub from_cache: usize,
    /// Extra measurement attempts beyond each unit's first (the retry
    /// bill of the sweep).
    pub retries: usize,
    /// Canonical indices of units that failed every allowed attempt and
    /// were given up on. Non-empty means the response table is partial.
    pub quarantined: Vec<usize>,
    /// Per-unit execution records in canonical order — the failure
    /// taxonomy. Every cell of the plan appears exactly once.
    pub units: Vec<UnitReport>,
    /// Wall-clock seconds for the whole sweep.
    pub wall_secs: f64,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// The order policy description (self-documentation).
    pub order: String,
    /// The plan description (runs × replications, protocol, root seed).
    pub plan: String,
}

impl ExecReport {
    /// Workers whose busy time exceeds `factor` × the median busy time —
    /// the stragglers that deserve a look (NUMA placement, thermal
    /// throttling, an unlucky string of slow units).
    ///
    /// `factor` below 1.0 is treated as 1.0. Needs ≥ 2 workers to be
    /// meaningful; returns empty otherwise.
    pub fn stragglers(&self, factor: f64) -> Vec<usize> {
        if self.workers.len() < 2 {
            return Vec::new();
        }
        let mut busy: Vec<f64> = self.workers.iter().map(|w| w.busy_secs).collect();
        busy.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let median = busy[busy.len() / 2];
        if median <= 0.0 {
            return Vec::new();
        }
        let threshold = median * factor.max(1.0);
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.busy_secs > threshold)
            .map(|(i, _)| i)
            .collect()
    }

    /// Units whose final outcome was a panic.
    pub fn panicked(&self) -> usize {
        self.units
            .iter()
            .filter(|u| matches!(u.outcome, UnitOutcome::Panicked(_)))
            .count()
    }

    /// Units whose final outcome was a deadline timeout.
    pub fn timed_out(&self) -> usize {
        self.units
            .iter()
            .filter(|u| u.outcome == UnitOutcome::TimedOut)
            .count()
    }

    /// Units that needed more than one attempt (whether or not they
    /// eventually succeeded).
    pub fn retried(&self) -> usize {
        self.units.iter().filter(|u| u.attempts > 1).count()
    }

    /// The quarantined units' records — the cells missing from the table.
    pub fn missing_cells(&self) -> Vec<&UnitReport> {
        self.units.iter().filter(|u| u.quarantined).collect()
    }

    /// True if every unit produced a response.
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Aggregate units per second of wall-clock time.
    pub fn throughput(&self) -> f64 {
        if self.wall_secs > 0.0 {
            (self.executed + self.from_cache) as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Multi-line human-readable summary (one string per line), the form
    /// `perfeval-harness::report` embeds.
    pub fn render_lines(&self) -> Vec<String> {
        let mut lines = vec![
            format!("plan: {}", self.plan),
            format!("order: {}", self.order),
            format!(
                "execution: {} units on {} thread(s) in {:.3}s ({:.1} units/s)",
                self.total_units,
                self.threads,
                self.wall_secs,
                self.throughput()
            ),
            format!(
                "cache: {} executed, {} resumed from cache",
                self.executed, self.from_cache
            ),
        ];
        // Failure taxonomy: rendered only when something went wrong, but
        // then rendered completely — a partial sweep must read as partial.
        if self.retries > 0 || !self.is_complete() || self.panicked() + self.timed_out() > 0 {
            lines.push(format!(
                "failures: {} panicked, {} timed out; {} unit(s) retried ({} extra attempt(s))",
                self.panicked(),
                self.timed_out(),
                self.retried(),
                self.retries
            ));
        }
        if !self.is_complete() {
            lines.push(format!(
                "quarantined {} unit(s) — response table is PARTIAL: {:?}",
                self.quarantined.len(),
                self.quarantined
            ));
            for u in self.missing_cells() {
                lines.push(format!("  missing {}", u.render()));
            }
        }
        for (i, w) in self.workers.iter().enumerate() {
            lines.push(format!(
                "worker {i}: {} unit(s), {:.3}s busy",
                w.units, w.busy_secs
            ));
        }
        let stragglers = self.stragglers(2.0);
        if !stragglers.is_empty() {
            lines.push(format!(
                "stragglers (>2x median busy time): worker(s) {stragglers:?}"
            ));
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_math() {
        let s = ProgressSnapshot {
            completed: 25,
            total: 100,
            elapsed_secs: 5.0,
        };
        assert_eq!(s.fraction(), 0.25);
        assert_eq!(s.throughput(), 5.0);
        assert_eq!(s.eta_secs(), Some(15.0));
        let line = s.render();
        assert!(line.contains("25/100"));
        assert!(line.contains("ETA 15s"));
    }

    #[test]
    fn snapshot_before_first_completion() {
        let s = ProgressSnapshot {
            completed: 0,
            total: 10,
            elapsed_secs: 1.0,
        };
        assert_eq!(s.eta_secs(), None);
        assert!(s.render().contains("ETA unknown"));
    }

    #[test]
    fn empty_plan_is_complete() {
        let s = ProgressSnapshot {
            completed: 0,
            total: 0,
            elapsed_secs: 0.0,
        };
        assert_eq!(s.fraction(), 1.0);
    }

    fn report(busy: &[f64]) -> ExecReport {
        ExecReport {
            threads: busy.len(),
            total_units: 10,
            executed: 10,
            from_cache: 0,
            retries: 0,
            quarantined: Vec::new(),
            units: Vec::new(),
            wall_secs: 1.0,
            workers: busy
                .iter()
                .map(|&b| WorkerStats {
                    units: 1,
                    busy_secs: b,
                })
                .collect(),
            order: "as-designed order".into(),
            plan: "test plan".into(),
        }
    }

    #[test]
    fn straggler_flagging() {
        let r = report(&[1.0, 1.1, 0.9, 5.0]);
        assert_eq!(r.stragglers(2.0), vec![3]);
        assert!(report(&[1.0, 1.0, 1.0]).stragglers(2.0).is_empty());
        assert!(report(&[1.0]).stragglers(2.0).is_empty(), "needs >= 2");
    }

    #[test]
    fn render_lines_cover_the_story() {
        let mut r = report(&[1.0, 1.1, 0.9, 4.0]);
        r.from_cache = 3;
        r.executed = 7;
        let text = r.render_lines().join("\n");
        assert!(text.contains("test plan"));
        assert!(text.contains("as-designed"));
        assert!(text.contains("7 executed, 3 resumed"));
        assert!(text.contains("worker 0"));
        assert!(text.contains("stragglers"));
        assert!(
            !text.contains("failures:"),
            "clean sweeps render no failure section"
        );
    }

    #[test]
    fn partial_sweep_renders_the_failure_taxonomy() {
        let mut r = report(&[1.0, 1.0]);
        r.retries = 3;
        r.quarantined = vec![4];
        r.units = vec![
            UnitReport {
                unit: 0,
                run: 0,
                replicate: 0,
                outcome: UnitOutcome::Measured,
                attempts: 3,
                quarantined: false,
            },
            UnitReport {
                unit: 4,
                run: 2,
                replicate: 0,
                outcome: UnitOutcome::Panicked("segfault du jour".into()),
                attempts: 2,
                quarantined: true,
            },
            UnitReport {
                unit: 5,
                run: 2,
                replicate: 1,
                outcome: UnitOutcome::TimedOut,
                attempts: 1,
                quarantined: false,
            },
        ];
        assert!(!r.is_complete());
        assert_eq!(r.panicked(), 1);
        assert_eq!(r.timed_out(), 1);
        assert_eq!(r.retried(), 2);
        assert_eq!(r.missing_cells().len(), 1);
        let text = r.render_lines().join("\n");
        assert!(text.contains("failures: 1 panicked, 1 timed out"));
        assert!(text.contains("2 unit(s) retried (3 extra attempt(s))"));
        assert!(text.contains("PARTIAL"));
        assert!(text.contains("segfault du jour"));
    }
}
