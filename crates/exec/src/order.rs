//! Run-order policies.
//!
//! *When* a measurement executes matters: drifting environments (thermal
//! throttling, background daemons, file-system aging) correlate with wall
//! time, and an as-designed order confounds that drift with the factors.
//! Jain (ch. 16) and the tutorial's repeatability chapter recommend
//! randomizing or blocking run order. Because results are assembled by
//! canonical unit index (see [`crate::plan::RunPlan::assemble`]), the
//! policy affects only *which drift lands on which unit* — never the
//! mapping of responses to design rows.

use crate::plan::RunPlan;
use perfeval_stats::rng::SplitMix64;

/// Stream id reserving the shuffle's randomness; unit seeds use the plain
/// unit index, far below this.
const SHUFFLE_STREAM: u64 = 0x5348_5546_464C_4531; // "SHUFFLE1"

/// How the units of a [`RunPlan`] are ordered for execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderPolicy {
    /// Canonical run-major order: run 0's replicates, then run 1's, …
    /// Simple, but confounds environment drift with the design.
    AsDesigned,
    /// Uniform random permutation (Fisher–Yates) from the given seed.
    /// The recommended default for published experiments.
    Shuffled(u64),
    /// Replicate-major blocks: every run's replicate 0, then every run's
    /// replicate 1, … Each block covers the whole design once, so drift
    /// between blocks becomes a between-replication effect the allocation
    /// of variation can see, instead of a hidden factor bias.
    Blocked,
}

impl OrderPolicy {
    /// Produces the execution order: a permutation of `0..plan.unit_count()`
    /// (canonical unit indices).
    pub fn order(&self, plan: &RunPlan) -> Vec<usize> {
        let n = plan.unit_count();
        match *self {
            OrderPolicy::AsDesigned => (0..n).collect(),
            OrderPolicy::Shuffled(seed) => {
                let mut order: Vec<usize> = (0..n).collect();
                // A dedicated stream so the shuffle can never collide with
                // per-unit measurement seeds derived from the same value.
                SplitMix64::split(seed, SHUFFLE_STREAM).shuffle(&mut order);
                order
            }
            OrderPolicy::Blocked => {
                let reps = plan.replications();
                let runs = plan.run_count();
                let mut order = Vec::with_capacity(n);
                for replicate in 0..reps {
                    for run in 0..runs {
                        order.push(run * reps + replicate);
                    }
                }
                order
            }
        }
    }

    /// One-line description for documentation/output headers.
    pub fn describe(&self) -> String {
        match self {
            OrderPolicy::AsDesigned => "as-designed order".to_owned(),
            OrderPolicy::Shuffled(seed) => format!("shuffled order (seed {seed})"),
            OrderPolicy::Blocked => "blocked order (replicate-major)".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfeval_core::factor::Level;
    use perfeval_core::runner::Assignment;
    use perfeval_measure::protocol::RunProtocol;

    fn plan(runs: usize, reps: usize) -> RunPlan {
        let assignments = (0..runs)
            .map(|i| Assignment::new(vec![("x".into(), Level::Num(i as f64))]))
            .collect();
        RunPlan::expand(assignments, RunProtocol::hot(0, reps), 11)
    }

    fn is_permutation(order: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        order.len() == n
            && order.iter().all(|&i| {
                if i < n && !seen[i] {
                    seen[i] = true;
                    true
                } else {
                    false
                }
            })
    }

    #[test]
    fn as_designed_is_identity() {
        let p = plan(3, 2);
        assert_eq!(OrderPolicy::AsDesigned.order(&p), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn shuffled_is_a_permutation_covering_every_unit_once() {
        let p = plan(8, 3);
        let order = OrderPolicy::Shuffled(123).order(&p);
        assert!(is_permutation(&order, p.unit_count()));
        assert_ne!(
            order,
            (0..p.unit_count()).collect::<Vec<_>>(),
            "24 units staying sorted is astronomically unlikely"
        );
    }

    #[test]
    fn shuffled_is_seed_deterministic() {
        let p = plan(5, 4);
        assert_eq!(
            OrderPolicy::Shuffled(7).order(&p),
            OrderPolicy::Shuffled(7).order(&p)
        );
        assert_ne!(
            OrderPolicy::Shuffled(7).order(&p),
            OrderPolicy::Shuffled(8).order(&p)
        );
    }

    #[test]
    fn blocked_covers_whole_design_per_block() {
        let p = plan(3, 2);
        let order = OrderPolicy::Blocked.order(&p);
        assert!(is_permutation(&order, 6));
        // Block 0 = replicate 0 of runs 0,1,2; block 1 = replicate 1.
        let runs_in_block0: Vec<usize> = order[..3].iter().map(|&i| p.units[i].run).collect();
        assert_eq!(runs_in_block0, vec![0, 1, 2]);
        assert!(order[..3].iter().all(|&i| p.units[i].replicate == 0));
        assert!(order[3..].iter().all(|&i| p.units[i].replicate == 1));
    }

    #[test]
    fn describe_names_the_policy() {
        assert!(OrderPolicy::AsDesigned.describe().contains("as-designed"));
        assert!(OrderPolicy::Shuffled(5).describe().contains("seed 5"));
        assert!(OrderPolicy::Blocked.describe().contains("blocked"));
    }
}
