//! Crash recovery: a torn write injected mid-persist (the `store.write`
//! fault site) must leave the previously committed generation intact.
//! Reopening yields data **bit-identical** to the pre-write state, and
//! the torn new-generation files are quarantined with a counted — never
//! silent — report.
//!
//! Runs the same protocol across fault seeds {1, 2, 3}, which tear the
//! write at different segment ordinals.

use minidb::{Catalog, DataType, StoreConfig, TableBuilder, Value};
use perfeval_fault::{FaultAction, FaultRegistry, Trigger};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_table(version: i64, rows: i64) -> minidb::Table {
    let mut t = TableBuilder::new("ledger")
        .column("id", DataType::Int)
        .column("v", DataType::Float)
        .column("who", DataType::Str)
        .build();
    for i in 0..rows {
        t.push_row(vec![
            Value::Int(i * version),
            Value::Float(if i % 2 == 0 {
                f64::NAN
            } else {
                i as f64 * 0.25
            }),
            Value::Str(format!("w{}", i % 5)),
        ])
        .unwrap();
    }
    t
}

fn assert_bit_identical(mem: &minidb::Table, disk: &minidb::Table, ctx: &str) {
    assert_eq!(mem.row_count(), disk.row_count(), "{ctx}");
    for ci in 0..mem.column_count() {
        let a = mem.column_arc_io(ci).unwrap();
        let b = disk.column_arc_io(ci).unwrap();
        if let (Some(fa), Some(fb)) = (a.as_float(), b.as_float()) {
            for (x, y) in fa.iter().zip(fb) {
                assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: col {ci} float bits");
            }
        } else {
            for i in 0..a.len() {
                assert_eq!(a.get(i), b.get(i), "{ctx}: col {ci} row {i}");
            }
        }
    }
}

#[test]
fn torn_write_mid_persist_recovers_to_previous_generation() {
    for seed in [1u64, 2, 3] {
        let dir = temp_dir(&format!("seed{seed}"));

        // Generation 1: committed clean.
        let v1 = build_table(1, 400);
        let mut catalog = Catalog::new();
        catalog.register(v1.clone()).unwrap();
        catalog
            .persist_with(&dir, &StoreConfig::default().chunk_rows(100))
            .unwrap();

        // Generation 2: the kill lands mid-write at a seed-chosen segment
        // ordinal (3 columns x 4 chunks = 12 segments).
        let torn_ordinal = seed * 3 % 12;
        let faults = Arc::new(FaultRegistry::new(seed).armed_always(
            "store.write",
            Trigger::Key(torn_ordinal),
            FaultAction::FailIo,
        ));
        let v2 = build_table(7, 400);
        let mut catalog2 = Catalog::new();
        catalog2.register(v2).unwrap();
        let err = catalog2
            .persist_with(&dir, &StoreConfig::default().chunk_rows(100).faults(faults))
            .unwrap_err();
        assert!(
            matches!(err, minidb::DbError::Io(_)),
            "seed {seed}: torn write must fail the persist, got {err}"
        );

        // Reopen: bit-identical to generation 1; the torn generation-2
        // files (the complete ones before the tear, plus the torn one)
        // are quarantined and counted.
        let disk = Catalog::open(&dir).unwrap();
        assert_bit_identical(&v1, disk.table("ledger").unwrap(), &format!("seed {seed}"));
        let q = disk.storage().unwrap().quarantined();
        assert_eq!(
            q.len() as u64,
            torn_ordinal + 1,
            "seed {seed}: quarantine must count every orphaned gen-2 file, got {q:?}"
        );
        assert!(q.iter().all(|f| f.contains("g2_")), "seed {seed}: {q:?}");

        // The torn file's bytes are preserved for forensics, not deleted.
        let quarantine = dir.join("quarantine");
        assert!(quarantine.is_dir(), "seed {seed}");
        assert_eq!(
            std::fs::read_dir(&quarantine).unwrap().count() as u64,
            torn_ordinal + 1,
            "seed {seed}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A torn segment on its own (no manifest pointing at it) must read as
/// corrupt, not as silently-short data — the checksum covers the full
/// payload the header promises.
#[test]
fn torn_segment_reads_as_corrupt() {
    let dir = temp_dir("corrupt_read");
    std::fs::create_dir_all(&dir).unwrap();
    let data = perfeval_store::ColumnData::I64((0..500).collect());
    let path = dir.join("seg.seg");
    let faults =
        FaultRegistry::new(1).armed_always("store.write", Trigger::Always, FaultAction::FailIo);
    let err = perfeval_store::write_segment(&path, &data, Some(&faults), 0).unwrap_err();
    assert!(matches!(err, perfeval_store::StoreError::Io(_)));
    // The torn file exists but fails its checksum on read.
    let err = perfeval_store::read_segment(&path, None, 0).unwrap_err();
    assert!(
        matches!(err, perfeval_store::StoreError::Corrupt(_)),
        "torn write must surface as corruption, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
