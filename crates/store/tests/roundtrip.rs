//! Property test: any table — ragged chunk geometries, empty columns,
//! dictionary-heavy or RLE-hostile data, NaN and signed-zero floats —
//! persists and reopens **bit-identical**, across pool budgets small
//! enough to force eviction mid-read.
//!
//! The store crate dev-depends on minidb here (a deliberate, legal dev
//! cycle): the property is stated against the engine's own tables, the
//! way every real catalog exercises the store.

use minidb::{Catalog, DataType, StoreConfig, TableBuilder, Value};
use perfeval_store::{decode_segment, encode_segment, ColumnData, Evict};
use proptest::prelude::*;
use std::path::PathBuf;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn temp_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "store_roundtrip_{tag}_{}_{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A value in column `ci` of a random table. Column 0 is RLE-hostile
/// (unique ints), 1 is RLE-friendly (long runs), 2 is dictionary-heavy
/// (3 distinct strings), 3 is high-cardinality strings, 4 cycles floats
/// through NaN / -0.0 / 0.0 / ordinary, 5 is bools.
fn cell(ci: usize, i: usize, rng: &mut Lcg) -> Value {
    match ci {
        0 => Value::Int(i as i64 * 7 - 3),
        1 => Value::Int((i / 50) as i64),
        2 => Value::Str(["lo", "mid", "hi"][rng.below(3) as usize].to_owned()),
        3 => Value::Str(format!("s{}", rng.below(10_000))),
        4 => Value::Float(match i % 4 {
            0 => f64::NAN,
            1 => -0.0,
            2 => 0.0,
            _ => (rng.below(1 << 30) as f64) / 97.0 - 1e6,
        }),
        _ => Value::Bool(rng.below(2) == 0),
    }
}

fn build_table(rows: usize, seed: u64) -> minidb::Table {
    let mut rng = Lcg(seed | 1);
    let mut t = TableBuilder::new("t")
        .column("unique_i", DataType::Int)
        .column("runs_i", DataType::Int)
        .column("dict_s", DataType::Str)
        .column("wide_s", DataType::Str)
        .column("f", DataType::Float)
        .column("b", DataType::Bool)
        .build();
    for i in 0..rows {
        let row = (0..6).map(|ci| cell(ci, i, &mut rng)).collect();
        t.push_row(row).unwrap();
    }
    t
}

fn assert_columns_bit_identical(mem: &minidb::Table, disk: &minidb::Table, ctx: &str) {
    assert_eq!(mem.row_count(), disk.row_count(), "{ctx}: rows");
    assert_eq!(mem.schema(), disk.schema(), "{ctx}: schema");
    for ci in 0..mem.column_count() {
        let a = mem.column_arc_io(ci).unwrap();
        let b = disk.column_arc_io(ci).unwrap();
        assert_eq!(a.len(), b.len(), "{ctx}: col {ci} len");
        if let (Some(fa), Some(fb)) = (a.as_float(), b.as_float()) {
            for (i, (x, y)) in fa.iter().zip(fb).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{ctx}: col {ci} row {i} float bits"
                );
            }
        } else {
            for i in 0..a.len() {
                assert_eq!(a.get(i), b.get(i), "{ctx}: col {ci} row {i}");
            }
        }
    }
}

proptest! {
    #[test]
    fn persist_reopen_bit_identical_across_pools(
        rows in 0usize..600,
        chunk_rows in 1usize..200,
        seed in any::<u64>(),
    ) {
        let mem = build_table(rows, seed);
        let mut catalog = Catalog::new();
        catalog.register(mem.clone()).unwrap();
        let dir = temp_dir("prop", seed ^ rows as u64);
        catalog
            .persist_with(&dir, &StoreConfig::default().chunk_rows(chunk_rows))
            .unwrap();
        // One pool budget comfortably larger than the table; one so small
        // (1 KiB) that any multi-chunk read must evict while assembling.
        for (pool_bytes, evict) in [
            (64 << 20, Evict::Lru),
            (1024, Evict::Lru),
            (1024, Evict::Clock),
            (1024, Evict::TwoQ),
        ] {
            let disk = Catalog::open_with(
                &dir,
                StoreConfig::default().pool_bytes(pool_bytes).evict(evict),
            )
            .unwrap();
            prop_assert!(disk.storage().unwrap().quarantined().is_empty());
            assert_columns_bit_identical(
                &mem,
                disk.table("t").unwrap(),
                &format!("rows={rows} chunk={chunk_rows} pool={pool_bytes} {evict:?}"),
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    /// Segment layer alone: encode → decode is the identity on any
    /// payload shape, without a filesystem in the loop.
    #[test]
    fn encode_decode_identity(rows in 0usize..2000, seed in any::<u64>()) {
        let mut rng = Lcg(seed | 1);
        let datasets = vec![
            ColumnData::I64((0..rows).map(|i| i as i64 * 31 - 7).collect()),
            ColumnData::I64(vec![42; rows]),
            ColumnData::F64(
                (0..rows)
                    .map(|i| match i % 3 {
                        0 => f64::NAN,
                        1 => -0.0,
                        _ => rng.below(1 << 40) as f64 / 1013.0,
                    })
                    .collect(),
            ),
            ColumnData::Bool((0..rows).map(|i| i % 5 == 0).collect()),
            {
                let dict: Vec<String> = (0..4).map(|i| format!("d{i}")).collect();
                let codes = (0..rows).map(|_| rng.below(4) as u32).collect();
                ColumnData::Str { dict, codes }
            },
        ];
        for data in datasets {
            let bytes = encode_segment(&data);
            let back = decode_segment(&bytes).unwrap();
            prop_assert!(back.bit_eq(&data), "rows={rows} seed={seed}");
        }
    }
}

/// Empty tables and single-row tables are legal catalogs.
#[test]
fn degenerate_geometries() {
    for rows in [0usize, 1] {
        let mem = build_table(rows, 0xbeef);
        let mut catalog = Catalog::new();
        catalog.register(mem.clone()).unwrap();
        let dir = temp_dir("degenerate", rows as u64);
        catalog.persist(&dir).unwrap();
        let disk = Catalog::open(&dir).unwrap();
        assert_columns_bit_identical(&mem, disk.table("t").unwrap(), &format!("rows={rows}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
