//! # perfeval-store
//!
//! Persistent columnar segments behind a **real** buffer pool — so hot
//! vs cold runs are *measured*, not simulated.
//!
//! The paper's hot/cold-run lesson (slides 33–36) says warm caches are
//! the single easiest way to fool yourself; Kalibera–Jones lists
//! uncontrolled initial state among the top sources of non-reproducible
//! results. Until this crate existed, every buffer-pool hit/miss number
//! in the workspace came from `memsim`'s *modeled* disk. Here the bytes
//! are real: columns are written to disk as checksummed, compressed
//! segment files, read back with `pread(2)`, and cached in a buffer
//! pool whose eviction policy is a design factor.
//!
//! ## Layers
//!
//! | module | contents |
//! |--------|----------|
//! | [`segment`] | one-file-per-column-chunk format: 32-byte checksummed header, Plain / RLE / dictionary encodings chosen per column, floats stored as [`f64::to_bits`] for bit-identity |
//! | [`pool`] | [`BufferPool`]: frame table, pin counts, dirty tracking, [`Evict::{Lru, Clock, TwoQ}`](Evict), real logical/physical read counters, `drop_all()` for honest cold runs |
//! | [`manifest`] | table/catalog manifests committed temp-then-rename (crash safety), quarantine of unreferenced files — counted, never silent — and a best-effort `posix_fadvise(DONTNEED)` page-cache drop |
//!
//! ## Crash safety
//!
//! Persisting a table writes a fresh *generation* of segment files
//! (names carry the generation, so live files are never overwritten),
//! then commits by renaming `TABLE.manifest.tmp` → `TABLE.manifest`.
//! A kill mid-write leaves the old manifest pointing at the old,
//! complete generation; reopening yields the pre-write state
//! bit-identically, and the torn leftovers are quarantined with a
//! counted report. Fault sites `store.write` (torn write: truncated
//! payload under a checksum computed for the full payload) and
//! `store.read` (injected read failure / short read) make both paths
//! deterministically testable — see `perfeval_fault`.
//!
//! ## What this is not
//!
//! `memsim` still exists for *era what-if* questions ("how would Q1
//! behave on 1992 hardware?"). Its hit/miss numbers are a model; this
//! crate's counters are measurements. Experiments must not mix the two
//! — E26 (`exp_e26_hot_cold`) reads only these counters.

#![warn(missing_docs)]

pub mod manifest;
pub mod pool;
pub mod segment;

pub use manifest::{
    drop_page_cache, quarantine_unreferenced, segment_paths, CatalogManifest, ChunkRef,
    ColumnManifest, TableManifest,
};
pub use pool::{BufferPool, Evict, PoolCounters, SegKey};
pub use segment::{
    decode_segment, encode_segment, read_segment, write_segment, ColumnData, Encoding, SegmentInfo,
    TypeTag,
};

use std::fmt;

/// Errors from the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O error (including injected `store.read` /
    /// `store.write` failures).
    Io(String),
    /// The bytes on disk are not a valid segment or manifest: bad magic,
    /// unsupported version, checksum mismatch, truncation, or a
    /// malformed payload.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "storage I/O error: {m}"),
            StoreError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// FNV-1a 64-bit — the workspace's stable, dependency-free hash, used
/// here as the segment payload checksum. Not cryptographic; it detects
/// torn writes and bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Pinned so on-disk checksums stay valid across refactors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
