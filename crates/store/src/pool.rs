//! A real buffer pool: frame table, pin counts, dirty tracking, and an
//! eviction policy that is a **design factor**, not an implementation
//! accident.
//!
//! The pool caches *decoded* chunks (`Arc<T>`), charged at their
//! in-memory size against a byte budget. Because frames hand out
//! `Arc`s, eviction never invalidates a reader — it only drops the
//! pool's reference, so the next access is a miss that performs real
//! I/O. That is exactly the semantics a cold-run experiment needs:
//! [`BufferPool::drop_all`] models a restart, and the logical/physical
//! read counters are measurements, not simulation.
//!
//! ## Invariants
//!
//! - A **pinned** frame (`pins > 0`) is never evicted; multi-chunk
//!   column assembly pins its chunks for the duration.
//! - A **dirty** frame is never evicted until [`BufferPool::take_dirty`]
//!   collects it for write-back — losing unwritten bytes is not an
//!   eviction policy.
//! - When every frame is pinned or dirty the pool **over-commits**
//!   rather than failing the query, and counts it
//!   ([`PoolCounters::overcommits`]) — running a scale factor that
//!   exceeds the budget completes, honestly accounted.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Address of one cached chunk: `(table id, column index, chunk index)`.
pub type SegKey = (u32, u32, u32);

/// Eviction policy — a design factor (E26 measures it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Evict {
    /// Least-recently-used: victim is the unpinned frame with the
    /// oldest access stamp.
    #[default]
    Lru,
    /// Clock (second chance): a hand sweeps a ring of frames, clearing
    /// reference bits until it finds an unreferenced, unpinned frame.
    Clock,
    /// 2Q: first-time pages sit in a probationary FIFO (`A1`); a second
    /// access promotes to the protected LRU (`Am`). Scans that touch
    /// data once cannot flush the hot set.
    TwoQ,
}

impl Evict {
    /// Knob spelling, e.g. for `-Devict=`.
    pub fn as_str(self) -> &'static str {
        match self {
            Evict::Lru => "lru",
            Evict::Clock => "clock",
            Evict::TwoQ => "2q",
        }
    }

    /// All policies, for factorial designs.
    pub fn all() -> [Evict; 3] {
        [Evict::Lru, Evict::Clock, Evict::TwoQ]
    }
}

impl std::str::FromStr for Evict {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Ok(Evict::Lru),
            "clock" => Ok(Evict::Clock),
            "2q" | "twoq" => Ok(Evict::TwoQ),
            other => Err(format!("unknown eviction policy {other:?} (lru|clock|2q)")),
        }
    }
}

impl std::fmt::Display for Evict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Monotonic counters; deltas around a query give per-statement truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Chunk accesses through the pool (hits + misses).
    pub logical_reads: u64,
    /// Accesses that had to load from storage (real I/O).
    pub physical_reads: u64,
    /// Frames evicted to stay within budget.
    pub evictions: u64,
    /// Loads admitted *over* budget because every frame was pinned or
    /// dirty. Nonzero means the budget was too small for the working
    /// set — reported, never hidden.
    pub overcommits: u64,
}

impl PoolCounters {
    /// Hits (logical minus physical).
    pub fn hits(&self) -> u64 {
        self.logical_reads - self.physical_reads
    }

    /// Hit rate in `[0, 1]`; `1.0` for an untouched pool.
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            self.hits() as f64 / self.logical_reads as f64
        }
    }

    /// Counter-wise difference (`self` after, `earlier` before).
    pub fn since(&self, earlier: &PoolCounters) -> PoolCounters {
        PoolCounters {
            logical_reads: self.logical_reads - earlier.logical_reads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            evictions: self.evictions - earlier.evictions,
            overcommits: self.overcommits - earlier.overcommits,
        }
    }
}

#[derive(Debug)]
struct Frame<T> {
    value: Arc<T>,
    bytes: u64,
    pins: u32,
    dirty: bool,
    /// LRU access stamp.
    stamp: u64,
    /// Clock reference bit.
    referenced: bool,
    /// 2Q: promoted to the protected queue.
    hot: bool,
}

/// The buffer pool. Single-owner; wrap in a `Mutex` to share (minidb
/// hangs one off the catalog).
#[derive(Debug)]
pub struct BufferPool<T> {
    capacity_bytes: u64,
    evict: Evict,
    frames: HashMap<SegKey, Frame<T>>,
    resident_bytes: u64,
    tick: u64,
    counters: PoolCounters,
    /// Clock: insertion ring + hand position.
    ring: VecDeque<SegKey>,
    /// 2Q: probationary FIFO (cold) and protected LRU order (hot).
    a1: VecDeque<SegKey>,
    am: VecDeque<SegKey>,
}

impl<T> BufferPool<T> {
    /// An empty pool with a byte budget and an eviction policy.
    pub fn new(capacity_bytes: u64, evict: Evict) -> Self {
        BufferPool {
            capacity_bytes,
            evict,
            frames: HashMap::new(),
            resident_bytes: 0,
            tick: 0,
            counters: PoolCounters::default(),
            ring: VecDeque::new(),
            a1: VecDeque::new(),
            am: VecDeque::new(),
        }
    }

    /// The byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// The eviction policy.
    pub fn evict_policy(&self) -> Evict {
        self.evict
    }

    /// Bytes currently cached.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Number of cached frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Whether a chunk is resident.
    pub fn contains(&self, key: SegKey) -> bool {
        self.frames.contains_key(&key)
    }

    /// Cumulative counters.
    pub fn counters(&self) -> PoolCounters {
        self.counters
    }

    /// Zeroes the counters (resident frames stay).
    pub fn reset_counters(&mut self) {
        self.counters = PoolCounters::default();
    }

    /// Returns the cached chunk, or loads it with `load` on a miss.
    ///
    /// `load` returns the value plus its byte charge. On a miss the new
    /// frame is admitted and unpinned victims are evicted until the
    /// pool is back within budget (or nothing more can go).
    pub fn get_or_load<E>(
        &mut self,
        key: SegKey,
        load: impl FnOnce() -> Result<(T, u64), E>,
    ) -> Result<Arc<T>, E> {
        self.counters.logical_reads += 1;
        self.tick += 1;
        if let Some(frame) = self.frames.get_mut(&key) {
            frame.stamp = self.tick;
            frame.referenced = true;
            if self.evict == Evict::TwoQ {
                if frame.hot {
                    // Refresh LRU position in Am.
                    if let Some(i) = self.am.iter().position(|k| *k == key) {
                        self.am.remove(i);
                    }
                } else {
                    // Second access: promote A1 -> Am.
                    frame.hot = true;
                    if let Some(i) = self.a1.iter().position(|k| *k == key) {
                        self.a1.remove(i);
                    }
                }
                self.am.push_back(key);
            }
            return Ok(Arc::clone(&frame.value));
        }
        self.counters.physical_reads += 1;
        let (value, bytes) = load()?;
        let value = Arc::new(value);
        self.frames.insert(
            key,
            Frame {
                value: Arc::clone(&value),
                bytes,
                pins: 0,
                dirty: false,
                stamp: self.tick,
                referenced: false,
                hot: false,
            },
        );
        self.resident_bytes += bytes;
        match self.evict {
            Evict::Clock => self.ring.push_back(key),
            Evict::TwoQ => self.a1.push_back(key),
            Evict::Lru => {}
        }
        // The chunk being handed out is in use by definition; it must
        // not be the victim of its own admission.
        if self.resident_bytes > self.capacity_bytes && !self.shrink_to_budget(Some(key)) {
            self.counters.overcommits += 1;
        }
        Ok(value)
    }

    /// Pins a resident frame (it cannot be evicted until unpinned).
    /// Returns false if the chunk is not resident.
    pub fn pin(&mut self, key: SegKey) -> bool {
        match self.frames.get_mut(&key) {
            Some(f) => {
                f.pins += 1;
                true
            }
            None => false,
        }
    }

    /// Releases one pin.
    pub fn unpin(&mut self, key: SegKey) {
        if let Some(f) = self.frames.get_mut(&key) {
            f.pins = f.pins.saturating_sub(1);
        }
    }

    /// Current pin count of a frame (0 if absent).
    pub fn pins(&self, key: SegKey) -> u32 {
        self.frames.get(&key).map_or(0, |f| f.pins)
    }

    /// Marks a resident frame dirty (it will not be evicted until
    /// collected by [`take_dirty`](Self::take_dirty)). Returns false if
    /// absent.
    pub fn mark_dirty(&mut self, key: SegKey) -> bool {
        match self.frames.get_mut(&key) {
            Some(f) => {
                f.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Collects and clears all dirty marks — the write-back hook. The
    /// caller persists the returned chunks; only then may they be
    /// evicted again.
    pub fn take_dirty(&mut self) -> Vec<(SegKey, Arc<T>)> {
        let mut out: Vec<(SegKey, Arc<T>)> = self
            .frames
            .iter_mut()
            .filter(|(_, f)| f.dirty)
            .map(|(k, f)| {
                f.dirty = false;
                (*k, Arc::clone(&f.value))
            })
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Drops **everything** — frames, policy state, pins — modelling a
    /// process restart for honest cold runs. Counters survive (they are
    /// the experiment's record). Returns the number of frames dropped.
    pub fn drop_all(&mut self) -> usize {
        let n = self.frames.len();
        self.frames.clear();
        self.ring.clear();
        self.a1.clear();
        self.am.clear();
        self.resident_bytes = 0;
        n
    }

    /// Evicts until within budget; true if the budget was reached.
    /// `exclude` protects the chunk whose admission caused the pressure.
    fn shrink_to_budget(&mut self, exclude: Option<SegKey>) -> bool {
        while self.resident_bytes > self.capacity_bytes {
            match self.pick_victim(exclude) {
                Some(victim) => self.evict_frame(victim),
                None => return false,
            }
        }
        true
    }

    fn evictable(&self, key: SegKey, exclude: Option<SegKey>) -> bool {
        exclude != Some(key)
            && self
                .frames
                .get(&key)
                .is_some_and(|f| f.pins == 0 && !f.dirty)
    }

    fn pick_victim(&mut self, exclude: Option<SegKey>) -> Option<SegKey> {
        match self.evict {
            Evict::Lru => self
                .frames
                .iter()
                .filter(|(k, f)| exclude != Some(**k) && f.pins == 0 && !f.dirty)
                .min_by_key(|(k, f)| (f.stamp, **k))
                .map(|(k, _)| *k),
            Evict::Clock => {
                // Two full sweeps: the first may only clear reference
                // bits; a frame seen twice unreferenced is the victim.
                for _ in 0..self.ring.len() * 2 {
                    let key = *self.ring.front()?;
                    if !self.evictable(key, exclude) {
                        self.ring.rotate_left(1);
                        continue;
                    }
                    let frame = self.frames.get_mut(&key).expect("ring tracks frames");
                    if frame.referenced {
                        frame.referenced = false;
                        self.ring.rotate_left(1);
                    } else {
                        return Some(key);
                    }
                }
                None
            }
            Evict::TwoQ => {
                // Probationary pages first, then the protected LRU.
                self.a1
                    .iter()
                    .copied()
                    .find(|&k| self.evictable(k, exclude))
                    .or_else(|| {
                        self.am
                            .iter()
                            .copied()
                            .find(|&k| self.evictable(k, exclude))
                    })
            }
        }
    }

    fn evict_frame(&mut self, key: SegKey) {
        if let Some(f) = self.frames.remove(&key) {
            debug_assert_eq!(f.pins, 0, "must not evict a pinned frame");
            debug_assert!(!f.dirty, "must not evict a dirty frame");
            self.resident_bytes -= f.bytes;
            self.counters.evictions += 1;
        }
        self.ring.retain(|k| *k != key);
        self.a1.retain(|k| *k != key);
        self.am.retain(|k| *k != key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(v: i64, bytes: u64) -> impl FnOnce() -> Result<(i64, u64), ()> {
        move || Ok((v, bytes))
    }

    fn key(i: u32) -> SegKey {
        (0, 0, i)
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut p: BufferPool<i64> = BufferPool::new(1000, Evict::Lru);
        assert_eq!(*p.get_or_load(key(1), load(10, 100)).unwrap(), 10);
        assert_eq!(*p.get_or_load(key(1), load(99, 100)).unwrap(), 10, "hit");
        let c = p.counters();
        assert_eq!(c.logical_reads, 2);
        assert_eq!(c.physical_reads, 1);
        assert_eq!(c.hits(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_oldest_unpinned() {
        let mut p: BufferPool<i64> = BufferPool::new(250, Evict::Lru);
        for i in 0..3 {
            p.get_or_load(key(i), load(i64::from(i), 100)).unwrap();
        }
        // Budget 250, resident 300: key(0) is oldest -> out.
        assert!(!p.contains(key(0)));
        assert!(p.contains(key(1)) && p.contains(key(2)));
        assert_eq!(p.counters().evictions, 1);
        // Touch key(1), insert key(3): key(2) is now oldest.
        p.get_or_load(key(1), load(-1, 100)).unwrap();
        p.get_or_load(key(3), load(3, 100)).unwrap();
        assert!(p.contains(key(1)) && !p.contains(key(2)));
    }

    #[test]
    fn pinned_frames_survive_and_overcommit_is_counted() {
        let mut p: BufferPool<i64> = BufferPool::new(250, Evict::Lru);
        p.get_or_load(key(0), load(0, 100)).unwrap();
        assert!(p.pin(key(0)));
        p.get_or_load(key(1), load(1, 100)).unwrap();
        assert!(p.pin(key(1)));
        // Both pinned, third load must overcommit, not fail or evict.
        p.get_or_load(key(2), load(2, 100)).unwrap();
        assert!(p.contains(key(0)) && p.contains(key(1)));
        assert_eq!(p.counters().overcommits, 1);
        assert!(p.resident_bytes() > p.capacity_bytes());
        // Unpin: the next pressure evicts normally again.
        p.unpin(key(0));
        p.unpin(key(1));
        p.get_or_load(key(3), load(3, 100)).unwrap();
        assert!(p.resident_bytes() <= p.capacity_bytes());
    }

    #[test]
    fn dirty_frames_are_not_evicted_until_taken() {
        let mut p: BufferPool<i64> = BufferPool::new(150, Evict::Lru);
        p.get_or_load(key(0), load(7, 100)).unwrap();
        assert!(p.mark_dirty(key(0)));
        p.get_or_load(key(1), load(8, 100)).unwrap();
        assert!(p.contains(key(0)), "dirty frame must survive pressure");
        let dirty = p.take_dirty();
        assert_eq!(dirty.len(), 1);
        assert_eq!(*dirty[0].1, 7);
        p.get_or_load(key(2), load(9, 100)).unwrap();
        assert!(
            p.resident_bytes() <= p.capacity_bytes(),
            "after write-back the frame is evictable"
        );
        assert!(p.take_dirty().is_empty(), "marks are cleared once taken");
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut p: BufferPool<i64> = BufferPool::new(300, Evict::Clock);
        for i in 0..3 {
            p.get_or_load(key(i), load(i64::from(i), 100)).unwrap();
        }
        // Reference key(0); pressure should pick key(1) (first
        // unreferenced in ring order after 0's second chance).
        p.get_or_load(key(0), load(-1, 100)).unwrap();
        p.get_or_load(key(3), load(3, 100)).unwrap();
        assert!(p.contains(key(0)), "referenced frame got its second chance");
        assert!(!p.contains(key(1)));
    }

    #[test]
    fn twoq_protects_reused_pages_from_scans() {
        let mut p: BufferPool<i64> = BufferPool::new(300, Evict::TwoQ);
        // key(0) is accessed twice -> promoted to Am.
        p.get_or_load(key(0), load(0, 100)).unwrap();
        p.get_or_load(key(0), load(0, 100)).unwrap();
        // A long one-touch scan pushes through A1.
        for i in 1..10 {
            p.get_or_load(key(i), load(i64::from(i), 100)).unwrap();
        }
        assert!(
            p.contains(key(0)),
            "a hot page must survive a one-touch scan under 2Q"
        );
        // Under LRU the same access pattern flushes the hot page.
        let mut lru: BufferPool<i64> = BufferPool::new(300, Evict::Lru);
        lru.get_or_load(key(0), load(0, 100)).unwrap();
        lru.get_or_load(key(0), load(0, 100)).unwrap();
        for i in 1..10 {
            lru.get_or_load(key(i), load(i64::from(i), 100)).unwrap();
        }
        assert!(!lru.contains(key(0)));
    }

    #[test]
    fn drop_all_models_a_restart() {
        let mut p: BufferPool<i64> = BufferPool::new(1000, Evict::TwoQ);
        for i in 0..4 {
            p.get_or_load(key(i), load(i64::from(i), 100)).unwrap();
        }
        let before = p.counters();
        assert_eq!(p.drop_all(), 4);
        assert_eq!(p.resident_bytes(), 0);
        assert_eq!(p.frame_count(), 0);
        assert_eq!(p.counters(), before, "counters survive the restart");
        // Everything is a miss again.
        p.get_or_load(key(0), load(0, 100)).unwrap();
        assert_eq!(p.counters().physical_reads, before.physical_reads + 1);
    }

    #[test]
    fn load_errors_do_not_poison_the_pool() {
        let mut p: BufferPool<i64> = BufferPool::new(1000, Evict::Lru);
        let r = p.get_or_load(key(0), || Err::<(i64, u64), &str>("io"));
        assert_eq!(r.unwrap_err(), "io");
        assert!(!p.contains(key(0)));
        // A later successful load works.
        assert_eq!(*p.get_or_load(key(0), load(5, 10)).unwrap(), 5);
        assert_eq!(p.counters().physical_reads, 2);
    }
}
