//! On-disk columnar segments: one file per column chunk.
//!
//! ## Format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"PSEG"
//! 4       2     format version (LE u16, = 1)
//! 6       1     type tag   (0 = I64, 1 = F64, 2 = Str, 3 = Bool)
//! 7       1     encoding   (0 = Plain, 1 = RLE, 2 = Dict)
//! 8       8     row count  (LE u64)
//! 16      8     payload length in bytes (LE u64)
//! 24      8     FNV-1a 64 checksum of the payload (LE u64)
//! 32      ...   payload
//! ```
//!
//! The encoding is chosen **per column chunk** by exact encoded-size
//! comparison (deterministic — no heuristics), so run-heavy columns get
//! RLE, low-cardinality integer columns get a dictionary, and
//! high-entropy data stays Plain. Floats are persisted as
//! [`f64::to_bits`] and compared the same way, so NaN payloads and the
//! sign of zero survive a round trip bit-identically.
//!
//! Reads go through `pread(2)` ([`std::os::unix::fs::FileExt::read_exact_at`]):
//! the header first, then exactly `payload_len` bytes at offset 32. A
//! short read or checksum mismatch is [`StoreError::Corrupt`] — a torn
//! segment is *detected*, never silently half-decoded.

use crate::{fnv1a64, StoreError};
use perfeval_fault::FaultRegistry;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Segment header size in bytes.
pub const HEADER_LEN: usize = 32;
/// Magic bytes opening every segment file.
pub const MAGIC: [u8; 4] = *b"PSEG";
/// On-disk format version this build writes and reads.
pub const FORMAT_VERSION: u16 = 1;

/// Fault site fired once per segment written; a `FailIo` arm produces a
/// **torn write**: the file is truncated mid-payload while its header
/// claims (and checksums) the full payload.
pub const SITE_WRITE: &str = "store.write";
/// Fault site fired once per segment read; a `FailIo` arm injects a
/// read failure before any bytes are returned.
pub const SITE_READ: &str = "store.read";

/// The decoded payload of one column chunk, independent of any engine's
/// column representation (minidb converts to/from its `Column`).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers.
    I64(Vec<i64>),
    /// 64-bit floats; persisted and compared as [`f64::to_bits`].
    F64(Vec<f64>),
    /// Dictionary-encoded strings: `codes[i]` indexes `dict`.
    Str {
        /// Distinct values in first-occurrence order.
        dict: Vec<String>,
        /// Per-row dictionary codes.
        codes: Vec<u32>,
    },
    /// Booleans.
    Bool(Vec<bool>),
}

impl ColumnData {
    /// The type tag stored in the header.
    pub fn type_tag(&self) -> TypeTag {
        match self {
            ColumnData::I64(_) => TypeTag::I64,
            ColumnData::F64(_) => TypeTag::F64,
            ColumnData::Str { .. } => TypeTag::Str,
            ColumnData::Bool(_) => TypeTag::Bool,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            ColumnData::I64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// Approximate decoded in-memory footprint, used for buffer-pool
    /// budget accounting (the pool caches *decoded* chunks).
    pub fn heap_bytes(&self) -> u64 {
        match self {
            ColumnData::I64(v) => 8 * v.len() as u64,
            ColumnData::F64(v) => 8 * v.len() as u64,
            ColumnData::Str { dict, codes } => {
                let strings: u64 = dict.iter().map(|s| s.len() as u64 + 24).sum();
                strings + 4 * codes.len() as u64
            }
            ColumnData::Bool(v) => v.len() as u64,
        }
    }

    /// Bitwise equality: floats compare by [`f64::to_bits`], everything
    /// else by value. This is the round-trip contract.
    pub fn bit_eq(&self, other: &ColumnData) -> bool {
        match (self, other) {
            (ColumnData::F64(a), ColumnData::F64(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (a, b) => a == b,
        }
    }
}

/// Column type tag as stored in the header and in manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeTag {
    /// 64-bit integer column.
    I64,
    /// 64-bit float column.
    F64,
    /// Dictionary-encoded string column.
    Str,
    /// Boolean column.
    Bool,
}

impl TypeTag {
    /// Header byte for this tag.
    pub fn as_u8(self) -> u8 {
        match self {
            TypeTag::I64 => 0,
            TypeTag::F64 => 1,
            TypeTag::Str => 2,
            TypeTag::Bool => 3,
        }
    }

    /// Parses a header byte.
    pub fn from_u8(b: u8) -> Result<Self, StoreError> {
        match b {
            0 => Ok(TypeTag::I64),
            1 => Ok(TypeTag::F64),
            2 => Ok(TypeTag::Str),
            3 => Ok(TypeTag::Bool),
            other => Err(StoreError::Corrupt(format!("unknown type tag {other}"))),
        }
    }

    /// Manifest spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            TypeTag::I64 => "i64",
            TypeTag::F64 => "f64",
            TypeTag::Str => "str",
            TypeTag::Bool => "bool",
        }
    }

    /// Parses the manifest spelling.
    pub fn parse(s: &str) -> Result<Self, StoreError> {
        match s {
            "i64" => Ok(TypeTag::I64),
            "f64" => Ok(TypeTag::F64),
            "str" => Ok(TypeTag::Str),
            "bool" => Ok(TypeTag::Bool),
            other => Err(StoreError::Corrupt(format!("unknown type tag {other:?}"))),
        }
    }
}

/// Payload encoding, chosen per column chunk by exact size comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Values laid out verbatim (LE fixed width).
    Plain,
    /// Run-length encoding: `(value, run_length)` pairs.
    Rle,
    /// Dictionary encoding: distinct-value table + per-row `u32` codes
    /// (integer columns; string columns are inherently dictionary-coded
    /// and use this byte for their *code* stream's encoding).
    Dict,
}

impl Encoding {
    fn as_u8(self) -> u8 {
        match self {
            Encoding::Plain => 0,
            Encoding::Rle => 1,
            Encoding::Dict => 2,
        }
    }

    fn from_u8(b: u8) -> Result<Self, StoreError> {
        match b {
            0 => Ok(Encoding::Plain),
            1 => Ok(Encoding::Rle),
            2 => Ok(Encoding::Dict),
            other => Err(StoreError::Corrupt(format!("unknown encoding {other}"))),
        }
    }
}

/// What a write produced: enough for the manifest and for accounting.
#[derive(Debug, Clone, Copy)]
pub struct SegmentInfo {
    /// Total file size, header included.
    pub file_bytes: u64,
    /// Encoding the size comparison picked.
    pub encoding: Encoding,
    /// Rows in the chunk.
    pub rows: u64,
}

// ---------------------------------------------------------------------
// little-endian helpers over a growing Vec / a cursor
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "payload truncated: wanted {n} bytes at offset {}",
                    self.pos
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), StoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(StoreError::Corrupt(format!(
                "{} trailing byte(s) after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------
// encoding
// ---------------------------------------------------------------------

/// `(value, run_length)` runs of an equality-comparable stream.
fn runs_of<T: PartialEq + Copy>(vals: &[T]) -> Vec<(T, u64)> {
    let mut runs: Vec<(T, u64)> = Vec::new();
    for &v in vals {
        match runs.last_mut() {
            Some((last, n)) if *last == v => *n += 1,
            _ => runs.push((v, 1)),
        }
    }
    runs
}

/// Distinct values in first-occurrence order plus per-row codes, or
/// `None` once the dictionary would stop paying for itself (> u32 codes
/// worth of distincts is impossible here, but we also bail past 2^16
/// entries: the size comparison would reject it anyway).
fn dict_of(vals: &[i64]) -> Option<(Vec<i64>, Vec<u32>)> {
    let mut dict: Vec<i64> = Vec::new();
    let mut index: std::collections::HashMap<i64, u32> = std::collections::HashMap::new();
    let mut codes = Vec::with_capacity(vals.len());
    for &v in vals {
        let code = *index.entry(v).or_insert_with(|| {
            dict.push(v);
            (dict.len() - 1) as u32
        });
        codes.push(code);
        if dict.len() > (1 << 16) {
            return None;
        }
    }
    Some((dict, codes))
}

fn encode_u64s(vals: &[u64]) -> (Encoding, Vec<u8>) {
    let runs = runs_of(vals);
    let plain_bytes = 8 * vals.len();
    let rle_bytes = 8 + 16 * runs.len();
    if rle_bytes < plain_bytes {
        let mut out = Vec::with_capacity(rle_bytes);
        put_u64(&mut out, runs.len() as u64);
        for (v, n) in runs {
            put_u64(&mut out, v);
            put_u64(&mut out, n);
        }
        (Encoding::Rle, out)
    } else {
        let mut out = Vec::with_capacity(plain_bytes);
        for &v in vals {
            put_u64(&mut out, v);
        }
        (Encoding::Plain, out)
    }
}

fn encode_i64s(vals: &[i64]) -> (Encoding, Vec<u8>) {
    let runs = runs_of(vals);
    let plain_bytes = 8 * vals.len();
    let rle_bytes = 8 + 16 * runs.len();
    let dict = dict_of(vals);
    let dict_bytes = dict
        .as_ref()
        .map(|(d, c)| 4 + 8 * d.len() + 4 * c.len())
        .unwrap_or(usize::MAX);
    let best = plain_bytes.min(rle_bytes).min(dict_bytes);
    if best == rle_bytes && rle_bytes < plain_bytes {
        let mut out = Vec::with_capacity(rle_bytes);
        put_u64(&mut out, runs.len() as u64);
        for (v, n) in runs {
            out.extend_from_slice(&v.to_le_bytes());
            put_u64(&mut out, n);
        }
        (Encoding::Rle, out)
    } else if best == dict_bytes && dict_bytes < plain_bytes {
        let (d, c) = dict.expect("dict_bytes finite implies Some");
        let mut out = Vec::with_capacity(dict_bytes);
        put_u32(&mut out, d.len() as u32);
        for v in d {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for code in c {
            put_u32(&mut out, code);
        }
        (Encoding::Dict, out)
    } else {
        let mut out = Vec::with_capacity(plain_bytes);
        for &v in vals {
            out.extend_from_slice(&v.to_le_bytes());
        }
        (Encoding::Plain, out)
    }
}

fn encode_codes(codes: &[u32]) -> (Encoding, Vec<u8>) {
    let runs = runs_of(codes);
    let plain_bytes = 4 * codes.len();
    let rle_bytes = 8 + 12 * runs.len();
    if rle_bytes < plain_bytes {
        let mut out = Vec::with_capacity(rle_bytes);
        put_u64(&mut out, runs.len() as u64);
        for (v, n) in runs {
            put_u32(&mut out, v);
            put_u64(&mut out, n);
        }
        (Encoding::Rle, out)
    } else {
        let mut out = Vec::with_capacity(plain_bytes);
        for &v in codes {
            put_u32(&mut out, v);
        }
        (Encoding::Plain, out)
    }
}

fn encode_bools(vals: &[bool]) -> (Encoding, Vec<u8>) {
    let runs = runs_of(vals);
    let plain_bytes = vals.len();
    let rle_bytes = 8 + 9 * runs.len();
    if rle_bytes < plain_bytes {
        let mut out = Vec::with_capacity(rle_bytes);
        put_u64(&mut out, runs.len() as u64);
        for (v, n) in runs {
            out.push(u8::from(v));
            put_u64(&mut out, n);
        }
        (Encoding::Rle, out)
    } else {
        (Encoding::Plain, vals.iter().map(|&b| u8::from(b)).collect())
    }
}

fn encode_payload(data: &ColumnData) -> (Encoding, Vec<u8>) {
    match data {
        ColumnData::I64(v) => encode_i64s(v),
        ColumnData::F64(v) => {
            let bits: Vec<u64> = v.iter().map(|f| f.to_bits()).collect();
            encode_u64s(&bits)
        }
        ColumnData::Str { dict, codes } => {
            // Dictionary block first (length-prefixed UTF-8), then the
            // code stream in whichever encoding is smaller; the header's
            // encoding byte describes the code stream.
            let mut out = Vec::new();
            put_u32(&mut out, dict.len() as u32);
            for s in dict {
                put_u32(&mut out, s.len() as u32);
                out.extend_from_slice(s.as_bytes());
            }
            let (enc, code_bytes) = encode_codes(codes);
            out.extend_from_slice(&code_bytes);
            (enc, out)
        }
        ColumnData::Bool(v) => encode_bools(v),
    }
}

/// Encodes a full segment (header + payload) into memory.
pub fn encode_segment(data: &ColumnData) -> Vec<u8> {
    encode_segment_with(data).1
}

fn encode_segment_with(data: &ColumnData) -> (Encoding, Vec<u8>) {
    let (encoding, payload) = encode_payload(data);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(data.type_tag().as_u8());
    out.push(encoding.as_u8());
    put_u64(&mut out, data.rows() as u64);
    put_u64(&mut out, payload.len() as u64);
    put_u64(&mut out, fnv1a64(&payload));
    out.extend_from_slice(&payload);
    (encoding, out)
}

// ---------------------------------------------------------------------
// decoding
// ---------------------------------------------------------------------

fn decode_u64s(cur: &mut Cursor, encoding: Encoding, rows: usize) -> Result<Vec<u64>, StoreError> {
    match encoding {
        Encoding::Plain => (0..rows).map(|_| cur.u64()).collect(),
        Encoding::Rle => {
            let nruns = cur.u64()? as usize;
            let mut out = Vec::with_capacity(rows);
            for _ in 0..nruns {
                let v = cur.u64()?;
                let n = cur.u64()? as usize;
                if out.len() + n > rows {
                    return Err(StoreError::Corrupt("RLE runs exceed row count".into()));
                }
                out.extend(std::iter::repeat_n(v, n));
            }
            if out.len() != rows {
                return Err(StoreError::Corrupt(
                    "RLE runs fall short of row count".into(),
                ));
            }
            Ok(out)
        }
        Encoding::Dict => Err(StoreError::Corrupt("Dict encoding invalid here".into())),
    }
}

fn decode_i64s(cur: &mut Cursor, encoding: Encoding, rows: usize) -> Result<Vec<i64>, StoreError> {
    match encoding {
        Encoding::Plain => (0..rows).map(|_| cur.i64()).collect(),
        Encoding::Rle => {
            let nruns = cur.u64()? as usize;
            let mut out = Vec::with_capacity(rows);
            for _ in 0..nruns {
                let v = cur.i64()?;
                let n = cur.u64()? as usize;
                if out.len() + n > rows {
                    return Err(StoreError::Corrupt("RLE runs exceed row count".into()));
                }
                out.extend(std::iter::repeat_n(v, n));
            }
            if out.len() != rows {
                return Err(StoreError::Corrupt(
                    "RLE runs fall short of row count".into(),
                ));
            }
            Ok(out)
        }
        Encoding::Dict => {
            let dlen = cur.u32()? as usize;
            let mut dict = Vec::with_capacity(dlen);
            for _ in 0..dlen {
                dict.push(cur.i64()?);
            }
            let mut out = Vec::with_capacity(rows);
            for _ in 0..rows {
                let code = cur.u32()? as usize;
                out.push(*dict.get(code).ok_or_else(|| {
                    StoreError::Corrupt(format!("dict code {code} out of range {dlen}"))
                })?);
            }
            Ok(out)
        }
    }
}

fn decode_codes(cur: &mut Cursor, encoding: Encoding, rows: usize) -> Result<Vec<u32>, StoreError> {
    match encoding {
        Encoding::Plain => (0..rows).map(|_| cur.u32()).collect(),
        Encoding::Rle => {
            let nruns = cur.u64()? as usize;
            let mut out = Vec::with_capacity(rows);
            for _ in 0..nruns {
                let v = cur.u32()?;
                let n = cur.u64()? as usize;
                if out.len() + n > rows {
                    return Err(StoreError::Corrupt("RLE runs exceed row count".into()));
                }
                out.extend(std::iter::repeat_n(v, n));
            }
            if out.len() != rows {
                return Err(StoreError::Corrupt(
                    "RLE runs fall short of row count".into(),
                ));
            }
            Ok(out)
        }
        Encoding::Dict => Err(StoreError::Corrupt(
            "Dict encoding invalid for codes".into(),
        )),
    }
}

/// Decodes a full in-memory segment (as produced by [`encode_segment`]),
/// verifying magic, version, length, and checksum.
pub fn decode_segment(bytes: &[u8]) -> Result<ColumnData, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Corrupt(format!(
            "segment shorter than header: {} bytes",
            bytes.len()
        )));
    }
    let (header, payload) = bytes.split_at(HEADER_LEN);
    if header[0..4] != MAGIC {
        return Err(StoreError::Corrupt("bad magic".into()));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported format version {version}"
        )));
    }
    let tag = TypeTag::from_u8(header[6])?;
    let encoding = Encoding::from_u8(header[7])?;
    let rows = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
    let payload_len = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(header[24..32].try_into().unwrap());
    if payload.len() != payload_len {
        return Err(StoreError::Corrupt(format!(
            "payload length mismatch: header says {payload_len}, file has {}",
            payload.len()
        )));
    }
    if fnv1a64(payload) != checksum {
        return Err(StoreError::Corrupt("checksum mismatch".into()));
    }
    let mut cur = Cursor::new(payload);
    let data = match tag {
        TypeTag::I64 => ColumnData::I64(decode_i64s(&mut cur, encoding, rows)?),
        TypeTag::F64 => ColumnData::F64(
            decode_u64s(&mut cur, encoding, rows)?
                .into_iter()
                .map(f64::from_bits)
                .collect(),
        ),
        TypeTag::Str => {
            let dlen = cur.u32()? as usize;
            let mut dict = Vec::with_capacity(dlen);
            for _ in 0..dlen {
                let len = cur.u32()? as usize;
                let raw = cur.take(len)?;
                dict.push(
                    String::from_utf8(raw.to_vec())
                        .map_err(|_| StoreError::Corrupt("dictionary entry is not UTF-8".into()))?,
                );
            }
            let codes = decode_codes(&mut cur, encoding, rows)?;
            if let Some(&bad) = codes.iter().find(|&&c| c as usize >= dlen) {
                return Err(StoreError::Corrupt(format!(
                    "string code {bad} out of range {dlen}"
                )));
            }
            ColumnData::Str { dict, codes }
        }
        TypeTag::Bool => match encoding {
            Encoding::Plain => {
                let raw = cur.take(rows)?;
                ColumnData::Bool(raw.iter().map(|&b| b != 0).collect())
            }
            Encoding::Rle => {
                let nruns = cur.u64()? as usize;
                let mut out = Vec::with_capacity(rows);
                for _ in 0..nruns {
                    let v = cur.take(1)?[0] != 0;
                    let n = cur.u64()? as usize;
                    if out.len() + n > rows {
                        return Err(StoreError::Corrupt("RLE runs exceed row count".into()));
                    }
                    out.extend(std::iter::repeat_n(v, n));
                }
                if out.len() != rows {
                    return Err(StoreError::Corrupt(
                        "RLE runs fall short of row count".into(),
                    ));
                }
                ColumnData::Bool(out)
            }
            Encoding::Dict => {
                return Err(StoreError::Corrupt("Dict encoding invalid for bool".into()))
            }
        },
    };
    cur.done()?;
    Ok(data)
}

// ---------------------------------------------------------------------
// file I/O
// ---------------------------------------------------------------------

/// Writes a segment file and fsyncs it.
///
/// Fires the [`SITE_WRITE`] fault site with `key` once per call; a
/// `FailIo` arm produces a **torn write** — the file holds the header
/// (whose checksum covers the *full* payload) plus roughly half the
/// payload, then the call fails. Reading such a file reports
/// [`StoreError::Corrupt`], never garbage data.
pub fn write_segment(
    path: &Path,
    data: &ColumnData,
    faults: Option<&FaultRegistry>,
    key: u64,
) -> Result<SegmentInfo, StoreError> {
    let (encoding, bytes) = encode_segment_with(data);
    let torn = faults.is_some_and(|f| f.io_fails(SITE_WRITE, key));
    let mut file = File::create(path)?;
    if torn {
        // Keep the header plus half the payload: long enough to look
        // like a segment, short enough that the checksum can't pass.
        let cut = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        file.write_all(&bytes[..cut])?;
        file.sync_all()?;
        return Err(StoreError::Io(format!(
            "injected torn write: {} truncated to {cut}/{} bytes",
            path.display(),
            bytes.len()
        )));
    }
    file.write_all(&bytes)?;
    file.sync_all()?;
    Ok(SegmentInfo {
        file_bytes: bytes.len() as u64,
        encoding,
        rows: data.rows() as u64,
    })
}

#[cfg(unix)]
fn pread_exact(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn pread_exact(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

/// Reads and decodes a segment file via `pread(2)`.
///
/// Fires the [`SITE_READ`] fault site with `key` once per call; a
/// `FailIo` arm injects a read failure. A genuinely short file (e.g. a
/// torn write) surfaces as [`StoreError::Corrupt`].
pub fn read_segment(
    path: &Path,
    faults: Option<&FaultRegistry>,
    key: u64,
) -> Result<ColumnData, StoreError> {
    if faults.is_some_and(|f| f.io_fails(SITE_READ, key)) {
        return Err(StoreError::Io(format!(
            "injected read failure: {}",
            path.display()
        )));
    }
    let file = File::open(path)?;
    let mut header = [0u8; HEADER_LEN];
    pread_exact(&file, &mut header, 0).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Corrupt(format!("{}: truncated header", path.display()))
        } else {
            StoreError::Io(e.to_string())
        }
    })?;
    let payload_len = u64::from_le_bytes(header[16..24].try_into().unwrap());
    // Sanity-bound the allocation before trusting the header: a segment
    // can't claim more payload than the file holds.
    let file_len = file.metadata()?.len();
    if HEADER_LEN as u64 + payload_len > file_len {
        return Err(StoreError::Corrupt(format!(
            "{}: truncated payload ({} of {} byte(s) present)",
            path.display(),
            file_len.saturating_sub(HEADER_LEN as u64),
            payload_len
        )));
    }
    let mut bytes = vec![0u8; HEADER_LEN + payload_len as usize];
    bytes[..HEADER_LEN].copy_from_slice(&header);
    pread_exact(&file, &mut bytes[HEADER_LEN..], HEADER_LEN as u64).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Corrupt(format!("{}: short payload read", path.display()))
        } else {
            StoreError::Io(e.to_string())
        }
    })?;
    decode_segment(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfeval_fault::{FaultAction, Trigger};

    fn roundtrip(data: ColumnData) {
        let bytes = encode_segment(&data);
        let back = decode_segment(&bytes).expect("decode");
        assert!(data.bit_eq(&back), "round trip changed {data:?}");
    }

    #[test]
    fn int_roundtrips_across_encodings() {
        roundtrip(ColumnData::I64(vec![]));
        roundtrip(ColumnData::I64((0..1000).collect())); // RLE-hostile
        roundtrip(ColumnData::I64(vec![7; 1000])); // one run
        roundtrip(ColumnData::I64(
            (0..1000).map(|i| i64::from(i % 3 == 0)).collect(),
        )); // dict/RLE contest
        roundtrip(ColumnData::I64(vec![i64::MIN, i64::MAX, -1, 0, 1]));
    }

    #[test]
    fn chosen_encoding_matches_data_shape() {
        let runs = encode_segment(&ColumnData::I64(vec![42; 4096]));
        assert_eq!(runs[7], 1, "constant column should pick RLE");
        let lowcard = encode_segment(&ColumnData::I64(
            (0..4096).map(|i| i64::from(i % 7) * 1000).collect(),
        ));
        assert_eq!(lowcard[7], 2, "low-cardinality column should pick Dict");
        let unique = encode_segment(&ColumnData::I64((0..4096).map(|i| i * 17).collect()));
        assert_eq!(unique[7], 0, "high-entropy column should stay Plain");
    }

    #[test]
    fn float_bits_survive() {
        roundtrip(ColumnData::F64(vec![
            0.0,
            -0.0,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            1.0 / 3.0,
        ]));
        // -0.0 vs 0.0 must NOT be conflated by RLE.
        let data = ColumnData::F64(vec![0.0, -0.0, 0.0, -0.0]);
        let back = decode_segment(&encode_segment(&data)).unwrap();
        if let ColumnData::F64(v) = back {
            assert_eq!(v[0].to_bits(), 0.0f64.to_bits());
            assert_eq!(v[1].to_bits(), (-0.0f64).to_bits());
        } else {
            panic!("type changed");
        }
    }

    #[test]
    fn strings_and_bools_roundtrip() {
        roundtrip(ColumnData::Str {
            dict: vec!["".into(), "a".into(), "naïve — ünïcode".into()],
            codes: vec![0, 1, 2, 2, 1, 0, 0],
        });
        roundtrip(ColumnData::Str {
            dict: vec![],
            codes: vec![],
        });
        roundtrip(ColumnData::Bool(vec![true; 500]));
        roundtrip(ColumnData::Bool((0..500).map(|i| i % 2 == 0).collect()));
        roundtrip(ColumnData::Bool(vec![]));
    }

    #[test]
    fn corruption_is_detected() {
        let good = encode_segment(&ColumnData::I64((0..100).collect()));
        // Flip one payload byte: checksum catches it.
        let mut bad = good.clone();
        bad[HEADER_LEN + 5] ^= 0x40;
        assert!(matches!(
            decode_segment(&bad),
            Err(StoreError::Corrupt(m)) if m.contains("checksum")
        ));
        // Truncate: length catches it.
        assert!(matches!(
            decode_segment(&good[..good.len() - 3]),
            Err(StoreError::Corrupt(_))
        ));
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode_segment(&bad), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn file_roundtrip_and_torn_write() {
        let dir = std::env::temp_dir().join(format!("pseg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c0.seg");
        let data = ColumnData::I64((0..10_000).map(|i| i % 13).collect());
        let info = write_segment(&path, &data, None, 0).unwrap();
        assert!(info.file_bytes > 0);
        let back = read_segment(&path, None, 0).unwrap();
        assert!(data.bit_eq(&back));

        // Torn write: header claims the full payload, file holds half.
        let faults =
            FaultRegistry::new(1).armed_always(SITE_WRITE, Trigger::Always, FaultAction::FailIo);
        let torn_path = dir.join("torn.seg");
        let err = write_segment(&torn_path, &data, Some(&faults), 0).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
        assert!(matches!(
            read_segment(&torn_path, None, 0),
            Err(StoreError::Corrupt(_))
        ));

        // Injected read failure.
        let faults =
            FaultRegistry::new(2).armed_always(SITE_READ, Trigger::Always, FaultAction::FailIo);
        assert!(matches!(
            read_segment(&path, Some(&faults), 0),
            Err(StoreError::Io(_))
        ));
        // And the same file still reads fine without the fault.
        assert!(read_segment(&path, None, 0).unwrap().bit_eq(&data));
        std::fs::remove_dir_all(&dir).ok();
    }
}
