//! Manifests: the commit protocol that makes persistence crash-safe.
//!
//! A persisted table is a directory:
//!
//! ```text
//! <root>/
//!   CATALOG.manifest            # table list; committed temp-then-rename
//!   <table>/
//!     TABLE.manifest            # schema + chunk map; committed temp-then-rename
//!     g<G>_c<C>_k<K>.seg        # generation G, column C, chunk K
//!   quarantine/                 # unreferenced/torn files, moved — never deleted
//! ```
//!
//! Each persist writes a **fresh generation** of segment files (the
//! generation number is in the file name, so live data is never
//! overwritten in place), fsyncs them, then commits by renaming
//! `TABLE.manifest.tmp` → `TABLE.manifest` — the single atomic step.
//! A crash anywhere before the rename leaves the previous manifest
//! pointing at the previous, complete generation; reopening yields the
//! pre-write state bit-identically. Leftover files from the failed
//! generation are unreferenced, and [`quarantine_unreferenced`] moves
//! them aside with a **counted** report — corruption is quarantined,
//! never silently deleted and never silently served.
//!
//! Manifests are line-oriented ASCII with a trailing FNV-1a checksum
//! line, so a torn manifest write is also detected rather than parsed.

use crate::segment::TypeTag;
use crate::{fnv1a64, StoreError};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of a table manifest inside its table directory.
pub const TABLE_MANIFEST: &str = "TABLE.manifest";
/// File name of the catalog manifest inside the root directory.
pub const CATALOG_MANIFEST: &str = "CATALOG.manifest";
/// Directory (under the root) where unreferenced files are moved.
pub const QUARANTINE_DIR: &str = "quarantine";

/// One column chunk as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRef {
    /// Segment file name, relative to the table directory.
    pub file: String,
    /// Rows in the chunk.
    pub rows: u64,
    /// File size in bytes (header included).
    pub bytes: u64,
}

/// One column: its type and ordered chunk list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnManifest {
    /// Column name.
    pub name: String,
    /// Column type.
    pub tag: TypeTag,
    /// Chunks in row order; concatenated they are the column.
    pub chunks: Vec<ChunkRef>,
}

/// The committed description of one persisted table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableManifest {
    /// Table name.
    pub name: String,
    /// Total row count.
    pub rows: u64,
    /// Rows per chunk used at persist time.
    pub chunk_rows: u64,
    /// Generation this manifest commits (monotonic per table).
    pub generation: u64,
    /// Columns in schema order.
    pub columns: Vec<ColumnManifest>,
}

impl TableManifest {
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("perfeval-store table v1\n");
        out.push_str(&format!("name {}\n", self.name));
        out.push_str(&format!("rows {}\n", self.rows));
        out.push_str(&format!("chunk_rows {}\n", self.chunk_rows));
        out.push_str(&format!("generation {}\n", self.generation));
        for c in &self.columns {
            out.push_str(&format!(
                "column {} {} chunks {}\n",
                c.tag.as_str(),
                c.chunks.len(),
                c.name
            ));
            for ch in &c.chunks {
                out.push_str(&format!("seg {} {} {}\n", ch.rows, ch.bytes, ch.file));
            }
        }
        out
    }

    fn parse(text: &str) -> Result<Self, StoreError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        if header != "perfeval-store table v1" {
            return Err(StoreError::Corrupt(format!(
                "bad table manifest header {header:?}"
            )));
        }
        let field = |line: Option<&str>, key: &str| -> Result<String, StoreError> {
            let line =
                line.ok_or_else(|| StoreError::Corrupt(format!("table manifest missing {key}")))?;
            line.strip_prefix(&format!("{key} "))
                .map(str::to_owned)
                .ok_or_else(|| StoreError::Corrupt(format!("expected {key}, got {line:?}")))
        };
        let num = |s: &str| -> Result<u64, StoreError> {
            s.parse()
                .map_err(|_| StoreError::Corrupt(format!("bad number {s:?} in table manifest")))
        };
        let name = field(lines.next(), "name")?;
        let rows = num(&field(lines.next(), "rows")?)?;
        let chunk_rows = num(&field(lines.next(), "chunk_rows")?)?;
        let generation = num(&field(lines.next(), "generation")?)?;
        let mut columns = Vec::new();
        for line in lines {
            if let Some(rest) = line.strip_prefix("column ") {
                let mut it = rest.splitn(4, ' ');
                let tag = TypeTag::parse(it.next().unwrap_or(""))?;
                let nchunks = num(it.next().unwrap_or(""))?;
                if it.next() != Some("chunks") {
                    return Err(StoreError::Corrupt(format!("bad column line {line:?}")));
                }
                let cname = it
                    .next()
                    .ok_or_else(|| StoreError::Corrupt(format!("bad column line {line:?}")))?;
                columns.push((
                    ColumnManifest {
                        name: cname.to_owned(),
                        tag,
                        chunks: Vec::new(),
                    },
                    nchunks,
                ));
            } else if let Some(rest) = line.strip_prefix("seg ") {
                let mut it = rest.splitn(3, ' ');
                let rows = num(it.next().unwrap_or(""))?;
                let bytes = num(it.next().unwrap_or(""))?;
                let file = it
                    .next()
                    .ok_or_else(|| StoreError::Corrupt(format!("bad seg line {line:?}")))?;
                let col = columns
                    .last_mut()
                    .ok_or_else(|| StoreError::Corrupt("seg line before any column line".into()))?;
                col.0.chunks.push(ChunkRef {
                    file: file.to_owned(),
                    rows,
                    bytes,
                });
            } else if !line.is_empty() {
                return Err(StoreError::Corrupt(format!(
                    "unexpected table manifest line {line:?}"
                )));
            }
        }
        let columns: Vec<ColumnManifest> = columns
            .into_iter()
            .map(|(c, n)| {
                if c.chunks.len() as u64 != n {
                    Err(StoreError::Corrupt(format!(
                        "column {} declares {n} chunk(s), lists {}",
                        c.name,
                        c.chunks.len()
                    )))
                } else {
                    Ok(c)
                }
            })
            .collect::<Result<_, _>>()?;
        Ok(TableManifest {
            name,
            rows,
            chunk_rows,
            generation,
            columns,
        })
    }

    /// Loads and verifies `dir/TABLE.manifest`; `Ok(None)` if absent.
    pub fn load(dir: &Path) -> Result<Option<Self>, StoreError> {
        match read_checked(&dir.join(TABLE_MANIFEST))? {
            None => Ok(None),
            Some(text) => Self::parse(&text).map(Some),
        }
    }

    /// Commits this manifest into `dir` temp-then-rename — the atomic
    /// step that makes a new generation the table's truth.
    pub fn commit(&self, dir: &Path) -> Result<(), StoreError> {
        write_committed(&dir.join(TABLE_MANIFEST), &self.render())
    }

    /// The segment file name for `(generation, column, chunk)`.
    pub fn seg_file(generation: u64, column: usize, chunk: usize) -> String {
        format!("g{generation}_c{column}_k{chunk}.seg")
    }
}

/// The committed list of tables in a persisted catalog.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CatalogManifest {
    /// Table names; each has a subdirectory of the root.
    pub tables: Vec<String>,
}

impl CatalogManifest {
    fn render(&self) -> String {
        let mut out = String::from("perfeval-store catalog v1\n");
        for t in &self.tables {
            out.push_str(&format!("table {t}\n"));
        }
        out
    }

    fn parse(text: &str) -> Result<Self, StoreError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        if header != "perfeval-store catalog v1" {
            return Err(StoreError::Corrupt(format!(
                "bad catalog manifest header {header:?}"
            )));
        }
        let mut tables = Vec::new();
        for line in lines {
            if let Some(name) = line.strip_prefix("table ") {
                tables.push(name.to_owned());
            } else if !line.is_empty() {
                return Err(StoreError::Corrupt(format!(
                    "unexpected catalog manifest line {line:?}"
                )));
            }
        }
        Ok(CatalogManifest { tables })
    }

    /// Loads and verifies `root/CATALOG.manifest`; `Ok(None)` if absent.
    pub fn load(root: &Path) -> Result<Option<Self>, StoreError> {
        match read_checked(&root.join(CATALOG_MANIFEST))? {
            None => Ok(None),
            Some(text) => Self::parse(&text).map(Some),
        }
    }

    /// Commits temp-then-rename.
    pub fn commit(&self, root: &Path) -> Result<(), StoreError> {
        write_committed(&root.join(CATALOG_MANIFEST), &self.render())
    }
}

/// Appends a checksum trailer, writes `<path>.tmp`, fsyncs, renames
/// over `path`, and fsyncs the directory so the rename is durable.
fn write_committed(path: &Path, body: &str) -> Result<(), StoreError> {
    let text = format!("{body}checksum {:016x}\n", fnv1a64(body.as_bytes()));
    let tmp = path.with_extension("manifest.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads a committed file and verifies its checksum trailer.
/// `Ok(None)` if the file does not exist.
fn read_checked(path: &Path) -> Result<Option<String>, StoreError> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let Some(idx) = text.rfind("checksum ") else {
        return Err(StoreError::Corrupt(format!(
            "{}: missing checksum trailer",
            path.display()
        )));
    };
    let (body, trailer) = text.split_at(idx);
    let want = trailer
        .trim()
        .strip_prefix("checksum ")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| StoreError::Corrupt(format!("{}: bad checksum trailer", path.display())))?;
    if fnv1a64(body.as_bytes()) != want {
        return Err(StoreError::Corrupt(format!(
            "{}: manifest checksum mismatch",
            path.display()
        )));
    }
    Ok(Some(body.to_owned()))
}

/// Moves every file in `table_dir` that the manifest does not reference
/// (torn generations, stray `.tmp` files) into `<root>/quarantine/`,
/// returning the quarantined names — the **counted** report. Nothing is
/// ever deleted.
pub fn quarantine_unreferenced(
    root: &Path,
    table_dir: &Path,
    manifest: &TableManifest,
) -> Result<Vec<String>, StoreError> {
    let referenced: std::collections::HashSet<&str> = manifest
        .columns
        .iter()
        .flat_map(|c| c.chunks.iter().map(|ch| ch.file.as_str()))
        .collect();
    let mut quarantined = Vec::new();
    for entry in fs::read_dir(table_dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let fname = entry.file_name().to_string_lossy().into_owned();
        if fname == TABLE_MANIFEST || referenced.contains(fname.as_str()) {
            continue;
        }
        let qdir = root.join(QUARANTINE_DIR);
        fs::create_dir_all(&qdir)?;
        let dest = qdir.join(format!("{}__{fname}", manifest.name));
        fs::rename(entry.path(), &dest)?;
        quarantined.push(format!("{}/{fname}", manifest.name));
    }
    quarantined.sort();
    Ok(quarantined)
}

/// Best-effort OS page-cache drop for one file
/// (`posix_fadvise(POSIX_FADV_DONTNEED)`), so a cold run is cold at the
/// kernel layer too, not just in the buffer pool. Returns whether the
/// advice was applied — on tmpfs (common on CI runners) and non-Linux
/// hosts this is a no-op and cold runs degrade gracefully to
/// pool-cold-only.
pub fn drop_page_cache(path: &Path) -> bool {
    #[cfg(target_os = "linux")]
    {
        use std::os::unix::io::AsRawFd;
        // Declared by hand: the workspace builds offline, without the
        // libc crate; the symbol is in every glibc/musl we link anyway.
        extern "C" {
            fn posix_fadvise(fd: i32, offset: i64, len: i64, advice: i32) -> i32;
        }
        const POSIX_FADV_DONTNEED: i32 = 4;
        match std::fs::File::open(path) {
            Ok(f) => {
                let rc = unsafe { posix_fadvise(f.as_raw_fd(), 0, 0, POSIX_FADV_DONTNEED) };
                rc == 0
            }
            Err(_) => false,
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = path;
        false
    }
}

/// Returns every segment path the manifest references (for page-cache
/// drops across a whole table).
pub fn segment_paths(table_dir: &Path, manifest: &TableManifest) -> Vec<PathBuf> {
    manifest
        .columns
        .iter()
        .flat_map(|c| c.chunks.iter().map(|ch| table_dir.join(&ch.file)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pstore-man-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> TableManifest {
        TableManifest {
            name: "items".into(),
            rows: 100,
            chunk_rows: 64,
            generation: 3,
            columns: vec![
                ColumnManifest {
                    name: "id".into(),
                    tag: TypeTag::I64,
                    chunks: vec![
                        ChunkRef {
                            file: TableManifest::seg_file(3, 0, 0),
                            rows: 64,
                            bytes: 544,
                        },
                        ChunkRef {
                            file: TableManifest::seg_file(3, 0, 1),
                            rows: 36,
                            bytes: 320,
                        },
                    ],
                },
                ColumnManifest {
                    name: "flag".into(),
                    tag: TypeTag::Bool,
                    chunks: vec![ChunkRef {
                        file: TableManifest::seg_file(3, 1, 0),
                        rows: 100,
                        bytes: 132,
                    }],
                },
            ],
        }
    }

    #[test]
    fn table_manifest_roundtrips() {
        let dir = tdir("round");
        let m = sample();
        m.commit(&dir).unwrap();
        let back = TableManifest::load(&dir).unwrap().unwrap();
        assert_eq!(back, m);
        assert!(TableManifest::load(&tdir("absent")).unwrap().is_none());
    }

    #[test]
    fn catalog_manifest_roundtrips() {
        let dir = tdir("cat");
        let m = CatalogManifest {
            tables: vec!["a".into(), "b".into()],
        };
        m.commit(&dir).unwrap();
        assert_eq!(CatalogManifest::load(&dir).unwrap().unwrap(), m);
    }

    #[test]
    fn torn_manifest_is_detected() {
        let dir = tdir("torn");
        let m = sample();
        m.commit(&dir).unwrap();
        let path = dir.join(TABLE_MANIFEST);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(
            TableManifest::load(&dir),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn quarantine_moves_unreferenced_files_and_counts_them() {
        let root = tdir("quar");
        let tdir = root.join("items");
        fs::create_dir_all(&tdir).unwrap();
        let m = sample();
        m.commit(&tdir).unwrap();
        for c in &m.columns {
            for ch in &c.chunks {
                fs::write(tdir.join(&ch.file), b"live").unwrap();
            }
        }
        fs::write(tdir.join("g4_c0_k0.seg"), b"torn generation").unwrap();
        fs::write(tdir.join("TABLE.manifest.tmp"), b"stray tmp").unwrap();
        let report = quarantine_unreferenced(&root, &tdir, &m).unwrap();
        assert_eq!(
            report,
            vec!["items/TABLE.manifest.tmp", "items/g4_c0_k0.seg"]
        );
        // Referenced files stayed; strays moved, not deleted.
        assert!(tdir.join(&m.columns[0].chunks[0].file).exists());
        assert!(!tdir.join("g4_c0_k0.seg").exists());
        assert!(root
            .join(QUARANTINE_DIR)
            .join("items__g4_c0_k0.seg")
            .exists());
        // Idempotent: a clean directory quarantines nothing.
        assert!(quarantine_unreferenced(&root, &tdir, &m)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn page_cache_drop_is_best_effort() {
        let dir = tdir("fadv");
        let p = dir.join("x.seg");
        fs::write(&p, vec![0u8; 4096]).unwrap();
        // On tmpfs this may be a no-op; either way it must not error.
        let _ = drop_page_cache(&p);
        assert!(!drop_page_cache(&dir.join("missing.seg")));
    }
}
