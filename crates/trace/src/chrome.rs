//! Chrome trace-event JSON exporter (`chrome://tracing` / Perfetto).
//!
//! Emits the JSON-object format: `{"traceEvents": [...]}` with `B`/`E`
//! duration events and `M` metadata events naming each lane. Events for one
//! lane are emitted by depth-first traversal of the reconstructed span
//! forest, so every `B` has a matching `E` and pairs nest properly *by
//! construction* — [`validate_chrome`] re-checks that discipline when
//! reading an export back (the CI smoke gate).
//!
//! Timestamps are microseconds (the format's unit), printed with
//! fractional-ns precision so nothing quantizes away.

use crate::json::{parse, Json};
use crate::span::{lane_tree, AttrValue, Trace};
use std::collections::{BTreeMap, BTreeSet};

/// Renders a [`Trace`] as a Chrome trace-event JSON document.
///
/// Open the result in <https://ui.perfetto.dev> (drag & drop) or
/// `chrome://tracing`. Each lane becomes one thread row (`tid` = lane
/// index); span attributes appear under the event's `args`. Ring-buffer
/// drop counts are surfaced twice: per lane in its `thread_name` metadata
/// args, and as a top-level `"droppedSpans"` member.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut events = vec![
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"perfeval\"}}"
            .to_string(),
    ];
    for lane in &trace.lanes {
        let tid = lane.lane_index;
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":{},\"droppedSpans\":{}}}}}",
            quote(&lane.label),
            lane.dropped
        ));
        let (roots, children) = lane_tree(&lane.records);
        // Iterative DFS: (record index, children emitted yet?).
        let mut stack: Vec<(usize, bool)> = roots.iter().rev().map(|&i| (i, false)).collect();
        while let Some((i, expanded)) = stack.pop() {
            let r = &lane.records[i];
            if expanded {
                events.push(format!(
                    "{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"name\":{}}}",
                    micros(r.end_ns),
                    quote(&r.name)
                ));
                continue;
            }
            events.push(format!(
                "{{\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"name\":{}{}}}",
                micros(r.start_ns),
                quote(&r.name),
                args(&r.attrs)
            ));
            stack.push((i, true));
            for &c in children[i].iter().rev() {
                stack.push((c, false));
            }
        }
    }
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\",\"droppedSpans\":{}}}",
        events.join(",\n"),
        trace.total_dropped()
    )
}

/// Microseconds with three decimals (ns precision), e.g. `"12.345"`.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn args(attrs: &[(String, AttrValue)]) -> String {
    if attrs.is_empty() {
        return String::new();
    }
    let members: Vec<String> = attrs
        .iter()
        .map(|(k, v)| format!("{}:{}", quote(k), attr_json(v)))
        .collect();
    format!(",\"args\":{{{}}}", members.join(","))
}

fn attr_json(v: &AttrValue) -> String {
    match v {
        AttrValue::Int(i) => i.to_string(),
        AttrValue::Float(f) if f.is_finite() => {
            // Guarantee valid JSON: a bare integer print is fine, but NaN
            // and infinities are not representable — stringify those.
            format!("{f}")
        }
        AttrValue::Float(f) => quote(&f.to_string()),
        AttrValue::Str(s) => quote(s),
        AttrValue::Bool(b) => b.to_string(),
    }
}

/// JSON string literal with escaping.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What a validated Chrome export contained — enough for acceptance checks
/// ("did ≥ 2 worker lanes emit unit spans?") without re-parsing.
#[derive(Debug, Clone, Default)]
pub struct ChromeSummary {
    /// Total `B`/`E`/`M` events.
    pub events: usize,
    /// Complete `B`+`E` span pairs.
    pub spans: usize,
    /// Lane label by tid, from `thread_name` metadata.
    pub thread_names: BTreeMap<u64, String>,
    /// Distinct `B` event names seen per tid.
    pub names_by_tid: BTreeMap<u64, BTreeSet<String>>,
    /// Deepest observed B/E nesting across all tids.
    pub max_depth: usize,
    /// Top-level `droppedSpans` member.
    pub dropped: u64,
}

/// Parses a Chrome trace-event document and checks the per-thread B/E
/// discipline: every `E` matches the most recent open `B` on its tid (same
/// name), timestamps are non-decreasing per tid, and every `B` is closed by
/// document end. This is exactly the "non-overlapping pairs per thread"
/// property the duration-event format requires.
pub fn validate_chrome(text: &str) -> Result<ChromeSummary, String> {
    let doc = parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut summary = ChromeSummary {
        dropped: doc
            .get("droppedSpans")
            .and_then(Json::as_num)
            .unwrap_or(0.0) as u64,
        ..ChromeSummary::default()
    };
    // Per-tid stack of open (name, ts) pairs, plus last seen ts.
    let mut open: BTreeMap<u64, Vec<(String, f64)>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        summary.events += 1;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = ev.get("tid").and_then(Json::as_num).unwrap_or(0.0) as u64;
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
        match ph {
            "M" => {
                if name == "thread_name" {
                    if let Some(label) = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                    {
                        summary.thread_names.insert(tid, label.to_owned());
                    }
                }
            }
            "B" | "E" => {
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: missing ts"))?;
                let prev = last_ts.insert(tid, ts).unwrap_or(f64::NEG_INFINITY);
                if ts < prev {
                    return Err(format!(
                        "event {i}: ts went backwards on tid {tid} ({ts} < {prev})"
                    ));
                }
                let stack = open.entry(tid).or_default();
                if ph == "B" {
                    summary
                        .names_by_tid
                        .entry(tid)
                        .or_default()
                        .insert(name.to_owned());
                    stack.push((name.to_owned(), ts));
                    summary.max_depth = summary.max_depth.max(stack.len());
                } else {
                    let (open_name, begin_ts) = stack
                        .pop()
                        .ok_or_else(|| format!("event {i}: E without open B on tid {tid}"))?;
                    if open_name != name {
                        return Err(format!(
                            "event {i}: E '{name}' closes B '{open_name}' on tid {tid}"
                        ));
                    }
                    if ts < begin_ts {
                        return Err(format!("event {i}: span '{name}' ends before it begins"));
                    }
                    summary.spans += 1;
                }
            }
            other => return Err(format!("event {i}: unsupported ph '{other}'")),
        }
    }
    for (tid, stack) in &open {
        if let Some((name, _)) = stack.last() {
            return Err(format!("unclosed B '{name}' on tid {tid}"));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{LaneSnapshot, SpanId, SpanRecord};

    fn rec(id: u64, parent: Option<u64>, name: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: parent.map(SpanId),
            name: name.into(),
            start_ns: start,
            end_ns: end,
            attrs: Vec::new(),
        }
    }

    fn two_lane_trace() -> Trace {
        Trace {
            lanes: vec![
                LaneSnapshot {
                    label: "main".into(),
                    lane_index: 0,
                    records: vec![
                        rec(2, Some(1), "execute", 1_500, 7_000),
                        rec(1, None, "query \"q\"", 1_000, 9_000),
                    ],
                    dropped: 0,
                },
                LaneSnapshot {
                    label: "worker-1".into(),
                    lane_index: 1,
                    records: vec![rec(3, None, "unit 0", 2_000, 5_000)],
                    dropped: 3,
                },
            ],
        }
    }

    #[test]
    fn export_roundtrips_through_validator() {
        let json = chrome_trace_json(&two_lane_trace());
        let summary = validate_chrome(&json).expect("well-formed export");
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.max_depth, 2);
        assert_eq!(summary.thread_names[&0], "main");
        assert_eq!(summary.thread_names[&1], "worker-1");
        assert!(summary.names_by_tid[&1].contains("unit 0"));
        assert_eq!(summary.dropped, 3);
    }

    #[test]
    fn attrs_and_special_chars_survive_as_args() {
        let mut trace = two_lane_trace();
        trace.lanes[0].records[1]
            .attrs
            .push(("sql".into(), AttrValue::Str("select \"a\"\n;".into())));
        trace.lanes[0].records[1]
            .attrs
            .push(("rows".into(), AttrValue::Int(-3)));
        trace.lanes[0].records[1]
            .attrs
            .push(("bad".into(), AttrValue::Float(f64::NAN)));
        let json = chrome_trace_json(&trace);
        validate_chrome(&json).expect("escaping keeps JSON well-formed");
        let doc = parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let b = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Json::as_str) == Some("B")
                    && e.get("name").and_then(Json::as_str) == Some("query \"q\"")
            })
            .unwrap();
        let args = b.get("args").unwrap();
        assert_eq!(args.get("sql").unwrap().as_str(), Some("select \"a\"\n;"));
        assert_eq!(args.get("rows").unwrap().as_num(), Some(-3.0));
        assert_eq!(args.get("bad").unwrap().as_str(), Some("NaN"));
    }

    #[test]
    fn timestamps_are_fractional_micros() {
        assert_eq!(micros(12_345), "12.345");
        assert_eq!(micros(1_000_000), "1000.000");
        assert_eq!(micros(7), "0.007");
    }

    #[test]
    fn validator_rejects_broken_discipline() {
        // E without B.
        let bad = r#"{"traceEvents":[{"ph":"E","tid":0,"ts":1,"name":"x"}]}"#;
        assert!(validate_chrome(bad).unwrap_err().contains("without open B"));
        // Mismatched names.
        let bad = r#"{"traceEvents":[
            {"ph":"B","tid":0,"ts":1,"name":"a"},
            {"ph":"E","tid":0,"ts":2,"name":"b"}]}"#;
        assert!(validate_chrome(bad).unwrap_err().contains("closes B"));
        // Unclosed at end.
        let bad = r#"{"traceEvents":[{"ph":"B","tid":0,"ts":1,"name":"a"}]}"#;
        assert!(validate_chrome(bad).unwrap_err().contains("unclosed"));
        // Backwards time on one tid.
        let bad = r#"{"traceEvents":[
            {"ph":"B","tid":0,"ts":5,"name":"a"},
            {"ph":"E","tid":0,"ts":3,"name":"a"}]}"#;
        assert!(validate_chrome(bad).is_err());
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let json = chrome_trace_json(&Trace::default());
        let summary = validate_chrome(&json).unwrap();
        assert_eq!(summary.spans, 0);
        assert_eq!(summary.events, 1); // process_name metadata
    }
}
