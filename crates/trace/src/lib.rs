//! # perfeval-trace
//!
//! Span-based, thread-aware tracing: the "be aware of what you measure"
//! principle turned into an observability subsystem.
//!
//! The tutorial's per-phase breakdowns (`mclient -t`'s
//! `Trans/Shred/Query/Print`) answer *where did the time go* for one
//! phase granularity on one thread. This crate generalizes that:
//!
//! * [`Tracer`] records hierarchical [`SpanRecord`]s — named, clocked via
//!   [`perfeval_measure::Clock`], carrying typed attributes and optional
//!   counter deltas from [`perfeval_measure::counters`].
//! * Each thread writes into its own bounded ring-buffer lane; overflow is
//!   counted, never silent. A global registry stitches `exec::pool` worker
//!   lanes into one timeline (all lanes share the tracer's clock origin).
//! * Exporters: [`chrome_trace_json`] (load in <https://ui.perfetto.dev> or
//!   `chrome://tracing`), [`folded_stacks`] (flamegraph.pl input), and
//!   [`render_tree`] (plain text for harness reports). [`validate_chrome`]
//!   re-parses an export and checks the B/E discipline — the exporter's
//!   regression gate.
//!
//! The observer effect of the tracer itself is quantified by the
//! `exp_e18_observer_effect` experiment in `crates/bench`; sampling
//! ([`Tracer::set_sampling`]) is the knob that trades detail for overhead.
//!
//! ```
//! use perfeval_trace::{chrome_trace_json, validate_chrome, Tracer};
//! let tracer = Tracer::new();
//! {
//!     let mut q = tracer.span("query");
//!     q.attr("sql", "select 1");
//!     let _e = tracer.span("execute");
//! }
//! let trace = tracer.snapshot();
//! assert_eq!(trace.span_count(), 2);
//! let json = chrome_trace_json(&trace);
//! assert!(validate_chrome(&json).unwrap().spans == 2);
//! ```
#![warn(missing_docs)]

pub mod chrome;
pub mod folded;
pub mod json;
pub mod recorder;
pub mod span;
pub mod tree;

pub use chrome::{chrome_trace_json, validate_chrome, ChromeSummary};
pub use folded::folded_stacks;
pub use recorder::{SpanGuard, TraceStats, Tracer, DEFAULT_LANE_CAPACITY};
pub use span::{AttrValue, LaneSnapshot, SpanId, SpanRecord, Trace};
pub use tree::render_tree;
