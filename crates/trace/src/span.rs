//! Span records and trace snapshots — the data model every exporter reads.
//!
//! A *span* is a named, timed region of one thread's execution: it has a
//! typed [`SpanId`], an optional parent (forming a per-thread tree), a start
//! and end reading from the tracer's [`perfeval_measure::Clock`], and a list
//! of key/value [`AttrValue`] attributes (cache hits, row counts, hardware
//! counter deltas, …). Completed spans live in per-thread lanes; a
//! [`Trace`] is an immutable snapshot of every lane, stitched into one
//! timeline because all lanes share the tracer's clock origin.

/// Identifier of a span, unique within one [`crate::Tracer`].
///
/// Ids are allocated from a single atomic counter so they are unique across
/// threads — a child recorded on a worker lane can reference a parent id
/// allocated on the coordinator lane without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A typed attribute value attached to a span.
///
/// Keeping the value typed (rather than stringifying at record time) lets
/// exporters choose the right JSON representation and lets analyses read
/// counters back numerically.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer — counter deltas, row counts.
    Int(i64),
    /// Floating point — milliseconds, ratios.
    Float(f64),
    /// Free-form text — SQL snippets, operator names.
    Str(String),
    /// Flags — cache hit/miss, smoke mode.
    Bool(bool),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v:.3}"),
            AttrValue::Str(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// One completed span, as stored in a lane's ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the owning tracer.
    pub id: SpanId,
    /// Parent span id, if this span was opened while another was active on
    /// the same thread. `None` marks a top-level (root) span.
    pub parent: Option<SpanId>,
    /// Region name, e.g. `"execute"` or `"scan lineitem"`.
    pub name: String,
    /// Start reading of the tracer clock, in nanoseconds.
    pub start_ns: u64,
    /// End reading of the tracer clock, in nanoseconds.
    pub end_ns: u64,
    /// Attributes attached while the span was open, in attach order.
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanRecord {
    /// Inclusive duration (children included) in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Looks up an attribute by key (first match wins).
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Snapshot of one thread's lane: its completed spans plus the overflow
/// accounting the ring buffer kept.
#[derive(Debug, Clone)]
pub struct LaneSnapshot {
    /// Thread label (worker name or `thread-<n>`).
    pub label: String,
    /// Registration order of the lane — stable across snapshots, used as
    /// the `tid` in Chrome exports.
    pub lane_index: usize,
    /// Completed spans in completion order (children complete before
    /// parents, so a parent always appears after its children here).
    pub records: Vec<SpanRecord>,
    /// Spans evicted from the ring buffer because it was full. Exporters
    /// must surface this — a truncated trace that looks complete is a lie.
    pub dropped: u64,
}

impl LaneSnapshot {
    /// Records whose parent is absent from this lane (true roots, or spans
    /// whose parent was evicted), in `(start_ns, id)` order.
    pub fn root_indices(&self) -> Vec<usize> {
        lane_tree(&self.records).0
    }
}

/// An immutable snapshot of every lane a tracer has registered.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Lanes in registration order.
    pub lanes: Vec<LaneSnapshot>,
}

impl Trace {
    /// Total completed spans across all lanes.
    pub fn span_count(&self) -> usize {
        self.lanes.iter().map(|l| l.records.len()).sum()
    }

    /// Total spans lost to ring-buffer overflow across all lanes.
    pub fn total_dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }

    /// All records with the given name, across lanes.
    pub fn find<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.lanes
            .iter()
            .flat_map(|l| l.records.iter())
            .filter(move |r| r.name == name)
    }

    /// Counts spans carrying attribute `key` equal to `value`, across all
    /// lanes — the one-liner failure-observability queries are built from
    /// (`trace.count_attr("outcome", "panicked")`).
    pub fn count_attr(&self, key: &str, value: impl Into<AttrValue>) -> usize {
        let value = value.into();
        self.lanes
            .iter()
            .flat_map(|l| l.records.iter())
            .filter(|r| r.attr(key) == Some(&value))
            .count()
    }
}

/// Rebuilds the per-lane span forest from flat records.
///
/// Returns `(roots, children)` where both hold indices into `records`;
/// roots and every child list are sorted by `(start_ns, id)` so traversal
/// order is the timeline order. A span whose parent id is not present in
/// this lane (evicted, or started on another thread) is treated as a root —
/// the forest is always total, never panics on dangling parents.
pub(crate) fn lane_tree(records: &[SpanRecord]) -> (Vec<usize>, Vec<Vec<usize>>) {
    use std::collections::HashMap;
    let by_id: HashMap<u64, usize> = records
        .iter()
        .enumerate()
        .map(|(i, r)| (r.id.0, i))
        .collect();
    let mut roots = Vec::new();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); records.len()];
    for (i, r) in records.iter().enumerate() {
        match r.parent.and_then(|p| by_id.get(&p.0)) {
            Some(&p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    let key = |&i: &usize| (records[i].start_ns, records[i].id.0);
    roots.sort_by_key(key);
    for list in &mut children {
        list.sort_by_key(key);
    }
    (roots, children)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, name: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: parent.map(SpanId),
            name: name.into(),
            start_ns: start,
            end_ns: end,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn attr_value_conversions_and_display() {
        assert_eq!(AttrValue::from(3u64), AttrValue::Int(3));
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".into()));
        assert_eq!(AttrValue::from(true).to_string(), "true");
        assert_eq!(AttrValue::from(1.5f64).to_string(), "1.500");
    }

    #[test]
    fn lane_tree_orphans_become_roots() {
        // Child records complete before parents; parent id 99 was evicted.
        let records = vec![
            rec(2, Some(1), "child", 10, 20),
            rec(1, None, "root", 0, 30),
            rec(3, Some(99), "orphan", 5, 6),
        ];
        let (roots, children) = lane_tree(&records);
        // Roots sorted by start: root(0) then orphan(5).
        assert_eq!(roots, vec![1, 2]);
        assert_eq!(children[1], vec![0]);
        assert!(children[0].is_empty());
    }

    #[test]
    fn span_record_duration_and_attr_lookup() {
        let mut r = rec(1, None, "x", 100, 350);
        r.attrs.push(("rows".into(), AttrValue::Int(7)));
        assert_eq!(r.duration_ns(), 250);
        assert_eq!(r.attr("rows"), Some(&AttrValue::Int(7)));
        assert_eq!(r.attr("missing"), None);
    }

    #[test]
    fn count_attr_matches_key_and_value_across_lanes() {
        let mut a = rec(1, None, "unit 0", 0, 10);
        a.attrs
            .push(("outcome".into(), AttrValue::Str("panicked".into())));
        let mut b = rec(2, None, "unit 1", 0, 10);
        b.attrs
            .push(("outcome".into(), AttrValue::Str("measured".into())));
        let mut c = rec(3, None, "unit 2", 0, 10);
        c.attrs
            .push(("outcome".into(), AttrValue::Str("panicked".into())));
        let trace = Trace {
            lanes: vec![
                LaneSnapshot {
                    label: "w0".into(),
                    lane_index: 0,
                    records: vec![a, b],
                    dropped: 0,
                },
                LaneSnapshot {
                    label: "w1".into(),
                    lane_index: 1,
                    records: vec![c],
                    dropped: 0,
                },
            ],
        };
        assert_eq!(trace.count_attr("outcome", "panicked"), 2);
        assert_eq!(trace.count_attr("outcome", "measured"), 1);
        assert_eq!(trace.count_attr("outcome", "timed_out"), 0);
        assert_eq!(trace.count_attr("nope", "panicked"), 0);
    }
}
