//! The tracer: per-thread ring-buffer lanes behind one shared registry.
//!
//! Design constraints, in the order the paper imposes them:
//!
//! * **Low observer effect.** Recording must not serialize worker threads.
//!   Each thread writes to its own lane (an `Arc<Mutex<LaneInner>>` that is
//!   uncontended in steady state — only `snapshot`/`clear` ever lock a lane
//!   from another thread), found through a thread-local cache so the common
//!   path is one TLS lookup plus one uncontended lock. A disabled tracer
//!   costs a single relaxed atomic load per span.
//! * **Bounded memory.** Lanes are ring buffers: when full, the oldest
//!   completed span is evicted and the lane's `dropped` counter increments.
//!   The count travels with every snapshot — truncation is never silent.
//! * **One timeline.** All lanes read the same clock (same origin), so a
//!   snapshot stitches worker threads from `exec::pool` into a single
//!   coherent trace without cross-thread clock translation.
//!
//! Sampling records every Nth *top-level* span per lane (children follow
//! their root's fate), which keeps sampled traces structurally complete —
//! a root without its operators would be useless for diagnosis.

use crate::span::{AttrValue, LaneSnapshot, SpanId, SpanRecord, Trace};
use perfeval_measure::counters::CounterSet;
use perfeval_measure::{Clock, WallClock};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Default per-lane capacity in completed spans (~64 Ki spans ≈ a few MiB).
pub const DEFAULT_LANE_CAPACITY: usize = 65_536;

/// Allocates tracer identities so thread-local lane caches can tell two
/// tracers apart.
static TRACER_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread cache of `(tracer id, lane)` pairs. Weak so a dropped
    /// tracer does not leak lanes through TLS.
    static LANE_CACHE: RefCell<Vec<(u64, Weak<Mutex<LaneInner>>)>> =
        const { RefCell::new(Vec::new()) };
}

/// A span that has started but not yet ended.
struct Pending {
    id: u64,
    parent: Option<u64>,
    name: String,
    start_ns: u64,
    attrs: Vec<(String, AttrValue)>,
}

/// One thread's recording state. Locked only by its own thread during
/// recording; other threads touch it only via `snapshot`/`clear`.
struct LaneInner {
    label: String,
    capacity: usize,
    ring: VecDeque<SpanRecord>,
    dropped: u64,
    stack: Vec<Pending>,
    /// Depth of open spans being skipped by the sampler. While positive,
    /// every new span just increments this and every guard drop decrements
    /// it — the whole subtree vanishes at the cost of two counter bumps.
    suppressed: u32,
    /// Top-level spans seen (sampled in or out) — the sampling phase base.
    roots_seen: u64,
    /// End reading of the most recently completed span (lane creation time
    /// if none yet). Used by schedulers to anchor back-to-back unit spans
    /// without overlap — also correct when units nest under an open sweep
    /// span, where waiting for a *root* to complete would never advance.
    last_end_ns: u64,
}

impl LaneInner {
    fn push_completed(&mut self, record: SpanRecord) {
        self.last_end_ns = self.last_end_ns.max(record.end_ns);
        if self.ring.len() >= self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(record);
    }
}

struct Shared {
    tracer_id: u64,
    enabled: AtomicBool,
    /// Record every Nth top-level span per lane; 1 = record everything.
    sample_every: AtomicU64,
    capacity: usize,
    next_span_id: AtomicU64,
    lanes: Mutex<Vec<Arc<Mutex<LaneInner>>>>,
    /// The clock, erased to a closure because [`Clock`] is not object-safe
    /// (its generic `time` method). All lanes share this origin.
    now: Box<dyn Fn() -> u64 + Send + Sync>,
}

/// Aggregate recording statistics, cheap to collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Registered lanes (threads that recorded at least one span).
    pub lanes: usize,
    /// Completed spans currently retained across all rings.
    pub recorded: usize,
    /// Spans evicted by ring overflow across all lanes.
    pub dropped: u64,
    /// Spans currently open (started, not yet ended).
    pub open: usize,
}

/// The tracing subsystem's entry point. Cloning is cheap and shares state;
/// a `&Tracer` can be handed to scoped worker threads.
#[derive(Clone)]
pub struct Tracer {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("sample_every", &self.sampling())
            .field("stats", &stats)
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// An enabled tracer on the wall clock with the default lane capacity.
    pub fn new() -> Self {
        Self::custom(DEFAULT_LANE_CAPACITY, WallClock::new())
    }

    /// An enabled tracer with a custom per-lane ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::custom(capacity, WallClock::new())
    }

    /// An enabled tracer reading the given clock. Use a shared
    /// [`perfeval_measure::AtomicClock`] for deterministic tests.
    pub fn with_clock(clock: impl Clock + Send + Sync + 'static) -> Self {
        Self::custom(DEFAULT_LANE_CAPACITY, clock)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    /// Panics if `capacity == 0` — a ring that can hold nothing would drop
    /// every span silently, the exact failure mode this crate exists to
    /// prevent.
    pub fn custom(capacity: usize, clock: impl Clock + Send + Sync + 'static) -> Self {
        assert!(capacity > 0, "lane capacity must be positive");
        Tracer {
            shared: Arc::new(Shared {
                tracer_id: TRACER_IDS.fetch_add(1, Ordering::Relaxed),
                enabled: AtomicBool::new(true),
                sample_every: AtomicU64::new(1),
                capacity,
                next_span_id: AtomicU64::new(0),
                lanes: Mutex::new(Vec::new()),
                now: Box::new(move || clock.now_ns()),
            }),
        }
    }

    /// A tracer that starts disabled — spans cost one atomic load until
    /// [`Tracer::set_enabled`] flips it on.
    pub fn disabled() -> Self {
        let t = Self::new();
        t.set_enabled(false);
        t
    }

    /// Turns recording on or off. Spans opened while disabled are inert
    /// guards; flipping mid-span affects only subsequently opened spans.
    pub fn set_enabled(&self, on: bool) {
        self.shared.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are currently being recorded.
    pub fn enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Records every `every`-th top-level span per lane (children included,
    /// the rest skipped wholesale). `0` and `1` both mean "record all".
    pub fn set_sampling(&self, every: u64) {
        self.shared
            .sample_every
            .store(every.max(1), Ordering::Relaxed);
    }

    /// Current sampling period (1 = everything).
    pub fn sampling(&self) -> u64 {
        self.shared.sample_every.load(Ordering::Relaxed)
    }

    /// Current reading of the tracer clock, in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        (self.shared.now)()
    }

    /// Opens a span starting now. Ends when the returned guard drops.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let start = self.now_ns();
        self.span_at(name, start)
    }

    /// Opens a span with an explicit start reading (from this tracer's
    /// clock). Lets schedulers account queue-wait time that elapsed before
    /// the recording thread picked the work up.
    pub fn span_at(&self, name: &str, start_ns: u64) -> SpanGuard<'_> {
        self.span_full(name, start_ns, None)
    }

    /// Opens a span starting now with an explicit parent id, which may live
    /// on another lane — or have crossed a process/wire boundary, like the
    /// client span id `minidb-net` carries in its `Query` frame header.
    /// `lane_tree` treats a parent outside the lane as a lane root, so the
    /// stitched tree renders the server's work under the client's span.
    pub fn span_with_parent(&self, name: &str, parent: SpanId) -> SpanGuard<'_> {
        let start = self.now_ns();
        self.span_full(name, start, Some(parent))
    }

    fn span_full(&self, name: &str, start_ns: u64, parent: Option<SpanId>) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard {
                tracer: None,
                state: GuardState::Inert,
            };
        }
        let lane = self.lane();
        let mut l = lane.lock().unwrap();
        if l.suppressed > 0 {
            l.suppressed += 1;
            drop(l);
            return SpanGuard {
                tracer: Some(self),
                state: GuardState::Suppressed(lane),
            };
        }
        if l.stack.is_empty() {
            l.roots_seen += 1;
            let every = self.sampling();
            if !(l.roots_seen - 1).is_multiple_of(every) {
                l.suppressed = 1;
                drop(l);
                return SpanGuard {
                    tracer: Some(self),
                    state: GuardState::Suppressed(lane),
                };
            }
        }
        let id = self.shared.next_span_id.fetch_add(1, Ordering::Relaxed) + 1;
        let parent = parent.map(|p| p.0).or_else(|| l.stack.last().map(|p| p.id));
        let depth = l.stack.len();
        l.stack.push(Pending {
            id,
            parent,
            name: name.to_owned(),
            start_ns,
            attrs: Vec::new(),
        });
        drop(l);
        SpanGuard {
            tracer: Some(self),
            state: GuardState::Active { lane, depth, id },
        }
    }

    /// Names the calling thread's lane (defaults to the thread name, or
    /// `thread-<index>`). Registers the lane if needed, so a worker can
    /// label itself before its first span.
    pub fn label_thread(&self, label: &str) {
        let lane = self.lane();
        lane.lock().unwrap().label = label.to_owned();
    }

    /// End reading of the last completed span on the calling thread's lane
    /// (lane creation time if none yet). The anchor a scheduler uses to
    /// start back-to-back unit spans without overlap.
    pub fn lane_resume_ns(&self) -> u64 {
        let lane = self.lane();
        let l = lane.lock().unwrap();
        l.last_end_ns
    }

    /// Snapshots every lane into an immutable [`Trace`]. Open spans are not
    /// included (they have no end yet); overflow counts come along.
    pub fn snapshot(&self) -> Trace {
        let lanes: Vec<_> = self.shared.lanes.lock().unwrap().clone();
        let mut out = Vec::with_capacity(lanes.len());
        for (index, lane) in lanes.iter().enumerate() {
            let l = lane.lock().unwrap();
            out.push(LaneSnapshot {
                label: l.label.clone(),
                lane_index: index,
                records: l.ring.iter().cloned().collect(),
                dropped: l.dropped,
            });
        }
        Trace { lanes: out }
    }

    /// Aggregate counts without cloning records.
    pub fn stats(&self) -> TraceStats {
        let lanes: Vec<_> = self.shared.lanes.lock().unwrap().clone();
        let mut stats = TraceStats {
            lanes: lanes.len(),
            recorded: 0,
            dropped: 0,
            open: 0,
        };
        for lane in &lanes {
            let l = lane.lock().unwrap();
            stats.recorded += l.ring.len();
            stats.dropped += l.dropped;
            stats.open += l.stack.len();
        }
        stats
    }

    /// Discards completed spans and overflow counts on every lane (lanes
    /// and labels survive). Call between experiment arms — with no spans
    /// open — so each arm exports a clean timeline.
    pub fn clear(&self) {
        let lanes: Vec<_> = self.shared.lanes.lock().unwrap().clone();
        for lane in &lanes {
            let mut l = lane.lock().unwrap();
            l.ring.clear();
            l.dropped = 0;
            l.roots_seen = 0;
        }
    }

    /// The calling thread's lane, creating + registering it on first use.
    fn lane(&self) -> Arc<Mutex<LaneInner>> {
        let id = self.shared.tracer_id;
        LANE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, weak)) = cache.iter().find(|(tid, _)| *tid == id) {
                if let Some(strong) = weak.upgrade() {
                    return strong;
                }
            }
            let strong = self.register_lane();
            cache.retain(|(tid, _)| *tid != id);
            cache.push((id, Arc::downgrade(&strong)));
            strong
        })
    }

    fn register_lane(&self) -> Arc<Mutex<LaneInner>> {
        let mut lanes = self.shared.lanes.lock().unwrap();
        let index = lanes.len();
        let label = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("thread-{index}"));
        let created_ns = self.now_ns();
        let lane = Arc::new(Mutex::new(LaneInner {
            label,
            capacity: self.shared.capacity,
            ring: VecDeque::new(),
            dropped: 0,
            stack: Vec::new(),
            suppressed: 0,
            roots_seen: 0,
            last_end_ns: created_ns,
        }));
        lanes.push(Arc::clone(&lane));
        lane
    }
}

enum GuardState {
    /// Tracer disabled at open time: free to drop.
    Inert,
    /// Sampled out (or child of a sampled-out root): only balances the
    /// lane's suppression depth on drop.
    Suppressed(Arc<Mutex<LaneInner>>),
    /// Recording: completes the pending span at `depth` on drop.
    Active {
        lane: Arc<Mutex<LaneInner>>,
        depth: usize,
        id: u64,
    },
}

/// RAII handle for an open span; dropping it ends the span.
///
/// If an outer guard drops while inner spans are still open (early return,
/// panic unwinding, guards dropped out of order), the outer drop completes
/// every span at or above its depth with the same end reading — the stack
/// discipline is restored and later drops of the inner guards are no-ops.
pub struct SpanGuard<'t> {
    tracer: Option<&'t Tracer>,
    state: GuardState,
}

impl SpanGuard<'_> {
    /// True if this guard is actually recording (enabled and sampled in).
    pub fn is_recording(&self) -> bool {
        matches!(self.state, GuardState::Active { .. })
    }

    /// The open span's id, or `None` on inert/sampled-out guards. This is
    /// what a client sends over the wire so a remote tracer can parent its
    /// spans here via [`Tracer::span_with_parent`].
    pub fn id(&self) -> Option<SpanId> {
        match &self.state {
            GuardState::Active { id, .. } => Some(SpanId(*id)),
            _ => None,
        }
    }

    /// Attaches a key/value attribute to the open span. Chainable; a no-op
    /// on inert or sampled-out guards, or after the span was force-closed
    /// by an outer guard.
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) -> &mut Self {
        if let GuardState::Active { lane, depth, id } = &self.state {
            let mut l = lane.lock().unwrap();
            if let Some(p) = l.stack.get_mut(*depth) {
                if p.id == *id {
                    p.attrs.push((key.to_owned(), value.into()));
                }
            }
        }
        self
    }

    /// Attaches the per-counter deltas `after − before` as integer
    /// attributes (zero deltas skipped). The bridge from
    /// [`perfeval_measure::counters`] hardware-style counters to spans.
    pub fn counter_deltas(&mut self, before: &CounterSet, after: &CounterSet) -> &mut Self {
        for (name, after_v) in after.iter() {
            let delta = after_v as i64 - before.get(name) as i64;
            if delta != 0 {
                self.attr(name, delta);
            }
        }
        self
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        match std::mem::replace(&mut self.state, GuardState::Inert) {
            GuardState::Inert => {}
            GuardState::Suppressed(lane) => {
                let mut l = lane.lock().unwrap();
                l.suppressed = l.suppressed.saturating_sub(1);
            }
            GuardState::Active { lane, depth, id: _ } => {
                let end_ns = self.tracer.map(|t| t.now_ns()).unwrap_or(0);
                let mut l = lane.lock().unwrap();
                while l.stack.len() > depth {
                    let p = l.stack.pop().unwrap();
                    l.push_completed(SpanRecord {
                        id: SpanId(p.id),
                        parent: p.parent.map(SpanId),
                        name: p.name,
                        start_ns: p.start_ns,
                        end_ns,
                        attrs: p.attrs,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Deterministic shared time source for tests.
    fn manual() -> (Arc<AtomicU64>, Tracer) {
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        let tracer = Tracer {
            shared: Arc::new(Shared {
                tracer_id: TRACER_IDS.fetch_add(1, Ordering::Relaxed),
                enabled: AtomicBool::new(true),
                sample_every: AtomicU64::new(1),
                capacity: DEFAULT_LANE_CAPACITY,
                next_span_id: AtomicU64::new(0),
                lanes: Mutex::new(Vec::new()),
                now: Box::new(move || t2.load(Ordering::Relaxed)),
            }),
        };
        (t, tracer)
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let (clock, tracer) = manual();
        {
            let mut a = tracer.span("query");
            a.attr("sql", "select 1");
            clock.store(10, Ordering::Relaxed);
            {
                let _b = tracer.span("execute");
                clock.store(25, Ordering::Relaxed);
            }
            clock.store(30, Ordering::Relaxed);
        }
        let trace = tracer.snapshot();
        assert_eq!(trace.span_count(), 2);
        let lane = &trace.lanes[0];
        // Children complete first.
        assert_eq!(lane.records[0].name, "execute");
        assert_eq!(lane.records[1].name, "query");
        assert_eq!(lane.records[0].parent, Some(lane.records[1].id));
        assert_eq!(lane.records[0].start_ns, 10);
        assert_eq!(lane.records[0].end_ns, 25);
        assert_eq!(lane.records[1].start_ns, 0);
        assert_eq!(lane.records[1].end_ns, 30);
        assert_eq!(
            lane.records[1].attr("sql"),
            Some(&AttrValue::Str("select 1".into()))
        );
    }

    #[test]
    fn worker_threads_get_their_own_lanes_with_shared_ids() {
        let tracer = Tracer::new();
        {
            let _root = tracer.span("coordinator");
            std::thread::scope(|scope| {
                for w in 0..2 {
                    let tracer = &tracer;
                    scope.spawn(move || {
                        tracer.label_thread(&format!("worker-{w}"));
                        let mut s = tracer.span("unit");
                        s.attr("worker", w as i64);
                    });
                }
            });
        }
        let trace = tracer.snapshot();
        assert_eq!(trace.lanes.len(), 3);
        let labels: Vec<&str> = trace.lanes.iter().map(|l| l.label.as_str()).collect();
        assert!(labels.contains(&"worker-0") && labels.contains(&"worker-1"));
        // Span ids are globally unique across lanes.
        let mut ids: Vec<u64> = trace
            .lanes
            .iter()
            .flat_map(|l| l.records.iter().map(|r| r.id.0))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
        // Worker spans are lane roots, not children of the coordinator span.
        for lane in &trace.lanes {
            if lane.label.starts_with("worker-") {
                assert_eq!(lane.records.len(), 1);
                assert_eq!(lane.records[0].parent, None);
            }
        }
    }

    #[test]
    fn ring_overflow_evicts_oldest_and_counts_drops() {
        let tracer = Tracer::with_capacity(4);
        for i in 0..10 {
            let mut s = tracer.span(&format!("span-{i}"));
            s.attr("i", i as i64);
        }
        let trace = tracer.snapshot();
        let lane = &trace.lanes[0];
        assert_eq!(lane.records.len(), 4);
        assert_eq!(lane.dropped, 6);
        assert_eq!(trace.total_dropped(), 6);
        // Oldest evicted: the survivors are the last four.
        let names: Vec<&str> = lane.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["span-6", "span-7", "span-8", "span-9"]);
        let stats = tracer.stats();
        assert_eq!(stats.recorded, 4);
        assert_eq!(stats.dropped, 6);
        assert_eq!(stats.open, 0);
    }

    #[test]
    fn sampling_keeps_every_nth_root_with_its_children() {
        let tracer = Tracer::new();
        tracer.set_sampling(3);
        for _ in 0..9 {
            let _root = tracer.span("root");
            let _child = tracer.span("child");
        }
        let trace = tracer.snapshot();
        assert_eq!(trace.find("root").count(), 3);
        assert_eq!(trace.find("child").count(), 3);
        // Every recorded child hangs off a recorded root.
        for child in trace.find("child") {
            assert!(child.parent.is_some());
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        {
            let mut s = tracer.span("invisible");
            assert!(!s.is_recording());
            s.attr("x", 1i64);
        }
        assert_eq!(tracer.snapshot().span_count(), 0);
        assert_eq!(tracer.stats().lanes, 0);
        tracer.set_enabled(true);
        drop(tracer.span("visible"));
        assert_eq!(tracer.snapshot().span_count(), 1);
    }

    #[test]
    fn out_of_order_guard_drop_force_closes_children() {
        let (clock, tracer) = manual();
        let outer = tracer.span("outer");
        clock.store(5, Ordering::Relaxed);
        let inner = tracer.span("inner");
        clock.store(9, Ordering::Relaxed);
        drop(outer); // closes inner too, same end reading
        drop(inner); // no-op
        let trace = tracer.snapshot();
        assert_eq!(trace.span_count(), 2);
        for r in &trace.lanes[0].records {
            assert_eq!(r.end_ns, 9);
        }
        assert_eq!(tracer.stats().open, 0);
    }

    #[test]
    fn counter_deltas_become_attrs() {
        let tracer = Tracer::new();
        let mut before = CounterSet::new();
        before.add("pool_hits", 10);
        before.add("pool_misses", 4);
        let mut after = before.clone();
        after.add("pool_hits", 7);
        {
            let mut s = tracer.span("scan");
            s.counter_deltas(&before, &after);
        }
        let trace = tracer.snapshot();
        let scan = trace.find("scan").next().unwrap();
        assert_eq!(scan.attr("pool_hits"), Some(&AttrValue::Int(7)));
        assert_eq!(scan.attr("pool_misses"), None); // zero delta skipped
    }

    #[test]
    fn lane_resume_tracks_last_root_end() {
        let (clock, tracer) = manual();
        clock.store(100, Ordering::Relaxed);
        drop(tracer.span("first")); // lane created at 100, root ends at 100
        assert_eq!(tracer.lane_resume_ns(), 100);
        clock.store(250, Ordering::Relaxed);
        drop(tracer.span("second"));
        assert_eq!(tracer.lane_resume_ns(), 250);
    }

    #[test]
    fn clear_resets_rings_but_keeps_lanes() {
        let tracer = Tracer::with_capacity(2);
        for _ in 0..5 {
            drop(tracer.span("s"));
        }
        assert_eq!(tracer.stats().dropped, 3);
        tracer.clear();
        let stats = tracer.stats();
        assert_eq!(stats.recorded, 0);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.lanes, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Tracer::with_capacity(0);
    }

    #[test]
    fn explicit_parent_stitches_across_lanes() {
        let tracer = Tracer::new();
        let client_id = {
            let client = tracer.span("net.query");
            let client_id = client.id().expect("recording guard has an id");
            // A "server" thread parents its lane root under the client span,
            // exactly as minidb-net does with the id from the frame header.
            std::thread::scope(|scope| {
                let tracer = &tracer;
                scope.spawn(move || {
                    let serve = tracer.span_with_parent("net.serve", client_id);
                    assert_eq!(serve.id().map(|i| i.0 > 0), Some(true));
                    drop(tracer.span("execute")); // nests under net.serve
                });
            });
            client_id
        };
        let trace = tracer.snapshot();
        let serve = trace.find("net.serve").next().expect("server span");
        assert_eq!(serve.parent, Some(client_id), "cross-lane parent kept");
        let exec = trace.find("execute").next().expect("child span");
        assert_eq!(exec.parent, Some(serve.id), "children nest normally");
    }

    #[test]
    fn inert_guards_have_no_id() {
        let tracer = Tracer::disabled();
        assert_eq!(tracer.span("x").id(), None);
    }

    #[test]
    fn explicit_start_anchors_span_before_pickup() {
        let (clock, tracer) = manual();
        clock.store(500, Ordering::Relaxed);
        {
            let _s = tracer.span_at("unit", 120);
            clock.store(700, Ordering::Relaxed);
        }
        let trace = tracer.snapshot();
        let unit = trace.find("unit").next().unwrap();
        assert_eq!(unit.start_ns, 120);
        assert_eq!(unit.end_ns, 700);
    }
}
