//! Flamegraph "folded stacks" exporter.
//!
//! One line per span: `lane;root;child;...;leaf <exclusive µs>` — the input
//! format of Brendan Gregg's `flamegraph.pl` and of `inferno-flamegraph`.
//! Values are *exclusive* time (children subtracted, floored at zero so a
//! child that overruns its parent cannot produce a negative weight).

use crate::span::{lane_tree, Trace};

/// Renders a [`Trace`] as flamegraph-folded stack lines.
pub fn folded_stacks(trace: &Trace) -> String {
    let mut out = String::new();
    for lane in &trace.lanes {
        let (roots, children) = lane_tree(&lane.records);
        let mut path: Vec<String> = vec![frame(&lane.label)];
        for &root in &roots {
            emit(lane, root, &children, &mut path, &mut out);
        }
        if lane.dropped > 0 {
            // Surface truncation inside the flamegraph itself: an explicit
            // frame, weighted by drop count (1 µs per lost span).
            out.push_str(&format!(
                "{};[{} spans dropped] {}\n",
                frame(&lane.label),
                lane.dropped,
                lane.dropped
            ));
        }
    }
    out
}

fn emit(
    lane: &crate::span::LaneSnapshot,
    index: usize,
    children: &[Vec<usize>],
    path: &mut Vec<String>,
    out: &mut String,
) {
    let r = &lane.records[index];
    path.push(frame(&r.name));
    let child_ns: u64 = children[index]
        .iter()
        .map(|&c| lane.records[c].duration_ns())
        .sum();
    let exclusive_us = r.duration_ns().saturating_sub(child_ns) / 1_000;
    out.push_str(&path.join(";"));
    out.push_str(&format!(" {exclusive_us}\n"));
    for &c in &children[index] {
        emit(lane, c, children, path, out);
    }
    path.pop();
}

/// Folded-format frame names cannot contain `;` (the separator) or
/// newlines; spaces are fine but the trailing count is space-separated, so
/// keep the name intact and only replace the two structural characters.
fn frame(name: &str) -> String {
    name.replace(';', ":").replace(['\n', '\r'], " ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{LaneSnapshot, SpanId, SpanRecord};

    fn rec(id: u64, parent: Option<u64>, name: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: parent.map(SpanId),
            name: name.into(),
            start_ns: start,
            end_ns: end,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn exclusive_time_subtracts_children() {
        let trace = Trace {
            lanes: vec![LaneSnapshot {
                label: "main".into(),
                lane_index: 0,
                records: vec![
                    rec(2, Some(1), "child", 10_000, 60_000),
                    rec(1, None, "root", 0, 100_000),
                ],
                dropped: 0,
            }],
        };
        let folded = folded_stacks(&trace);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines[0], "main;root 50"); // 100 µs − 50 µs child
        assert_eq!(lines[1], "main;root;child 50");
    }

    #[test]
    fn semicolons_in_names_are_sanitized_and_drops_surfaced() {
        let trace = Trace {
            lanes: vec![LaneSnapshot {
                label: "w;1".into(),
                lane_index: 0,
                records: vec![rec(1, None, "a;b", 0, 5_000)],
                dropped: 7,
            }],
        };
        let folded = folded_stacks(&trace);
        assert!(folded.contains("w:1;a:b 5"));
        assert!(folded.contains("[7 spans dropped] 7"));
    }
}
