//! A minimal JSON reader, used to validate our own Chrome-trace exports.
//!
//! The workspace is offline (no serde), but the CI smoke step and the
//! exporter proptests need to *parse back* what [`crate::chrome`] emits and
//! check the B/E event discipline. This is a small recursive-descent parser
//! covering the full JSON grammar — strict enough that "it parses" is a
//! meaningful exporter regression gate.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`, like JavaScript).
    Num(f64),
    /// String with escapes resolved.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs (duplicate keys preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs: \uD800-\uDBFF must be followed by
                        // a low surrogate.
                        if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("bad low surrogate".into());
                            }
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(c).ok_or("bad surrogate pair")?);
                        } else {
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        }
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) if c < 0x20 => return Err("raw control char in string".into()),
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes
                    // are valid — collect the full sequence.
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    self.pos = (start + len).min(self.bytes.len());
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "bad utf8")?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or("truncated \\u escape")?;
            let digit = (c as char).to_digit(16).ok_or("bad hex digit")?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(members)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn resolves_unicode_escapes() {
        assert_eq!(parse(r#""\u00e9""#).unwrap(), Json::Str("é".into()));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(
            parse("\"naïve – ok\"").unwrap(),
            Json::Str("naïve – ok".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "[1 2]",
            "\"\\q\"",
            "nul",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn duplicate_keys_first_wins_on_get() {
        let v = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k"), Some(&Json::Num(1.0)));
    }
}
