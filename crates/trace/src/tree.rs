//! Plain-text tree exporter — the `mclient -t` of traces, embeddable in a
//! harness report.

use crate::span::{lane_tree, Trace};

/// Renders a [`Trace`] as an indented per-thread tree with inclusive
/// milliseconds and attributes. Deterministic for a given trace.
pub fn render_tree(trace: &Trace) -> String {
    let mut out = String::new();
    for lane in &trace.lanes {
        out.push_str(&format!(
            "thread {} [{} span{}{}]\n",
            lane.label,
            lane.records.len(),
            if lane.records.len() == 1 { "" } else { "s" },
            if lane.dropped > 0 {
                format!(", {} dropped", lane.dropped)
            } else {
                String::new()
            }
        ));
        let (roots, children) = lane_tree(&lane.records);
        for &root in &roots {
            emit(lane, root, &children, 1, &mut out);
        }
    }
    out
}

fn emit(
    lane: &crate::span::LaneSnapshot,
    index: usize,
    children: &[Vec<usize>],
    depth: usize,
    out: &mut String,
) {
    let r = &lane.records[index];
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!(
        "{} {:.3} ms",
        r.name,
        r.duration_ns() as f64 / 1e6
    ));
    for (k, v) in &r.attrs {
        out.push_str(&format!("  {k}={v}"));
    }
    out.push('\n');
    for &c in &children[index] {
        emit(lane, c, children, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{AttrValue, LaneSnapshot, SpanId, SpanRecord};

    #[test]
    fn tree_shows_nesting_durations_attrs_and_drops() {
        let trace = Trace {
            lanes: vec![LaneSnapshot {
                label: "main".into(),
                lane_index: 0,
                records: vec![
                    SpanRecord {
                        id: SpanId(2),
                        parent: Some(SpanId(1)),
                        name: "execute".into(),
                        start_ns: 1_000_000,
                        end_ns: 3_500_000,
                        attrs: vec![("rows".into(), AttrValue::Int(42))],
                    },
                    SpanRecord {
                        id: SpanId(1),
                        parent: None,
                        name: "query".into(),
                        start_ns: 0,
                        end_ns: 4_000_000,
                        attrs: Vec::new(),
                    },
                ],
                dropped: 2,
            }],
        };
        let text = render_tree(&trace);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "thread main [2 spans, 2 dropped]");
        assert_eq!(lines[1], "  query 4.000 ms");
        assert_eq!(lines[2], "    execute 2.500 ms  rows=42");
    }
}
