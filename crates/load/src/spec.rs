//! What a load run *is*: arrival discipline, concurrency, query mix.
//!
//! The arrival model is an explicit design factor, not an accident of the
//! harness. A **closed loop** (each of N clients thinks, sends, waits)
//! throttles itself when the server slows down — offered load is a
//! function of the system under test. An **open loop** (a global arrival
//! schedule that marches on regardless of completions) keeps offering
//! work while the server struggles, which is what production traffic
//! does — and is the only discipline under which tail latencies around a
//! stall are honest. The two disagree most exactly where the numbers
//! matter most (at the knee), so the spec forces the experimenter to
//! choose one per arm and the report names the choice.

use minidb_net::BackoffPolicy;
use perfeval_stats::SplitMix64;

/// Arrival discipline for one load arm.
#[derive(Debug, Clone, PartialEq)]
pub enum Arrival {
    /// Closed loop: each client waits for its response, thinks for an
    /// exponentially distributed time with this mean (ms, seeded), then
    /// sends the next query. Offered rate adapts to the server.
    Closed {
        /// Mean think time between a response and the next request, ms.
        think_ms: f64,
    },
    /// Open loop, Poisson process: a global schedule of exponentially
    /// distributed inter-arrival gaps at this rate, partitioned
    /// round-robin over the connections. The schedule does not wait.
    OpenPoisson {
        /// Offered arrival rate, queries per second.
        rate_qps: f64,
    },
    /// Open loop, uniformly paced: arrival k is scheduled at `k / rate`.
    /// Same offered rate as [`Arrival::OpenPoisson`] without burstiness —
    /// the A/B pair that isolates burst effects on the tail.
    OpenPaced {
        /// Offered arrival rate, queries per second.
        rate_qps: f64,
    },
}

impl Arrival {
    /// The offered rate, q/s — `None` for the closed loop, whose offered
    /// rate is an *output* of the measurement, not an input.
    pub fn offered_qps(&self) -> Option<f64> {
        match self {
            Arrival::Closed { .. } => None,
            Arrival::OpenPoisson { rate_qps } | Arrival::OpenPaced { rate_qps } => Some(*rate_qps),
        }
    }

    /// Human-readable description for reports.
    pub fn describe(&self) -> String {
        match self {
            Arrival::Closed { think_ms } => {
                format!("closed-loop, mean think {think_ms:.1} ms")
            }
            Arrival::OpenPoisson { rate_qps } => {
                format!("open-loop poisson, {rate_qps:.1} q/s offered")
            }
            Arrival::OpenPaced { rate_qps } => {
                format!("open-loop paced, {rate_qps:.1} q/s offered")
            }
        }
    }
}

/// One load arm: who arrives when, asking what.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Arm label ("open/64/heavy") — carried into reports.
    pub name: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests per run, across all clients.
    pub requests: usize,
    /// Arrival discipline.
    pub arrival: Arrival,
    /// Query mix; each request draws one of these (seeded, uniform).
    pub mix: Vec<String>,
    /// Root seed for think times, the arrival schedule, and the mix draw.
    pub seed: u64,
    /// Relative-error bound of the latency histograms.
    pub rel_err: f64,
    /// Retry policy for dead connections and server rejections — the
    /// seeded bounded backoff shared with `minidb-net`. The default
    /// allows one immediate retry (the classic reconnect-and-retry-once
    /// containment); raise `max_attempts`/`base_ms` for overload arms.
    pub retry: BackoffPolicy,
    /// Per-query deadline carried in every `Query` frame header, ms
    /// (`0` = none). The server enforces it by cooperative cancellation;
    /// in an open loop the runner additionally anchors it at the
    /// *intended* arrival — a request whose deadline expired while it
    /// queued client-side is given up, not sent late (the
    /// coordinated-omission-honest reading of a deadline).
    pub deadline_ms: u32,
    /// Per-connection circuit breaker: open after this many consecutive
    /// server rejections (`0` disables the breaker).
    pub breaker_after: u32,
    /// Breaker cooldown before the half-open probe, ms.
    pub breaker_cooldown_ms: f64,
}

impl LoadSpec {
    /// A spec with the default seed and histogram resolution.
    pub fn new(name: &str, clients: usize, requests: usize, arrival: Arrival) -> Self {
        LoadSpec {
            name: name.to_owned(),
            clients,
            requests,
            arrival,
            mix: Vec::new(),
            seed: 20080408,
            rel_err: 0.01,
            retry: BackoffPolicy::retries(1).with_base_ms(0.0),
            deadline_ms: 0,
            breaker_after: 0,
            breaker_cooldown_ms: 25.0,
        }
    }

    /// Sets the query mix.
    pub fn mix(mut self, mix: Vec<String>) -> Self {
        self.mix = mix;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the retry policy (dead connections and server rejections).
    pub fn retry(mut self, policy: BackoffPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Sets the per-query deadline carried in the `Query` header
    /// (`0` = none).
    pub fn deadline_ms(mut self, ms: u32) -> Self {
        self.deadline_ms = ms;
        self
    }

    /// Arms the per-connection circuit breaker: open after `after`
    /// consecutive rejects, half-open probe after `cooldown_ms`.
    pub fn breaker(mut self, after: u32, cooldown_ms: f64) -> Self {
        self.breaker_after = after;
        self.breaker_cooldown_ms = cooldown_ms;
        self
    }

    /// The open-loop arrival schedule for replicate `rep`: intended send
    /// offsets from run start, in ns, one per request, non-decreasing.
    /// `None` for the closed loop (arrivals are response-driven).
    pub fn schedule_ns(&self, rep: u64) -> Option<Vec<u64>> {
        let rate = self.arrival.offered_qps()?;
        let gap_ns = 1e9 / rate.max(1e-9);
        let mut rng = SplitMix64::split(self.seed ^ 0x4c4f_4144, rep);
        let mut t = 0.0f64;
        let mut schedule = Vec::with_capacity(self.requests);
        for k in 0..self.requests {
            match self.arrival {
                Arrival::OpenPaced { .. } => schedule.push((k as f64 * gap_ns) as u64),
                Arrival::OpenPoisson { .. } => {
                    // Exponential inter-arrival via inverse CDF; clamp the
                    // uniform away from 1.0 so ln() stays finite.
                    let u = rng.next_f64().min(1.0 - 1e-12);
                    t += -(1.0 - u).ln() * gap_ns;
                    schedule.push(t as u64);
                }
                Arrival::Closed { .. } => unreachable!("offered_qps returned Some"),
            }
        }
        Some(schedule)
    }

    /// How many of the run's requests client `c` issues (round-robin
    /// partition of the total, so counts differ by at most one).
    pub fn requests_for_client(&self, c: usize) -> usize {
        let base = self.requests / self.clients.max(1);
        let extra = self.requests % self.clients.max(1);
        base + usize::from(c < extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_rate_is_open_loop_only() {
        assert_eq!(Arrival::Closed { think_ms: 1.0 }.offered_qps(), None);
        assert_eq!(
            Arrival::OpenPoisson { rate_qps: 250.0 }.offered_qps(),
            Some(250.0)
        );
        assert_eq!(
            Arrival::OpenPaced { rate_qps: 100.0 }.offered_qps(),
            Some(100.0)
        );
    }

    #[test]
    fn paced_schedule_is_uniform() {
        let spec = LoadSpec::new("t", 4, 10, Arrival::OpenPaced { rate_qps: 1000.0 });
        let s = spec.schedule_ns(0).unwrap();
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 0);
        // 1000 q/s → 1 ms gaps.
        assert_eq!(s[1], 1_000_000);
        assert_eq!(s[9], 9_000_000);
    }

    #[test]
    fn poisson_schedule_is_seeded_and_monotone() {
        let spec = LoadSpec::new("t", 4, 500, Arrival::OpenPoisson { rate_qps: 1000.0 });
        let a = spec.schedule_ns(0).unwrap();
        let b = spec.schedule_ns(0).unwrap();
        assert_eq!(a, b, "same seed, same replicate, same schedule");
        let c = spec.schedule_ns(1).unwrap();
        assert_ne!(a, c, "replicates draw different schedules");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        // Mean gap within 20% of 1 ms over 500 arrivals.
        let mean_gap = *a.last().unwrap() as f64 / (a.len() - 1) as f64;
        assert!(
            (0.8e6..1.25e6).contains(&mean_gap),
            "mean gap {mean_gap} ns"
        );
    }

    #[test]
    fn closed_loop_has_no_schedule() {
        let spec = LoadSpec::new("t", 4, 10, Arrival::Closed { think_ms: 1.0 });
        assert!(spec.schedule_ns(0).is_none());
    }

    #[test]
    fn request_partition_covers_the_total() {
        let spec = LoadSpec::new("t", 7, 100, Arrival::Closed { think_ms: 0.0 });
        let total: usize = (0..7).map(|c| spec.requests_for_client(c)).sum();
        assert_eq!(total, 100);
        let counts: Vec<usize> = (0..7).map(|c| spec.requests_for_client(c)).collect();
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
    }

    #[test]
    fn descriptions_name_the_discipline() {
        assert!(Arrival::Closed { think_ms: 2.0 }
            .describe()
            .contains("closed"));
        assert!(Arrival::OpenPoisson { rate_qps: 1.0 }
            .describe()
            .contains("poisson"));
        assert!(Arrival::OpenPaced { rate_qps: 1.0 }
            .describe()
            .contains("paced"));
    }
}
