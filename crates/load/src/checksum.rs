//! Result checksums: the bit-identity gate for the load path.
//!
//! Throughput numbers are worthless if the server under load returns
//! different answers than it does serially — a harness that only counts
//! queries/second would never notice. Every query in the mix has a
//! checksum computed once from an in-process [`minidb::Session`] run;
//! every result received over the load path is checksummed the same way
//! and compared. Floats go in as `to_bits()` (bit identity, not
//! approximate equality), exactly like `minidb-net`'s round-trip tests.

use std::collections::HashMap;

use minidb::{Catalog, Session, Value};

/// FNV-1a over a canonical encoding of the result rows. Order-sensitive:
/// the queries in a load mix are `ORDER BY`-stable or single-row, so row
/// order is part of the contract.
pub fn result_checksum(rows: &[Vec<Value>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&(rows.len() as u64).to_le_bytes());
    for row in rows {
        eat(&[0xFE]);
        for value in row {
            match value {
                Value::Int(i) => {
                    eat(&[1]);
                    eat(&i.to_le_bytes());
                }
                Value::Float(f) => {
                    eat(&[2]);
                    eat(&f.to_bits().to_le_bytes());
                }
                Value::Str(s) => {
                    eat(&[3]);
                    eat(&(s.len() as u64).to_le_bytes());
                    eat(s.as_bytes());
                }
                Value::Bool(b) => eat(&[4, u8::from(*b)]),
                Value::Null => eat(&[5]),
            }
        }
    }
    h
}

/// Runs every query of `mix` once, serially, in process, and returns the
/// SQL → checksum map the load runner verifies against.
///
/// # Panics
/// Panics if a mix query fails serially — a load arm over a broken query
/// is a design error, caught before any client connects.
pub fn expected_checksums(catalog: Catalog, mix: &[String]) -> HashMap<String, u64> {
    let mut session = Session::new(catalog);
    mix.iter()
        .map(|sql| {
            let result = session
                .query(sql)
                .run()
                .unwrap_or_else(|e| panic!("mix query failed serially: {e}\n{sql}"));
            (sql.clone(), result_checksum(&result.rows))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_deterministic_and_discriminating() {
        let a = vec![vec![Value::Int(1), Value::Float(2.5)]];
        let b = vec![vec![Value::Int(1), Value::Float(2.5)]];
        assert_eq!(result_checksum(&a), result_checksum(&b));
        let c = vec![vec![Value::Int(1), Value::Float(2.500001)]];
        assert_ne!(result_checksum(&a), result_checksum(&c));
        // Row order matters.
        let two = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let swapped = vec![vec![Value::Int(2)], vec![Value::Int(1)]];
        assert_ne!(result_checksum(&two), result_checksum(&swapped));
    }

    #[test]
    fn float_identity_is_bitwise() {
        let zero_pos = vec![vec![Value::Float(0.0)]];
        let zero_neg = vec![vec![Value::Float(-0.0)]];
        assert_ne!(
            result_checksum(&zero_pos),
            result_checksum(&zero_neg),
            "to_bits() distinguishes +0.0 from -0.0"
        );
    }

    #[test]
    fn value_kinds_do_not_collide() {
        let int = vec![vec![Value::Int(1)]];
        let boolean = vec![vec![Value::Bool(true)]];
        let null = vec![vec![Value::Null]];
        assert_ne!(result_checksum(&int), result_checksum(&boolean));
        assert_ne!(result_checksum(&boolean), result_checksum(&null));
    }

    #[test]
    fn empty_results_have_a_stable_checksum() {
        assert_eq!(result_checksum(&[]), result_checksum(&[]));
        assert_ne!(result_checksum(&[]), result_checksum(&[vec![]]));
    }
}
