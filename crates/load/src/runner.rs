//! The load generator: N real client connections against one server,
//! driven by the arrival discipline in the spec, recording
//! coordinated-omission-safe latencies.
//!
//! **Why intended time.** In an open loop, request k is *supposed* to
//! leave at schedule offset `t_k`. If the server stalls, a naive harness
//! (one that stamps latency at the moment it actually wrote the bytes)
//! silently converts server slowness into "the client sent later" — the
//! stall evaporates from the latency distribution. This harness stamps
//! every open-loop request with its schedule time and measures latency
//! from there: a 300 ms stall shows up as hundreds of requests with
//! hundreds of ms of latency, exactly what a user behind that stall
//! experiences. Both histograms are recorded so the divergence itself is
//! measurable (and tested).
//!
//! **Containment.** A flapping connection (injected `load.send` /
//! `load.recv` faults, or a real transport death) is a *scenario*: the
//! client reconnects through [`minidb_net::Client::reconnect`] and
//! retries under the spec's seeded [`minidb_net::BackoffPolicy`]; a
//! session that cannot be revived is counted as dropped and the arm's
//! report says so — the run never panics and the other sessions keep
//! their schedule.
//!
//! **Overload etiquette.** A typed server rejection
//! ([`NetError::Rejected`]) is not an error: the client honors the
//! server's `retry_after_ms` hint (or its own backoff, whichever is
//! longer), its per-connection circuit breaker counts the reject, and a
//! request that exhausts the retry budget — or finds the breaker open —
//! is a *give-up*, a first-class report field. Two deadline rules keep
//! the etiquette honest under backlog: a `DeadlineExceeded` rejection is
//! never retried (the deadline was the request's total budget), and in an
//! open loop the deadline is anchored at the *intended* arrival, so a
//! request that expired while queueing client-side is shed unsent.
//! Nothing is silently dropped: `completed + errors + give_ups` accounts
//! for every designed request of every surviving session.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

use minidb_net::{CircuitBreaker, Client, Connector, NetError, RejectCode, Transport};
use perfeval_fault::FaultRegistry;
use perfeval_stats::{LogHistogram, SplitMix64};
use perfeval_trace::Tracer;

use crate::checksum::result_checksum;
use crate::report::{LoadReport, PhaseTotals, RunStats, TAIL_QUANTILES};
use crate::spec::{Arrival, LoadSpec};

/// A thread-safe dialer: each client session clones it to (re)connect.
pub type Dialer = Arc<dyn Fn() -> io::Result<Box<dyn Transport>> + Send + Sync>;

/// In-flight request gauge with a high-water mark.
#[derive(Default)]
struct Gauge {
    current: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    fn enter(&self) {
        let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
        self.max.fetch_max(now, Ordering::SeqCst);
    }
    fn exit(&self) {
        self.current.fetch_sub(1, Ordering::SeqCst);
    }
}

/// What one client session brought home.
#[derive(Default)]
struct SessionOutcome {
    intended: Option<LogHistogram>,
    naive: Option<LogHistogram>,
    completed: u64,
    errors: u64,
    reconnects: u64,
    retries: u64,
    rejects: u64,
    give_ups: u64,
    breaker_opens: u64,
    dropped: bool,
    checksum_mismatches: u64,
    phases: PhaseTotals,
}

/// One replicate's merged bookkeeping.
struct RunTotals {
    errors: u64,
    reconnects: u64,
    retries: u64,
    rejects: u64,
    give_ups: u64,
    breaker_opens: u64,
    dropped_sessions: u64,
    checksum_mismatches: u64,
    phases: PhaseTotals,
    max_in_flight: u64,
}

/// Runs one [`LoadSpec`] arm against a server reachable through a
/// [`Dialer`].
pub struct LoadRunner {
    spec: LoadSpec,
    dial: Dialer,
    faults: Arc<FaultRegistry>,
    tracer: Option<Tracer>,
    expected: Option<Arc<HashMap<String, u64>>>,
}

impl LoadRunner {
    /// A runner with no fault injection, no tracing, and no checksum
    /// verification.
    pub fn new(spec: LoadSpec, dial: Dialer) -> Self {
        assert!(
            !spec.mix.is_empty(),
            "load spec needs a non-empty query mix"
        );
        assert!(spec.clients > 0, "load spec needs at least one client");
        LoadRunner {
            spec,
            dial,
            faults: Arc::new(FaultRegistry::disabled()),
            tracer: None,
            expected: None,
        }
    }

    /// Evaluates `load.send` / `load.recv` failpoints per request, keyed
    /// by client id with a 1-based per-client request ordinal as the
    /// attempt — a deterministically slow or flapping client.
    pub fn with_faults(mut self, faults: Arc<FaultRegistry>) -> Self {
        self.faults = faults;
        self
    }

    /// Records one `load.client` span per session (on threads named
    /// `client-N`), with every `net.query` span beneath it — stitched to
    /// the server's lanes by `minidb-net`'s span-id forwarding.
    pub fn traced(mut self, tracer: &Tracer) -> Self {
        self.tracer = Some(tracer.clone());
        self
    }

    /// Verifies every result against serial-execution checksums
    /// (SQL → checksum, from [`crate::checksum::expected_checksums`]);
    /// mismatches are counted and fail the arm's completeness.
    pub fn expecting(mut self, expected: HashMap<String, u64>) -> Self {
        self.expected = Some(Arc::new(expected));
        self
    }

    /// Runs one replicate.
    pub fn run(&self) -> LoadReport {
        self.run_replicated(1)
    }

    /// Runs `reps` replicates (distinct seeds, fresh connections) and
    /// aggregates: per-run quantiles feed the confidence intervals, the
    /// merged histograms feed the overall tail table.
    pub fn run_replicated(&self, reps: usize) -> LoadReport {
        let mut report = LoadReport {
            name: self.spec.name.clone(),
            arrival: self.spec.arrival.describe(),
            clients: self.spec.clients,
            offered_qps: self.spec.arrival.offered_qps(),
            runs: Vec::with_capacity(reps),
            intended: LogHistogram::new(self.spec.rel_err).expect("spec rel_err"),
            naive: LogHistogram::new(self.spec.rel_err).expect("spec rel_err"),
            requests: 0,
            errors: 0,
            reconnects: 0,
            dropped_sessions: 0,
            retries: 0,
            rejects: 0,
            give_ups: 0,
            breaker_opens: 0,
            checksum_mismatches: 0,
            max_in_flight: 0,
            phases: PhaseTotals::default(),
        };
        for rep in 0..reps {
            let (stats, run_intended, run_naive, totals) = self.run_once(rep as u64);
            report.requests += stats.completed;
            report.errors += totals.errors;
            report.reconnects += totals.reconnects;
            report.retries += totals.retries;
            report.rejects += totals.rejects;
            report.give_ups += totals.give_ups;
            report.breaker_opens += totals.breaker_opens;
            report.dropped_sessions += totals.dropped_sessions;
            report.checksum_mismatches += totals.checksum_mismatches;
            report.max_in_flight = report.max_in_flight.max(totals.max_in_flight);
            report.phases.add(&totals.phases);
            report.intended.merge(&run_intended).expect("same rel_err");
            report.naive.merge(&run_naive).expect("same rel_err");
            report.runs.push(stats);
        }
        report
    }

    /// One replicate: spawn the sessions, release them simultaneously,
    /// gather and merge their outcomes.
    fn run_once(&self, rep: u64) -> (RunStats, LogHistogram, LogHistogram, RunTotals) {
        let spec = &self.spec;
        let schedule = spec.schedule_ns(rep).map(Arc::new);
        let gauge = Arc::new(Gauge::default());
        // Two-phase start: every session dials and parks on `ready`, the
        // coordinator stamps t=0, `go` releases them — so schedule offsets
        // never include connect/spawn time.
        let ready = Arc::new(Barrier::new(spec.clients + 1));
        let go = Arc::new(Barrier::new(spec.clients + 1));
        let start: Arc<OnceLock<Instant>> = Arc::new(OnceLock::new());

        let mut joins = Vec::with_capacity(spec.clients);
        for id in 0..spec.clients {
            let session = SessionTask {
                id,
                rep,
                spec: spec.clone(),
                schedule: schedule.clone(),
                dial: Arc::clone(&self.dial),
                faults: Arc::clone(&self.faults),
                tracer: self.tracer.clone(),
                expected: self.expected.clone(),
                gauge: Arc::clone(&gauge),
                ready: Arc::clone(&ready),
                go: Arc::clone(&go),
                start: Arc::clone(&start),
            };
            joins.push(
                std::thread::Builder::new()
                    .name(format!("client-{id}"))
                    .spawn(move || session.run())
                    .expect("spawn client thread"),
            );
        }
        ready.wait();
        start.set(Instant::now()).expect("start stamped once");
        go.wait();

        let mut intended = LogHistogram::new(spec.rel_err).expect("spec rel_err");
        let mut naive = LogHistogram::new(spec.rel_err).expect("spec rel_err");
        let mut completed = 0u64;
        let mut totals = RunTotals {
            errors: 0,
            reconnects: 0,
            retries: 0,
            rejects: 0,
            give_ups: 0,
            breaker_opens: 0,
            dropped_sessions: 0,
            checksum_mismatches: 0,
            phases: PhaseTotals::default(),
            max_in_flight: 0,
        };
        for join in joins {
            let outcome = join.join().expect("client threads contain their failures");
            if let Some(h) = &outcome.intended {
                intended.merge(h).expect("same rel_err");
            }
            if let Some(h) = &outcome.naive {
                naive.merge(h).expect("same rel_err");
            }
            completed += outcome.completed;
            totals.errors += outcome.errors;
            totals.reconnects += outcome.reconnects;
            totals.retries += outcome.retries;
            totals.rejects += outcome.rejects;
            totals.give_ups += outcome.give_ups;
            totals.breaker_opens += outcome.breaker_opens;
            totals.checksum_mismatches += outcome.checksum_mismatches;
            totals.dropped_sessions += u64::from(outcome.dropped);
            totals.phases.add(&outcome.phases);
        }
        let wall_secs = start.get().expect("stamped").elapsed().as_secs_f64();
        totals.max_in_flight = gauge.max.load(Ordering::SeqCst);

        let mut tail_ms = [0.0; 5];
        for (i, (_, q)) in TAIL_QUANTILES.iter().enumerate() {
            tail_ms[i] = intended.quantile(*q).unwrap_or(0.0);
        }
        let stats = RunStats {
            wall_secs,
            completed,
            achieved_qps: completed as f64 / wall_secs.max(1e-9),
            tail_ms,
            naive_p999_ms: naive.quantile(0.999).unwrap_or(0.0),
        };
        (stats, intended, naive, totals)
    }
}

/// One client session's full task state.
struct SessionTask {
    id: usize,
    rep: u64,
    spec: LoadSpec,
    schedule: Option<Arc<Vec<u64>>>,
    dial: Dialer,
    faults: Arc<FaultRegistry>,
    tracer: Option<Tracer>,
    expected: Option<Arc<HashMap<String, u64>>>,
    gauge: Arc<Gauge>,
    ready: Arc<Barrier>,
    go: Arc<Barrier>,
    start: Arc<OnceLock<Instant>>,
}

impl SessionTask {
    fn run(self) -> SessionOutcome {
        let mut outcome = SessionOutcome {
            intended: Some(LogHistogram::new(self.spec.rel_err).expect("spec rel_err")),
            naive: Some(LogHistogram::new(self.spec.rel_err).expect("spec rel_err")),
            ..SessionOutcome::default()
        };
        let dial = Arc::clone(&self.dial);
        let connector: Connector = Box::new(move || dial());
        let client = Client::connect_via(
            connector,
            Arc::new(FaultRegistry::disabled()),
            self.id as u64,
        );
        let mut client = match client {
            Ok(c) => {
                let c = c.with_deadline_ms(self.spec.deadline_ms);
                match &self.tracer {
                    Some(t) => c.traced(t),
                    None => c,
                }
            }
            Err(_) => {
                // Could not even join the run: park on both barriers so
                // the rest of the fleet is not deadlocked, then report.
                self.ready.wait();
                self.go.wait();
                outcome.dropped = true;
                return outcome;
            }
        };

        let mut span = self.tracer.as_ref().map(|t| t.span("load.client"));
        if let Some(g) = span.as_mut() {
            g.attr("client", self.id as i64)
                .attr("rep", self.rep as i64);
        }

        let mut rng = SplitMix64::split(self.spec.seed ^ self.rep, self.id as u64);
        let mut breaker =
            CircuitBreaker::new(self.spec.breaker_after, self.spec.breaker_cooldown_ms);
        // Decorrelates retry jitter across clients and replicates.
        let retry_key = (self.rep << 32) ^ self.id as u64;
        self.ready.wait();
        self.go.wait();
        let start = *self.start.get().expect("coordinator stamped start");

        // The list of (ordinal, intended_offset_ns) this session owns.
        // Closed loop: intended == actual send time (think-time driven),
        // marked by None.
        let my_requests: Vec<Option<u64>> = match &self.schedule {
            Some(schedule) => (self.id..schedule.len())
                .step_by(self.spec.clients)
                .map(|k| Some(schedule[k]))
                .collect(),
            None => vec![None; self.spec.requests_for_client(self.id)],
        };

        for (ordinal0, intended_offset) in my_requests.into_iter().enumerate() {
            let ordinal = ordinal0 as u32 + 1;
            let sql = &self.spec.mix[rng.next_below(self.spec.mix.len() as u64) as usize];

            let intended_ns = match intended_offset {
                Some(offset) => {
                    // Open loop: wait for the schedule — and if the run is
                    // behind (server backlog), send immediately; the
                    // schedule does NOT slip.
                    let elapsed = start.elapsed().as_nanos() as u64;
                    if offset > elapsed {
                        std::thread::sleep(Duration::from_nanos(offset - elapsed));
                    }
                    offset
                }
                None => {
                    // Closed loop: think, then the intended time IS now.
                    if let Arrival::Closed { think_ms } = self.spec.arrival {
                        if think_ms > 0.0 {
                            let u = rng.next_f64().min(1.0 - 1e-12);
                            let think = -(1.0 - u).ln() * think_ms;
                            std::thread::sleep(Duration::from_nanos((think * 1e6) as u64));
                        }
                    }
                    start.elapsed().as_nanos() as u64
                }
            };

            // Coordinated-omission-honest deadlines: a query's deadline is
            // anchored at its *intended* arrival, not at whenever a
            // backlogged client got around to sending it. A request whose
            // deadline already expired while it queued client-side is shed
            // here — a give-up, accounted — instead of being sent late and
            // recorded as a completion no deadline-bearing caller would
            // have waited for.
            if self.spec.deadline_ms > 0 && intended_offset.is_some() {
                let late_ms =
                    (start.elapsed().as_nanos() as u64).saturating_sub(intended_ns) as f64 / 1e6;
                if late_ms >= f64::from(self.spec.deadline_ms) {
                    outcome.give_ups += 1;
                    continue;
                }
            }

            // Deterministic client-side fault coordinates: one evaluation
            // per request (retries after a reconnect are not re-faulted,
            // so an Always-triggered fault degrades, never livelocks).
            self.faults.fire("load.send", self.id as u64, ordinal);
            let send_failed = self.faults.io_fails("load.send", self.id as u64);

            let sent_ns = start.elapsed().as_nanos() as u64;
            // The retry loop: every outcome of every attempt is accounted.
            // `None` means the request was given up (retry budget spent, or
            // the breaker refused it) — a first-class shed request.
            let mut attempts: u32 = 0;
            let final_result = loop {
                // Local shedding: an open breaker fails fast without
                // bothering the struggling server.
                if !breaker.allows(start.elapsed().as_secs_f64() * 1e3) {
                    break None;
                }
                attempts += 1;
                let mut result = if send_failed && attempts == 1 {
                    Err(NetError::Io(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected load.send failure",
                    )))
                } else {
                    self.gauge.enter();
                    let r = client.query(sql);
                    self.gauge.exit();
                    r
                };

                // The receive-side failpoint runs before the completion
                // stamp: an injected delay IS a slow client, visible in
                // the latency.
                if attempts == 1 {
                    self.faults.fire("load.recv", self.id as u64, ordinal);
                    if result.is_ok() && self.faults.io_fails("load.recv", self.id as u64) {
                        result = Err(NetError::Io(io::Error::new(
                            io::ErrorKind::ConnectionReset,
                            "injected load.recv failure",
                        )));
                    }
                }

                match result {
                    Ok(r) => {
                        breaker.on_success();
                        break Some(Ok(r));
                    }
                    // A deadline rejection is final: the deadline was the
                    // request's *total* time budget and it is spent — a
                    // retry cannot give the caller an answer in time. Shed
                    // it as a give-up, accounted.
                    Err(NetError::Rejected {
                        code: RejectCode::DeadlineExceeded,
                        ..
                    }) => {
                        outcome.rejects += 1;
                        breaker.on_reject(start.elapsed().as_secs_f64() * 1e3);
                        break None;
                    }
                    // Any other typed rejection: the server shed this
                    // request on purpose. Honor the longer of its hint and
                    // our own seeded backoff, then retry — or give up,
                    // accounted.
                    Err(NetError::Rejected { retry_after_ms, .. }) => {
                        outcome.rejects += 1;
                        breaker.on_reject(start.elapsed().as_secs_f64() * 1e3);
                        if !self.spec.retry.may_retry(attempts) {
                            break None;
                        }
                        let delay_ms = self
                            .spec
                            .retry
                            .delay_ms(retry_key, attempts + 1)
                            .max(f64::from(retry_after_ms));
                        if delay_ms > 0.0 {
                            std::thread::sleep(Duration::from_nanos((delay_ms * 1e6) as u64));
                        }
                        outcome.retries += 1;
                    }
                    // A database error is an answer, not an outage: no
                    // retry, the request is done.
                    Err(NetError::Db(e)) => break Some(Err(NetError::Db(e))),
                    // Dead connection: revive it, then retry under the
                    // same bounded policy.
                    Err(_) => {
                        if client.reconnect().is_err() {
                            // Session unrevivable: abandon it, containedly.
                            outcome.breaker_opens = breaker.opens();
                            outcome.dropped = true;
                            return outcome;
                        }
                        outcome.reconnects += 1;
                        if !self.spec.retry.may_retry(attempts) {
                            break None;
                        }
                        let delay_ms = self.spec.retry.delay_ms(retry_key, attempts + 1);
                        if delay_ms > 0.0 {
                            std::thread::sleep(Duration::from_nanos((delay_ms * 1e6) as u64));
                        }
                        outcome.retries += 1;
                    }
                }
            };

            let done_ns = start.elapsed().as_nanos() as u64;
            match final_result {
                None => outcome.give_ups += 1,
                Some(Ok(r)) => {
                    outcome.completed += 1;
                    outcome
                        .intended
                        .as_mut()
                        .expect("init above")
                        .record(done_ns.saturating_sub(intended_ns) as f64 / 1e6);
                    outcome
                        .naive
                        .as_mut()
                        .expect("init above")
                        .record(done_ns.saturating_sub(sent_ns) as f64 / 1e6);
                    outcome.phases.add(&PhaseTotals {
                        server_user_ms: r.server_user_ms(),
                        server_real_ms: r.server_real_ms(),
                        serialize_ms: r.serialize_ms(),
                        wire_ms: r.wire_ms,
                        print_ms: r.print_ms,
                        client_real_ms: r.client_real_ms,
                    });
                    if let Some(expected) = &self.expected {
                        if let Some(&want) = expected.get(sql.as_str()) {
                            if result_checksum(&r.rows) != want {
                                outcome.checksum_mismatches += 1;
                            }
                        }
                    }
                }
                Some(Err(_)) => outcome.errors += 1,
            }
        }
        outcome.breaker_opens = breaker.opens();
        let _ = client.close();
        outcome
    }
}
