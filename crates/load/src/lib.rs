//! # perfeval-load
//!
//! A multi-client load harness over `minidb-net`: hundreds of concurrent
//! client sessions against one server, with **honest tail latencies**.
//!
//! The paper this repository reproduces teaches that *where the
//! stopwatch sits* decides what a number means. At production-like
//! concurrency a second trap appears: *when the stopwatch starts*.
//! This crate makes both choices explicit:
//!
//! * **Arrival discipline is a design factor** ([`spec::Arrival`]).
//!   Closed-loop clients throttle themselves when the server slows; an
//!   open-loop schedule keeps offering work. The two disagree exactly at
//!   the knee of the throughput curve — so each arm names its discipline
//!   and the report carries it.
//! * **Coordinated omission is designed out** ([`runner`]). Open-loop
//!   latency is measured from the *intended* send time on the arrival
//!   schedule, not from whenever the client got around to sending. Both
//!   the safe and the naive histogram are recorded; the workspace test
//!   `tests/load_harness.rs` stalls a server mid-run and asserts the two
//!   p99.9s diverge.
//! * **Tails, with confidence intervals** ([`report`]). Latencies stream
//!   into a mergeable log-bucketed sketch
//!   ([`perfeval_stats::LogHistogram`], bounded relative error), and
//!   quantile CIs follow the Kalibera–Jones idiom: computed over
//!   replicated *runs*, never over autocorrelated raw requests.
//! * **Failures are contained, and answers are checked** ([`checksum`]).
//!   A flapping connection reconnects and retries; a dead session is
//!   counted, not crashed. Every result can be checksummed against
//!   serial in-process execution — bit-identical floats — because a
//!   throughput number over wrong answers is not a measurement.
//!
//! ## Quick example
//!
//! ```no_run
//! use std::sync::Arc;
//! use minidb_net::{LoopbackEndpoint, Server, Transport};
//! use perfeval_load::{Arrival, Dialer, LoadRunner, LoadSpec};
//!
//! # fn catalog() -> minidb::Catalog { minidb::Catalog::new() }
//! let ep = LoopbackEndpoint::new();
//! let dial = ep.connector();
//! let server = Server::builder().transport(ep).serve(|| minidb::Session::new(catalog()));
//!
//! let spec = LoadSpec::new("open/16", 16, 2_000, Arrival::OpenPoisson { rate_qps: 500.0 })
//!     .mix(vec!["SELECT 1".into()]);
//! let dialer: Dialer = Arc::new(move || Ok(Box::new(dial.connect()?) as Box<dyn Transport>));
//! let report = LoadRunner::new(spec, dialer).run_replicated(3);
//! for line in report.render_lines() {
//!     println!("{line}");
//! }
//! ```

#![warn(missing_docs)]

pub mod checksum;
pub mod report;
pub mod runner;
pub mod spec;

pub use checksum::{expected_checksums, result_checksum};
pub use report::{LoadReport, PhaseTotals, RunStats, TAIL_QUANTILES};
pub use runner::{Dialer, LoadRunner};
pub use spec::{Arrival, LoadSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{Catalog, DataType, Session, TableBuilder, Value};
    use minidb_net::{LoopbackEndpoint, Server, Transport};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        let mut t = TableBuilder::new("nums")
            .column("x", DataType::Int)
            .column("y", DataType::Float)
            .build();
        for i in 0..500 {
            t.push_row(vec![Value::Int(i), Value::Float(i as f64 / 8.0)])
                .unwrap();
        }
        catalog.register(t).unwrap();
        catalog
    }

    fn mix() -> Vec<String> {
        vec![
            "SELECT COUNT(*) FROM nums WHERE x < 250".to_owned(),
            "SELECT SUM(y) FROM nums".to_owned(),
        ]
    }

    fn run_arm(spec: LoadSpec) -> LoadReport {
        // Sharded default: the load tests double as coverage for the
        // event-driven core under concurrent clients.
        run_arm_in(spec, minidb_net::ServerMode::default())
    }

    fn run_arm_in(spec: LoadSpec, mode: minidb_net::ServerMode) -> LoadReport {
        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        // Pinning is off — parallel test processes would stack every
        // server onto cores 0..N and the tail asserts would measure
        // that pileup.
        let server = Server::builder()
            .transport(ep)
            .mode(mode)
            .pin_cores(false)
            .serve(|| Session::new(catalog()));
        let dialer: Dialer = Arc::new(move || Ok(Box::new(dial.connect()?) as Box<dyn Transport>));
        let expected = expected_checksums(catalog(), &spec.mix);
        let report = LoadRunner::new(spec, dialer)
            .expecting(expected)
            .run_replicated(2);
        server.shutdown();
        report
    }

    #[test]
    fn closed_loop_arm_completes_cleanly() {
        let spec = LoadSpec::new("closed/8", 8, 160, Arrival::Closed { think_ms: 0.2 }).mix(mix());
        let report = run_arm(spec);
        assert_eq!(report.requests, 320, "160 requests x 2 runs");
        assert!(report.is_complete(), "{:?}", report.render_lines());
        assert_eq!(report.checksum_mismatches, 0);
        assert_eq!(report.offered_qps, None);
        assert!(report.achieved_qps() > 0.0);
        assert!(report.intended.count() == 320);
        assert_eq!(report.runs.len(), 2);
        // Tail is monotone: p50 <= p99 <= max.
        for run in &report.runs {
            assert!(run.tail_ms[0] <= run.tail_ms[2]);
            assert!(run.tail_ms[2] <= run.tail_ms[4]);
        }
    }

    #[test]
    fn open_loop_arm_reports_offered_vs_achieved() {
        let spec =
            LoadSpec::new("open/4", 4, 200, Arrival::OpenPoisson { rate_qps: 2_000.0 }).mix(mix());
        // Thread-per-conn here: this test pins the *harness's* CO
        // accounting on a healthy server, and the dedicated-thread core
        // has the steadier debug-build tail under parallel test runs (a
        // descheduled shard delays every connection placed on it).
        let report = run_arm_in(spec, minidb_net::ServerMode::ThreadPerConn { workers: 4 });
        assert_eq!(report.offered_qps, Some(2_000.0));
        assert!(report.is_complete(), "{:?}", report.render_lines());
        assert!(report.max_in_flight >= 1);
        assert!(report.phases.client_real_ms > 0.0);
        // On a healthy in-process server the CO-safe and naive histograms
        // agree closely (the divergence test lives at the workspace root,
        // with an injected stall).
        assert!(report.co_gap_p999_ms() < 50.0);
    }

    #[test]
    fn load_spans_land_in_the_trace() {
        let tracer = perfeval_trace::Tracer::new();
        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        let server = Server::builder()
            .transport(ep)
            .pin_cores(false)
            .traced(&tracer)
            .serve(|| Session::new(catalog()));
        let dialer: Dialer = Arc::new(move || Ok(Box::new(dial.connect()?) as Box<dyn Transport>));
        let spec = LoadSpec::new("traced/2", 2, 8, Arrival::Closed { think_ms: 0.0 }).mix(mix());
        let report = LoadRunner::new(spec, dialer).traced(&tracer).run();
        assert!(report.is_complete());
        // Join the workers before snapshotting: the sharded core closes its
        // `net.serve` span just after the client sees `Done`.
        server.wait();

        let trace = tracer.snapshot();
        let clients: Vec<_> = trace.find("load.client").collect();
        assert_eq!(clients.len(), 2, "one span per session");
        let queries: Vec<_> = trace.find("net.query").collect();
        assert_eq!(queries.len(), 8, "one span per request");
        // Client spans parent their queries; the server side stitches
        // net.serve under net.query (pinned in minidb-net's own tests).
        let client_ids: Vec<_> = clients.iter().map(|s| s.id).collect();
        for q in &queries {
            assert!(q.parent.is_some_and(|p| client_ids.contains(&p)));
        }
        assert!(trace.find("net.serve").count() >= 8);
    }

    #[test]
    fn wrong_answers_are_counted_not_ignored() {
        // Expect checksums computed against a DIFFERENT catalog: every
        // result must mismatch — proving the gate actually bites.
        let ep = LoopbackEndpoint::new();
        let dial = ep.connector();
        let server = Server::builder()
            .transport(ep)
            .mode(minidb_net::ServerMode::ThreadPerConn { workers: 2 })
            .serve(|| Session::new(catalog()));
        let dialer: Dialer = Arc::new(move || Ok(Box::new(dial.connect()?) as Box<dyn Transport>));
        let mut wrong = Catalog::new();
        let mut t = TableBuilder::new("nums")
            .column("x", DataType::Int)
            .column("y", DataType::Float)
            .build();
        t.push_row(vec![Value::Int(7), Value::Float(7.0)]).unwrap();
        wrong.register(t).unwrap();
        let spec = LoadSpec::new("wrong/2", 2, 10, Arrival::Closed { think_ms: 0.0 }).mix(mix());
        let expected = expected_checksums(wrong, &spec.mix);
        let report = LoadRunner::new(spec, dialer).expecting(expected).run();
        server.shutdown();
        assert_eq!(report.checksum_mismatches, 10);
        assert!(!report.is_complete());
        assert!(!report.to_section().is_complete());
    }
}
