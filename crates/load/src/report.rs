//! What a load run produced, and how it says so honestly.
//!
//! The report carries **two** latency histograms per arm: the
//! coordinated-omission-safe one (latency measured from the *intended*
//! send time on the arrival schedule) and the naive one (measured from
//! the actual send). On a healthy server they agree; around a stall they
//! diverge, and the naive histogram is the lie — `tests/load_harness.rs`
//! pins the divergence. Quantile confidence intervals follow the
//! Kalibera–Jones idiom: the replicated *run* is the unit of replication,
//! so each run contributes one estimate per quantile and the CI is over
//! runs, never over raw requests (which are autocorrelated).

use perfeval_harness::{LoadSection, LoadTailRow};
use perfeval_stats::ci::mean_confidence_interval;
use perfeval_stats::{ConfidenceInterval, LogHistogram, StatsError};

/// The tail quantiles every table reports, with labels.
pub const TAIL_QUANTILES: [(&str, f64); 5] = [
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
    ("p99.9", 0.999),
    ("max", 1.0),
];

/// Per-request phase time totals aggregated from `NetQueryResult` — the
/// paper's client/server decomposition, summed over the whole arm.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTotals {
    /// Server execute CPU time, ms.
    pub server_user_ms: f64,
    /// Server parse+optimize+execute wall, ms.
    pub server_real_ms: f64,
    /// Server result encode + write, ms.
    pub serialize_ms: f64,
    /// Client-measured wire residual, ms.
    pub wire_ms: f64,
    /// Client sink time, ms.
    pub print_ms: f64,
    /// Client total wall, ms.
    pub client_real_ms: f64,
}

impl PhaseTotals {
    /// Accumulates another total (another request, client, or run).
    pub fn add(&mut self, other: &PhaseTotals) {
        self.server_user_ms += other.server_user_ms;
        self.server_real_ms += other.server_real_ms;
        self.serialize_ms += other.serialize_ms;
        self.wire_ms += other.wire_ms;
        self.print_ms += other.print_ms;
        self.client_real_ms += other.client_real_ms;
    }

    /// Fraction of client wall time spent on delivery
    /// (serialize + wire + print), 0..=1.
    pub fn delivery_share(&self) -> f64 {
        if self.client_real_ms <= 0.0 {
            0.0
        } else {
            ((self.serialize_ms + self.wire_ms + self.print_ms) / self.client_real_ms)
                .clamp(0.0, 1.0)
        }
    }
}

/// One replicated run's summary statistics.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Wall time of the run, seconds.
    pub wall_secs: f64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Achieved throughput, q/s.
    pub achieved_qps: f64,
    /// Intended-time quantiles [p50, p90, p99, p99.9, max], ms — indexed
    /// parallel to [`TAIL_QUANTILES`].
    pub tail_ms: [f64; 5],
    /// Naive (send-time) p99.9, ms — kept so reports can show the
    /// coordinated-omission gap.
    pub naive_p999_ms: f64,
}

/// Everything one load arm measured, across its replicated runs.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Arm label, from the spec.
    pub name: String,
    /// Arrival discipline description.
    pub arrival: String,
    /// Designed concurrent clients.
    pub clients: usize,
    /// Offered rate, q/s (open loop only).
    pub offered_qps: Option<f64>,
    /// Per-replicate run summaries.
    pub runs: Vec<RunStats>,
    /// Intended-time latencies, merged over all runs (CO-safe).
    pub intended: LogHistogram,
    /// Send-time latencies, merged over all runs (the naive measurement,
    /// kept for the divergence check).
    pub naive: LogHistogram,
    /// Requests completed across all runs.
    pub requests: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Successful reconnects after a dead connection.
    pub reconnects: u64,
    /// Sessions abandoned after reconnection failed.
    pub dropped_sessions: u64,
    /// Retry attempts made beyond each request's first attempt.
    pub retries: u64,
    /// Typed `Rejected` answers received from the server (overload
    /// shedding, deadline enforcement, drain mode).
    pub rejects: u64,
    /// Requests abandoned after the retry budget was exhausted or the
    /// circuit breaker refused them — accounted here, never silently
    /// dropped.
    pub give_ups: u64,
    /// Times a client's circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Results whose checksum differed from serial execution.
    pub checksum_mismatches: u64,
    /// High-water mark of concurrently outstanding requests.
    pub max_in_flight: u64,
    /// Aggregated phase decomposition over every completed request.
    pub phases: PhaseTotals,
}

impl LoadReport {
    /// Achieved throughput per run, q/s.
    pub fn achieved_qps_runs(&self) -> Vec<f64> {
        self.runs.iter().map(|r| r.achieved_qps).collect()
    }

    /// Mean achieved throughput over runs, q/s.
    pub fn achieved_qps(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(|r| r.achieved_qps).sum::<f64>() / self.runs.len() as f64
    }

    /// Confidence interval (over replicated runs) for tail quantile
    /// index `i` of [`TAIL_QUANTILES`].
    ///
    /// # Errors
    /// `NotEnoughData` with fewer than two runs.
    pub fn tail_ci(&self, i: usize, level: f64) -> Result<ConfidenceInterval, StatsError> {
        let per_run: Vec<f64> = self.runs.iter().map(|r| r.tail_ms[i]).collect();
        mean_confidence_interval(&per_run, level)
    }

    /// The coordinated-omission gap: intended-time p99.9 minus naive
    /// p99.9, ms, over the merged histograms. Near zero on a healthy
    /// server; large and positive around stalls.
    pub fn co_gap_p999_ms(&self) -> f64 {
        let intended = self.intended.quantile(0.999).unwrap_or(0.0);
        let naive = self.naive.quantile(0.999).unwrap_or(0.0);
        intended - naive
    }

    /// True when every designed session completed and no request failed
    /// or was given up — the condition under which the tail table speaks
    /// for the whole designed workload. Shedding arms are expected to be
    /// incomplete; that is the point of measuring them.
    pub fn is_complete(&self) -> bool {
        self.errors == 0
            && self.dropped_sessions == 0
            && self.checksum_mismatches == 0
            && self.give_ups == 0
    }

    /// Converts to the harness report section (plain data).
    pub fn to_section(&self) -> LoadSection {
        LoadSection {
            arm: self.name.clone(),
            arrival: self.arrival.clone(),
            clients: self.clients,
            offered_qps: self.offered_qps,
            achieved_qps: self.achieved_qps_runs(),
            requests: self.requests,
            errors: self.errors,
            reconnects: self.reconnects,
            // Checksum mismatches drop the arm from "complete" the same
            // way lost sessions do: the numbers no longer describe the
            // designed workload.
            dropped_sessions: self.dropped_sessions + self.checksum_mismatches,
            retries: self.retries,
            rejects: self.rejects,
            give_ups: self.give_ups,
            breaker_opens: self.breaker_opens,
            max_in_flight: self.max_in_flight,
            tail: TAIL_QUANTILES
                .iter()
                .enumerate()
                .map(|(i, (label, _))| LoadTailRow {
                    quantile: (*label).to_owned(),
                    per_run_ms: self.runs.iter().map(|r| r.tail_ms[i]).collect(),
                })
                .collect(),
        }
    }

    /// One-line-per-fact rendering for terminal output.
    pub fn render_lines(&self) -> Vec<String> {
        let mut lines = vec![
            format!("{} — {}", self.name, self.arrival),
            match self.offered_qps {
                Some(o) => format!(
                    "offered {o:.1} q/s, achieved {:.1} q/s over {} run(s)",
                    self.achieved_qps(),
                    self.runs.len()
                ),
                None => format!(
                    "closed loop: achieved {:.1} q/s over {} run(s)",
                    self.achieved_qps(),
                    self.runs.len()
                ),
            },
            format!(
                "{} client(s), {} request(s), {} error(s), {} reconnect(s), \
                 {} dropped, {} checksum mismatch(es), max {} in flight",
                self.clients,
                self.requests,
                self.errors,
                self.reconnects,
                self.dropped_sessions,
                self.checksum_mismatches,
                self.max_in_flight
            ),
            format!(
                "overload etiquette: {} retry(ies), {} reject(s), {} give-up(s), \
                 {} breaker open(s)",
                self.retries, self.rejects, self.give_ups, self.breaker_opens
            ),
        ];
        for (i, (label, _)) in TAIL_QUANTILES.iter().enumerate() {
            let line = match self.tail_ci(i, 0.95) {
                Ok(ci) => format!(
                    "{label:>6}: {:.3} ms  [{:.3}, {:.3}] 95% CI over {} run(s)",
                    ci.estimate,
                    ci.lower,
                    ci.upper,
                    self.runs.len()
                ),
                Err(_) => {
                    let v = self.runs.first().map_or(0.0, |r| r.tail_ms[i]);
                    format!("{label:>6}: {v:.3} ms  (unreplicated!)")
                }
            };
            lines.push(line);
        }
        lines.push(format!(
            "phases (totals): server user {:.1} ms, server real {:.1} ms, serialize {:.1} ms, \
             wire {:.1} ms, print {:.1} ms — delivery share {:.0}%",
            self.phases.server_user_ms,
            self.phases.server_real_ms,
            self.phases.serialize_ms,
            self.phases.wire_ms,
            self.phases.print_ms,
            100.0 * self.phases.delivery_share()
        ));
        lines.push(format!(
            "CO gap at p99.9 (intended − naive): {:.3} ms",
            self.co_gap_p999_ms()
        ));
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> LoadReport {
        let mut intended = LogHistogram::latency_default();
        let mut naive = LogHistogram::latency_default();
        for i in 1..=1000 {
            intended.record(i as f64 / 100.0);
            naive.record(i as f64 / 120.0);
        }
        LoadReport {
            name: "open/16/light".into(),
            arrival: "open-loop poisson, 400.0 q/s offered".into(),
            clients: 16,
            offered_qps: Some(400.0),
            runs: vec![
                RunStats {
                    wall_secs: 1.0,
                    completed: 400,
                    achieved_qps: 395.0,
                    tail_ms: [1.0, 2.0, 4.0, 6.0, 8.0],
                    naive_p999_ms: 5.5,
                },
                RunStats {
                    wall_secs: 1.0,
                    completed: 400,
                    achieved_qps: 405.0,
                    tail_ms: [1.1, 2.1, 4.2, 6.3, 8.4],
                    naive_p999_ms: 5.8,
                },
            ],
            intended,
            naive,
            requests: 800,
            errors: 0,
            reconnects: 0,
            dropped_sessions: 0,
            retries: 0,
            rejects: 0,
            give_ups: 0,
            breaker_opens: 0,
            checksum_mismatches: 0,
            max_in_flight: 16,
            phases: PhaseTotals {
                server_user_ms: 100.0,
                server_real_ms: 150.0,
                serialize_ms: 30.0,
                wire_ms: 20.0,
                print_ms: 10.0,
                client_real_ms: 300.0,
            },
        }
    }

    #[test]
    fn tail_ci_is_over_runs() {
        let r = report();
        let ci = r.tail_ci(0, 0.95).unwrap();
        assert!((ci.estimate - 1.05).abs() < 1e-9, "mean of per-run p50s");
        assert!(ci.lower < 1.05 && ci.upper > 1.05);
    }

    #[test]
    fn achieved_is_the_run_mean() {
        assert!((report().achieved_qps() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn section_carries_tails_and_accounting() {
        let s = report().to_section();
        assert_eq!(s.arm, "open/16/light");
        assert_eq!(s.tail.len(), 5);
        assert_eq!(s.tail[3].quantile, "p99.9");
        assert_eq!(s.tail[3].per_run_ms, vec![6.0, 6.3]);
        assert_eq!(s.achieved_qps, vec![395.0, 405.0]);
        assert!(s.is_complete());
    }

    #[test]
    fn checksum_mismatches_make_the_section_partial() {
        let mut r = report();
        r.checksum_mismatches = 3;
        assert!(!r.is_complete());
        assert!(!r.to_section().is_complete());
    }

    #[test]
    fn render_names_every_quantile_and_the_co_gap() {
        let text = report().render_lines().join("\n");
        for needle in [
            "p50",
            "p90",
            "p99",
            "p99.9",
            "max",
            "CO gap",
            "delivery share",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert!(text.contains("offered 400.0 q/s"));
    }

    #[test]
    fn co_gap_reflects_histogram_divergence() {
        let r = report();
        // intended records values ~20% larger than naive.
        assert!(r.co_gap_p999_ms() > 0.0);
    }

    #[test]
    fn phase_totals_accumulate() {
        let mut a = PhaseTotals::default();
        a.add(&report().phases);
        a.add(&report().phases);
        assert!((a.server_user_ms - 200.0).abs() < 1e-9);
        assert!((a.delivery_share() - 0.2).abs() < 1e-9);
    }
}
