//! Effect significance: confidence intervals for effects and the
//! ANOVA-style F test.
//!
//! This closes the loop on the tutorial's common mistake #1: *"the
//! variation due to a factor must be compared to that due of errors"*. With
//! `r` replications of a 2^k design:
//!
//! * the error variance estimate is `s_e² = SSE / (2^k (r − 1))`,
//! * every effect coefficient has standard deviation
//!   `s_q = s_e / sqrt(2^k · r)`,
//! * a `100·level%` confidence interval for `q_S` is
//!   `q_S ± t(level; 2^k(r−1)) · s_q` — an effect whose interval contains
//!   zero is indistinguishable from noise,
//! * equivalently, `MS_S / MS_E ~ F(1, 2^k(r−1))` under the null, giving a
//!   p-value per effect.
//!
//! (Jain, *The Art of Computer Systems Performance Analysis*, ch. 18 — the
//! tutorial's cited source for its design chapter.)

use crate::effects::estimate_effects_replicated;
use crate::twolevel::TwoLevelDesign;
use crate::DesignError;
use perfeval_stats::ci::ConfidenceInterval;
use perfeval_stats::special::{f_cdf, student_t_two_sided};

/// One effect's significance record.
#[derive(Debug, Clone)]
pub struct EffectSignificance {
    /// Effect label ("A", "A·B", …).
    pub effect: String,
    /// Effect mask.
    pub mask: u32,
    /// Confidence interval for the coefficient.
    pub interval: ConfidenceInterval,
    /// F statistic (mean square of the effect over error mean square).
    pub f_statistic: f64,
    /// p-value under the null hypothesis "this effect is zero".
    pub p_value: f64,
    /// Is the effect significant at the chosen level (interval excludes 0)?
    pub significant: bool,
}

/// The full significance table.
#[derive(Debug, Clone)]
pub struct AnovaTable {
    /// Per-effect records, in mask order.
    pub effects: Vec<EffectSignificance>,
    /// Error variance estimate s_e².
    pub error_variance: f64,
    /// Error degrees of freedom 2^k (r − 1).
    pub error_dof: f64,
    /// Confidence level used.
    pub level: f64,
}

impl AnovaTable {
    /// The significant effects' labels.
    pub fn significant_effects(&self) -> Vec<&str> {
        self.effects
            .iter()
            .filter(|e| e.significant)
            .map(|e| e.effect.as_str())
            .collect()
    }

    /// Lookup by label.
    pub fn effect(&self, label: &str) -> Option<&EffectSignificance> {
        self.effects.iter().find(|e| e.effect == label)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "effect        q        {}% CI              F        p     signif\n",
            (self.level * 100.0) as u32
        );
        for e in &self.effects {
            out.push_str(&format!(
                "{:<9} {:>8.4}  [{:>8.4},{:>8.4}] {:>9.2} {:>8.4}   {}\n",
                e.effect,
                e.interval.estimate,
                e.interval.lower,
                e.interval.upper,
                e.f_statistic,
                e.p_value,
                if e.significant { "*" } else { "" }
            ));
        }
        out.push_str(&format!(
            "error variance s_e^2 = {:.6} ({} dof)\n",
            self.error_variance, self.error_dof
        ));
        out
    }
}

/// Computes per-effect confidence intervals and F tests from a replicated
/// two-level experiment.
///
/// Requires at least two replications of every run (otherwise there is no
/// error estimate — which is exactly the tutorial's point).
pub fn anova(
    design: &TwoLevelDesign,
    replicates: &[Vec<f64>],
    level: f64,
) -> Result<AnovaTable, DesignError> {
    if !(0.0 < level && level < 1.0) {
        return Err(DesignError::Invalid(
            "confidence level must be in (0,1)".into(),
        ));
    }
    let r = replicates.first().map(Vec::len).unwrap_or(0);
    if r < 2 || replicates.iter().any(|v| v.len() != r) {
        return Err(DesignError::Invalid(
            "anova requires >= 2 replications, equal per run".into(),
        ));
    }
    let model = estimate_effects_replicated(design, replicates)?;
    let n_runs = design.run_count() as f64;
    let reps = r as f64;
    let sse: f64 = replicates
        .iter()
        .map(|v| {
            let m = v.iter().sum::<f64>() / reps;
            v.iter().map(|y| (y - m) * (y - m)).sum::<f64>()
        })
        .sum();
    let error_dof = n_runs * (reps - 1.0);
    let error_variance = sse / error_dof;
    let s_q = (error_variance / (n_runs * reps)).sqrt();
    let t_crit = student_t_two_sided(level, error_dof);

    let mut effects = Vec::new();
    for (mask, q) in model.coefficients() {
        if mask == 0 {
            continue;
        }
        let half = t_crit * s_q;
        let interval = ConfidenceInterval {
            estimate: q,
            lower: q - half,
            upper: q + half,
            level,
        };
        // MS of the effect on 1 dof: SS = n_runs * reps * q².
        let ms_effect = n_runs * reps * q * q;
        let f_statistic = if error_variance > 0.0 {
            ms_effect / error_variance
        } else if q == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        let p_value = if f_statistic.is_infinite() {
            0.0
        } else {
            1.0 - f_cdf(f_statistic, 1.0, error_dof)
        };
        effects.push(EffectSignificance {
            effect: design.effect_label(mask),
            mask,
            significant: !interval.contains(0.0),
            interval,
            f_statistic,
            p_value,
        });
    }
    Ok(AnovaTable {
        effects,
        error_variance,
        error_dof,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfeval_stats::rng::SplitMix64;

    /// y = 50 + 8xA + 0xB + noise(±1-ish), 4 replications.
    fn noisy_system(noise: f64) -> (TwoLevelDesign, Vec<Vec<f64>>) {
        let d = TwoLevelDesign::full(&["A", "B"]);
        let mut rng = SplitMix64::new(99);
        let reps: Vec<Vec<f64>> = (0..4)
            .map(|run| {
                let signs = d.run_signs(run);
                (0..4)
                    .map(|_| 50.0 + 8.0 * signs[0] + noise * (rng.next_f64() - 0.5) * 2.0)
                    .collect()
            })
            .collect();
        (d, reps)
    }

    #[test]
    fn strong_effect_is_significant_weak_is_not() {
        let (d, reps) = noisy_system(1.0);
        let table = anova(&d, &reps, 0.95).unwrap();
        let a = table.effect("A").unwrap();
        let b = table.effect("B").unwrap();
        assert!(a.significant, "A is an 8-unit effect over ±1 noise");
        assert!(!b.significant, "B is pure noise");
        assert!(a.p_value < 0.001);
        assert!(b.p_value > 0.05, "p(B) = {}", b.p_value);
        assert_eq!(table.significant_effects(), vec!["A"]);
    }

    #[test]
    fn interval_width_shrinks_with_less_noise() {
        let (d, noisy) = noisy_system(4.0);
        let (_, quiet) = noisy_system(0.5);
        let wn = anova(&d, &noisy, 0.95)
            .unwrap()
            .effect("A")
            .unwrap()
            .interval
            .half_width();
        let wq = anova(&d, &quiet, 0.95)
            .unwrap()
            .effect("A")
            .unwrap()
            .interval
            .half_width();
        assert!(wn > 3.0 * wq, "noisy {wn} vs quiet {wq}");
    }

    #[test]
    fn noiseless_effects_are_exact() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        // Perfectly repeatable system: zero error variance.
        let reps: Vec<Vec<f64>> = (0..4)
            .map(|run| {
                let s = d.run_signs(run);
                vec![10.0 + 3.0 * s[0]; 2]
            })
            .collect();
        let table = anova(&d, &reps, 0.95).unwrap();
        assert_eq!(table.error_variance, 0.0);
        let a = table.effect("A").unwrap();
        assert!(a.significant);
        assert_eq!(a.p_value, 0.0);
        assert_eq!(a.interval.half_width(), 0.0);
        let b = table.effect("B").unwrap();
        assert!(!b.significant, "zero effect with zero noise is exactly 0");
        assert_eq!(b.f_statistic, 0.0);
    }

    #[test]
    fn requires_replication() {
        let d = TwoLevelDesign::full(&["A"]);
        assert!(anova(&d, &[vec![1.0], vec![2.0]], 0.95).is_err());
        assert!(anova(&d, &[vec![1.0, 2.0], vec![2.0]], 0.95).is_err());
        assert!(anova(&d, &[vec![1.0, 2.0], vec![2.0, 3.0]], 1.5).is_err());
    }

    #[test]
    fn f_and_t_agree() {
        // significant iff CI excludes 0 iff p < 1-level (same test, two
        // forms: F(1, v) = t(v)²).
        let (d, reps) = noisy_system(2.0);
        let table = anova(&d, &reps, 0.95).unwrap();
        for e in &table.effects {
            assert_eq!(
                e.significant,
                e.p_value < 0.05,
                "{}: p={} significant={}",
                e.effect,
                e.p_value,
                e.significant
            );
        }
    }

    #[test]
    fn render_marks_significance() {
        let (d, reps) = noisy_system(1.0);
        let table = anova(&d, &reps, 0.95).unwrap();
        let text = table.render();
        assert!(text.contains("95% CI"));
        assert!(text.contains('*'));
        assert!(text.contains("error variance"));
    }
}
