//! Factors and levels — the tutorial's experiment-design vocabulary
//! (slide 57):
//!
//! > **Factor** — any variable that affects the response variable.
//! > **Levels** of a factor: possible values.

/// A level a factor can take: numeric (scale factor 0.1) or categorical
//  ("MonetDB" vs "MySQL").
#[derive(Debug, Clone, PartialEq)]
pub enum Level {
    /// Numeric level.
    Num(f64),
    /// Categorical level.
    Cat(String),
}

impl Level {
    /// Numeric view.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Level::Num(v) => Some(*v),
            Level::Cat(_) => None,
        }
    }

    /// Label for output.
    pub fn label(&self) -> String {
        match self {
            Level::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v}")
                }
            }
            Level::Cat(s) => s.clone(),
        }
    }
}

impl From<f64> for Level {
    fn from(v: f64) -> Self {
        Level::Num(v)
    }
}

impl From<&str> for Level {
    fn from(s: &str) -> Self {
        Level::Cat(s.to_owned())
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A named factor with its levels.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    name: String,
    levels: Vec<Level>,
}

impl Factor {
    /// Creates a factor.
    ///
    /// # Panics
    /// Panics if fewer than two levels are given (a one-level "factor"
    /// cannot affect anything).
    pub fn new(name: &str, levels: Vec<Level>) -> Self {
        assert!(levels.len() >= 2, "factor {name} needs at least two levels");
        Factor {
            name: name.to_owned(),
            levels,
        }
    }

    /// Convenience: a numeric factor.
    pub fn numeric(name: &str, values: &[f64]) -> Self {
        Factor::new(name, values.iter().map(|&v| Level::Num(v)).collect())
    }

    /// Convenience: a categorical factor.
    pub fn categorical(name: &str, values: &[&str]) -> Self {
        Factor::new(
            name,
            values.iter().map(|&s| Level::Cat(s.to_owned())).collect(),
        )
    }

    /// Convenience: a two-level factor for 2^k designs (level 0 = "low" /
    /// −1, level 1 = "high" / +1).
    pub fn two_level(name: &str, low: Level, high: Level) -> Self {
        Factor::new(name, vec![low, high])
    }

    /// Factor name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The levels.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Number of levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// True if this is a two-level factor (usable in 2^k designs).
    pub fn is_two_level(&self) -> bool {
        self.levels.len() == 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let f = Factor::numeric("scale", &[0.1, 1.0, 10.0]);
        assert_eq!(f.name(), "scale");
        assert_eq!(f.level_count(), 3);
        assert!(!f.is_two_level());
        assert_eq!(f.levels()[1], Level::Num(1.0));
    }

    #[test]
    fn categorical_factor() {
        let f = Factor::categorical("engine", &["MonetDB", "MySQL"]);
        assert!(f.is_two_level());
        assert_eq!(f.levels()[0].label(), "MonetDB");
        assert!(f.levels()[0].as_num().is_none());
    }

    #[test]
    fn two_level_helper() {
        let f = Factor::two_level("memory", Level::Num(4.0), Level::Num(16.0));
        assert!(f.is_two_level());
        assert_eq!(f.levels()[1].as_num(), Some(16.0));
    }

    #[test]
    fn level_labels() {
        assert_eq!(Level::Num(4.0).label(), "4");
        assert_eq!(Level::Num(0.5).label(), "0.5");
        assert_eq!(Level::Cat("x".into()).label(), "x");
        assert_eq!(Level::from(2.0), Level::Num(2.0));
        assert_eq!(Level::from("hi"), Level::Cat("hi".into()));
        assert_eq!(format!("{}", Level::Num(3.0)), "3");
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn single_level_rejected() {
        let _ = Factor::numeric("x", &[1.0]);
    }
}
