//! The 2×2 interaction test of slide 58.
//!
//! > *Two factors interact if the effect of one depends on the level of
//! > another.*
//!
//! Given the four responses of a 2×2 table, the effect of changing A at
//! B = B1 is `y(A2,B1) − y(A1,B1)`; at B = B2 it is `y(A2,B2) − y(A1,B2)`.
//! If the two differ, the factors interact. (This is 4·q_AB of the effect
//! model, but the table form is how the tutorial presents it.)

/// A 2×2 response table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoByTwo {
    /// Response at (A1, B1).
    pub a1b1: f64,
    /// Response at (A2, B1).
    pub a2b1: f64,
    /// Response at (A1, B2).
    pub a1b2: f64,
    /// Response at (A2, B2).
    pub a2b2: f64,
}

impl TwoByTwo {
    /// Effect of switching A from A1 to A2 while B is at B1.
    pub fn a_effect_at_b1(&self) -> f64 {
        self.a2b1 - self.a1b1
    }

    /// Effect of switching A from A1 to A2 while B is at B2.
    pub fn a_effect_at_b2(&self) -> f64 {
        self.a2b2 - self.a1b2
    }

    /// The interaction magnitude: how much the A effect changes with B.
    /// Zero means no interaction. (Equal to 4·q_AB.)
    pub fn interaction(&self) -> f64 {
        self.a_effect_at_b2() - self.a_effect_at_b1()
    }

    /// Do the factors interact beyond `tolerance`?
    pub fn interacts(&self, tolerance: f64) -> bool {
        self.interaction().abs() > tolerance
    }

    /// Renders the slide-58 table.
    pub fn render(&self) -> String {
        format!(
            "      A1    A2\nB1 {:>5} {:>5}\nB2 {:>5} {:>5}\n",
            self.a1b1, self.a2b1, self.a1b2, self.a2b2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Slide 58, table (a): 3 5 / 6 8 — no interaction.
    #[test]
    fn slide_58_table_a_no_interaction() {
        let t = TwoByTwo {
            a1b1: 3.0,
            a2b1: 5.0,
            a1b2: 6.0,
            a2b2: 8.0,
        };
        assert_eq!(t.a_effect_at_b1(), 2.0);
        assert_eq!(t.a_effect_at_b2(), 2.0);
        assert_eq!(t.interaction(), 0.0);
        assert!(!t.interacts(1e-9));
    }

    /// Slide 58, table (b): 3 5 / 6 9 — interaction.
    #[test]
    fn slide_58_table_b_interaction() {
        let t = TwoByTwo {
            a1b1: 3.0,
            a2b1: 5.0,
            a1b2: 6.0,
            a2b2: 9.0,
        };
        assert_eq!(t.a_effect_at_b1(), 2.0);
        assert_eq!(t.a_effect_at_b2(), 3.0);
        assert_eq!(t.interaction(), 1.0);
        assert!(t.interacts(1e-9));
        assert!(!t.interacts(2.0), "tolerance respected");
    }

    #[test]
    fn interaction_equals_four_q_ab() {
        use crate::effects::estimate_effects;
        use crate::twolevel::TwoLevelDesign;
        let t = TwoByTwo {
            a1b1: 15.0,
            a2b1: 45.0,
            a1b2: 25.0,
            a2b2: 75.0,
        };
        let d = TwoLevelDesign::full(&["A", "B"]);
        let m = estimate_effects(&d, &[t.a1b1, t.a2b1, t.a1b2, t.a2b2]).unwrap();
        assert!((t.interaction() - 4.0 * m.coefficient(&["A", "B"]).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn render_shows_table() {
        let t = TwoByTwo {
            a1b1: 3.0,
            a2b1: 5.0,
            a1b2: 6.0,
            a2b2: 8.0,
        };
        let text = t.render();
        assert!(text.contains("A1"));
        assert!(text.contains("B2"));
        assert_eq!(text.lines().count(), 3);
    }
}
