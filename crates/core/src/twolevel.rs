//! 2^k full and 2^(k−p) fractional factorial designs as sign tables.
//!
//! A run is identified by the ±1 levels of each factor; effects are
//! identified by subsets of factors encoded as bitmasks (bit `j` set ⇒
//! factor `j` participates). The sign of effect column `S` in run `r` is
//! the product of the participating factors' signs — computable as a parity
//! (XOR popcount), which is what makes the sign-table method (slide 78)
//! mechanical.

use crate::alias::Generator;
use crate::DesignError;

/// A two-level design: `k` named factors, a list of runs, each run giving
/// every factor's sign.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoLevelDesign {
    factor_names: Vec<String>,
    /// For each run, bit `j` set ⇔ factor `j` is at its high (+1) level.
    runs: Vec<u32>,
    /// Generators used (empty for a full design).
    generators: Vec<Generator>,
    /// Number of base factors (k − p).
    base_factors: usize,
}

impl TwoLevelDesign {
    /// The full 2^k design in standard order: run `r`'s factor `j` is high
    /// iff bit `j` of `r` is set (so factor A toggles fastest).
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > 20` (2^20 runs ought to be enough).
    pub fn full(factor_names: &[&str]) -> TwoLevelDesign {
        let k = factor_names.len();
        assert!((1..=20).contains(&k), "full design supports 1..=20 factors");
        TwoLevelDesign {
            factor_names: factor_names.iter().map(|s| (*s).to_owned()).collect(),
            runs: (0..(1u32 << k)).collect(),
            generators: Vec::new(),
            base_factors: k,
        }
    }

    /// A 2^(k−p) fractional design: the first `k − p` names are base
    /// factors (full design among themselves); each generator defines one
    /// added factor as a product of base factors, e.g. `D = ABC`.
    ///
    /// Returns an error if a generator references an unknown base factor or
    /// defines a factor not in `factor_names`.
    pub fn fractional(
        factor_names: &[&str],
        generators: &[Generator],
    ) -> Result<TwoLevelDesign, DesignError> {
        let k = factor_names.len();
        let p = generators.len();
        if p >= k {
            return Err(DesignError::Invalid(format!(
                "{p} generators for {k} factors leaves no base design"
            )));
        }
        let base = k - p;
        let names: Vec<String> = factor_names.iter().map(|s| (*s).to_owned()).collect();
        // Each generator's defined factor must be one of the added factors,
        // and its word must reference only base factors.
        let mut added_masks: Vec<u32> = Vec::with_capacity(p);
        for (gi, g) in generators.iter().enumerate() {
            let expected_name = &names[base + gi];
            if g.defined() != expected_name {
                return Err(DesignError::Invalid(format!(
                    "generator {gi} must define factor {expected_name}, defines {}",
                    g.defined()
                )));
            }
            let mut mask = 0u32;
            for f in g.word() {
                let idx = names[..base]
                    .iter()
                    .position(|n| n == f)
                    .ok_or_else(|| DesignError::UnknownFactor(f.clone()))?;
                mask |= 1 << idx;
            }
            added_masks.push(mask);
        }
        let mut runs = Vec::with_capacity(1 << base);
        for r in 0..(1u32 << base) {
            let mut bits = r;
            for (gi, &mask) in added_masks.iter().enumerate() {
                // Added factor is high iff the product of its word is +1,
                // i.e. an even number of the word's factors are low. Sign
                // of the product = parity of low bits... Using +1 = bit
                // set: product sign is + iff popcount of (low levels among
                // mask) is even ⇔ popcount(!r & mask) even. Equivalently
                // popcount(r & mask) has the same parity as popcount(mask)
                // ... we encode: high ⇔ product of signs is +1.
                let low_count = (!r & mask).count_ones();
                if low_count % 2 == 0 {
                    bits |= 1 << (base + gi);
                }
            }
            runs.push(bits);
        }
        Ok(TwoLevelDesign {
            factor_names: names,
            runs,
            generators: generators.to_vec(),
            base_factors: base,
        })
    }

    /// Number of factors `k`.
    pub fn k(&self) -> usize {
        self.factor_names.len()
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Factor names.
    pub fn factor_names(&self) -> &[String] {
        &self.factor_names
    }

    /// The generators (empty for a full design).
    pub fn generators(&self) -> &[Generator] {
        &self.generators
    }

    /// True if this is a full 2^k design.
    pub fn is_full(&self) -> bool {
        self.generators.is_empty()
    }

    /// Sign (+1.0 / −1.0) of factor `j` in run `r`.
    pub fn factor_sign(&self, r: usize, j: usize) -> f64 {
        if self.runs[r] & (1 << j) != 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Sign of effect column `mask` (bitmask of participating factors) in
    /// run `r`: the product of the factor signs, i.e. −1 to the number of
    /// participating factors at their low level. `mask == 0` is the
    /// identity column I (always +1).
    pub fn effect_sign(&self, r: usize, mask: u32) -> f64 {
        let low_count = (!self.runs[r] & mask).count_ones();
        if low_count.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        }
    }

    /// Resolves factor names to an effect bitmask.
    pub fn effect_mask(&self, factors: &[&str]) -> Result<u32, DesignError> {
        let mut mask = 0u32;
        for f in factors {
            let idx = self
                .factor_names
                .iter()
                .position(|n| n == f)
                .ok_or_else(|| DesignError::UnknownFactor((*f).to_owned()))?;
            mask |= 1 << idx;
        }
        Ok(mask)
    }

    /// Renders an effect mask as a factor-name product ("I" for the empty
    /// mask).
    pub fn effect_label(&self, mask: u32) -> String {
        if mask == 0 {
            return "I".to_owned();
        }
        let mut parts = Vec::new();
        for (j, name) in self.factor_names.iter().enumerate() {
            if mask & (1 << j) != 0 {
                parts.push(name.clone());
            }
        }
        parts.join("·")
    }

    /// Every zero-sum property the tutorial's slide 103 highlights: each
    /// factor column sums to zero (both levels equally tested).
    pub fn columns_are_zero_sum(&self) -> bool {
        (0..self.k()).all(|j| {
            let sum: f64 = (0..self.run_count()).map(|r| self.factor_sign(r, j)).sum();
            sum == 0.0
        })
    }

    /// Orthogonality: any two distinct factor columns agree as often as
    /// they disagree (their dot product is zero).
    pub fn columns_are_orthogonal(&self) -> bool {
        for a in 0..self.k() {
            for b in (a + 1)..self.k() {
                let dot: f64 = (0..self.run_count())
                    .map(|r| self.factor_sign(r, a) * self.factor_sign(r, b))
                    .sum();
                if dot != 0.0 {
                    return false;
                }
            }
        }
        true
    }

    /// Renders the sign table (the slide 102/103 presentation).
    pub fn render(&self) -> String {
        let mut out = String::from("run");
        for name in &self.factor_names {
            out.push_str(&format!(" {name:>4}"));
        }
        out.push('\n');
        for r in 0..self.run_count() {
            out.push_str(&format!("{:>3}", r + 1));
            for j in 0..self.k() {
                out.push_str(&format!(
                    " {:>4}",
                    if self.factor_sign(r, j) > 0.0 {
                        "+1"
                    } else {
                        "-1"
                    }
                ));
            }
            out.push('\n');
        }
        out
    }

    /// The level assignment of run `r` as ±1 values.
    pub fn run_signs(&self, r: usize) -> Vec<f64> {
        (0..self.k()).map(|j| self.factor_sign(r, j)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias::Generator;

    #[test]
    fn full_2_2_standard_order() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        assert_eq!(d.run_count(), 4);
        assert_eq!(d.run_signs(0), vec![-1.0, -1.0]);
        assert_eq!(d.run_signs(1), vec![1.0, -1.0]);
        assert_eq!(d.run_signs(2), vec![-1.0, 1.0]);
        assert_eq!(d.run_signs(3), vec![1.0, 1.0]);
        assert!(d.is_full());
    }

    #[test]
    fn interaction_column_is_product() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        let ab = d.effect_mask(&["A", "B"]).unwrap();
        // Slide 74's table: AB column is +1, −1, −1, +1.
        let col: Vec<f64> = (0..4).map(|r| d.effect_sign(r, ab)).collect();
        assert_eq!(col, vec![1.0, -1.0, -1.0, 1.0]);
    }

    #[test]
    fn identity_column_is_all_ones() {
        let d = TwoLevelDesign::full(&["A", "B", "C"]);
        assert!((0..8).all(|r| d.effect_sign(r, 0) == 1.0));
        assert_eq!(d.effect_label(0), "I");
    }

    #[test]
    fn zero_sum_and_orthogonal_full() {
        let d = TwoLevelDesign::full(&["A", "B", "C"]);
        assert!(d.columns_are_zero_sum());
        assert!(d.columns_are_orthogonal());
    }

    #[test]
    fn fractional_2_4_1_d_equals_abc() {
        let d = TwoLevelDesign::fractional(
            &["A", "B", "C", "D"],
            &[Generator::parse("D=ABC").unwrap()],
        )
        .unwrap();
        assert_eq!(d.run_count(), 8);
        assert_eq!(d.k(), 4);
        // D's column equals the ABC product column everywhere.
        let abc = d.effect_mask(&["A", "B", "C"]).unwrap();
        for r in 0..8 {
            assert_eq!(d.factor_sign(r, 3), d.effect_sign(r, abc), "run {r}");
        }
        assert!(d.columns_are_zero_sum());
        assert!(d.columns_are_orthogonal());
        assert!(!d.is_full());
    }

    #[test]
    fn fractional_2_7_4_slide_102() {
        // Seven factors in eight runs: the slide-102/103 design.
        let d = TwoLevelDesign::fractional(
            &["A", "B", "C", "D", "E", "F", "G"],
            &[
                Generator::parse("D=AB").unwrap(),
                Generator::parse("E=AC").unwrap(),
                Generator::parse("F=BC").unwrap(),
                Generator::parse("G=ABC").unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(d.run_count(), 8);
        assert_eq!(d.k(), 7);
        // "7 zero-sum columns" and orthogonality, as the slide highlights.
        assert!(d.columns_are_zero_sum());
        assert!(d.columns_are_orthogonal());
        // Spot-check the slide's first data row: A=-1,B=-1,C=-1 ->
        // D=AB=+1, E=AC=+1, F=BC=+1, G=ABC=-1.
        assert_eq!(d.run_signs(0), vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0, -1.0]);
        // Second row: A=+1,B=-1,C=-1 -> D=-1, E=-1, F=+1, G=+1.
        assert_eq!(d.run_signs(1), vec![1.0, -1.0, -1.0, -1.0, -1.0, 1.0, 1.0]);
    }

    #[test]
    fn effect_mask_and_label() {
        let d = TwoLevelDesign::full(&["A", "B", "C"]);
        let m = d.effect_mask(&["A", "C"]).unwrap();
        assert_eq!(m, 0b101);
        assert_eq!(d.effect_label(m), "A·C");
        assert!(d.effect_mask(&["Z"]).is_err());
    }

    #[test]
    fn fractional_validates_generators() {
        // Generator must define the next factor name.
        assert!(TwoLevelDesign::fractional(
            &["A", "B", "C", "D"],
            &[Generator::parse("C=AB").unwrap()]
        )
        .is_err());
        // Word must reference base factors only.
        assert!(TwoLevelDesign::fractional(
            &["A", "B", "C", "D"],
            &[Generator::parse("D=AZ").unwrap()]
        )
        .is_err());
        // Too many generators.
        assert!(TwoLevelDesign::fractional(
            &["A", "B"],
            &[
                Generator::parse("A=B").unwrap(),
                Generator::parse("B=A").unwrap()
            ]
        )
        .is_err());
    }

    #[test]
    fn render_shows_signs() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        let text = d.render();
        assert!(text.contains("+1"));
        assert!(text.contains("-1"));
        assert_eq!(text.lines().count(), 5);
    }
}
