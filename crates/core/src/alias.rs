//! The confounding algebra of fractional factorial designs
//! (slides 104–109).
//!
//! In a 2^(k−p) design each measured column estimates a *sum* of effects:
//! choosing `D = ABC` makes `I = ABCD` the defining relation, so
//! `A = BCD`, `AD = BC`, and so on. Products of effects form a group under
//! XOR (each factor squared is the identity), which makes the algebra
//! mechanical:
//!
//! * the **defining relation** is the closure of the generator words,
//! * the **alias set** of an effect is its coset under that closure,
//! * the **resolution** is the smallest word length in the defining
//!   relation — and the sparsity-of-effects principle says to pick the
//!   design with the *highest* resolution (`D = ABC`, resolution IV, beats
//!   `D = AB`, resolution III).

use crate::twolevel::TwoLevelDesign;
use crate::DesignError;

/// One generator of a fractional design, e.g. `D = ABC`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generator {
    defined: String,
    word: Vec<String>,
}

impl Generator {
    /// Creates a generator from the defined factor and its word.
    pub fn new(defined: &str, word: &[&str]) -> Self {
        Generator {
            defined: defined.to_owned(),
            word: word.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// Parses the compact single-letter notation `"D=ABC"`.
    pub fn parse(text: &str) -> Result<Generator, DesignError> {
        let (lhs, rhs) = text
            .split_once('=')
            .ok_or_else(|| DesignError::Invalid(format!("generator '{text}' lacks '='")))?;
        let lhs = lhs.trim();
        let rhs = rhs.trim();
        if lhs.is_empty() || rhs.is_empty() {
            return Err(DesignError::Invalid(format!(
                "generator '{text}' malformed"
            )));
        }
        Ok(Generator {
            defined: lhs.to_owned(),
            word: rhs.chars().map(|c| c.to_string()).collect(),
        })
    }

    /// The defined factor.
    pub fn defined(&self) -> &str {
        &self.defined
    }

    /// The product word.
    pub fn word(&self) -> &[String] {
        &self.word
    }
}

impl std::fmt::Display for Generator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}", self.defined, self.word.join(""))
    }
}

/// The alias structure of a two-level design.
#[derive(Debug, Clone)]
pub struct AliasStructure {
    k: usize,
    factor_names: Vec<String>,
    /// All words of the defining relation, including the identity (0).
    relation: Vec<u32>,
}

impl AliasStructure {
    /// Computes the alias structure of a design. A full design's relation
    /// is just {I}: nothing is confounded.
    pub fn of(design: &TwoLevelDesign) -> Result<AliasStructure, DesignError> {
        let k = design.k();
        let names = design.factor_names().to_vec();
        // Build each generator's full word mask: defined factor ⊕ word.
        let mut gen_masks = Vec::new();
        for (gi, g) in design.generators().iter().enumerate() {
            let mut mask = 0u32;
            for f in g.word() {
                let idx = names
                    .iter()
                    .position(|n| n == f)
                    .ok_or_else(|| DesignError::UnknownFactor(f.clone()))?;
                mask |= 1 << idx;
            }
            // The defined factor is, by construction of
            // TwoLevelDesign::fractional, at position base + gi.
            let defined_idx = names
                .iter()
                .position(|n| n == g.defined())
                .ok_or_else(|| DesignError::UnknownFactor(g.defined().to_owned()))?;
            let _ = gi;
            mask |= 1 << defined_idx;
            gen_masks.push(mask);
        }
        // Closure under XOR: all subset products of the generator words.
        let p = gen_masks.len();
        let mut relation = Vec::with_capacity(1 << p);
        for subset in 0..(1u32 << p) {
            let mut word = 0u32;
            for (i, &g) in gen_masks.iter().enumerate() {
                if subset & (1 << i) != 0 {
                    word ^= g;
                }
            }
            relation.push(word);
        }
        relation.sort_unstable();
        relation.dedup();
        Ok(AliasStructure {
            k,
            factor_names: names,
            relation,
        })
    }

    /// The defining relation's words (including I = 0).
    pub fn defining_relation(&self) -> &[u32] {
        &self.relation
    }

    /// The alias set of an effect: every effect confounded with it
    /// (including itself), sorted by word length then value.
    pub fn alias_set(&self, effect: u32) -> Vec<u32> {
        let mut set: Vec<u32> = self.relation.iter().map(|w| w ^ effect).collect();
        set.sort_by_key(|m| (m.count_ones(), *m));
        set.dedup();
        set
    }

    /// Are two effects confounded in this design?
    pub fn are_aliased(&self, a: u32, b: u32) -> bool {
        self.relation.contains(&(a ^ b))
    }

    /// Design resolution: the minimum word length over the non-identity
    /// words of the defining relation. `None` for a full design (nothing
    /// confounded — "infinite" resolution).
    pub fn resolution(&self) -> Option<u32> {
        self.relation
            .iter()
            .filter(|&&w| w != 0)
            .map(|w| w.count_ones())
            .min()
    }

    /// Renders an effect mask using the factor names.
    pub fn label(&self, mask: u32) -> String {
        if mask == 0 {
            return "I".to_owned();
        }
        let mut parts = Vec::new();
        for (j, name) in self.factor_names.iter().enumerate() {
            if mask & (1 << j) != 0 {
                parts.push(name.clone());
            }
        }
        parts.join("")
    }

    /// Renders the alias set of every main effect plus I — the slide-105
    /// listing ("AD = BC, BD = AC, … I = ABCD").
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "I = {}\n",
            self.relation
                .iter()
                .filter(|&&w| w != 0)
                .map(|&w| self.label(w))
                .collect::<Vec<_>>()
                .join(" = ")
        ));
        for j in 0..self.k {
            let aliases = self.alias_set(1 << j);
            let labels: Vec<String> = aliases.iter().map(|&m| self.label(m)).collect();
            out.push_str(&labels.join(" = "));
            out.push('\n');
        }
        out
    }

    /// The sparsity-of-effects comparator (slide 108): the design whose
    /// resolution is higher confounds only higher-order interactions and
    /// is preferred. Returns `Ordering::Greater` if `self` is preferable
    /// to `other`.
    pub fn compare_preference(&self, other: &AliasStructure) -> std::cmp::Ordering {
        match (self.resolution(), other.resolution()) {
            (None, None) => std::cmp::Ordering::Equal,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (Some(_), None) => std::cmp::Ordering::Less,
            (Some(a), Some(b)) => a.cmp(&b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design_d_abc() -> TwoLevelDesign {
        TwoLevelDesign::fractional(&["A", "B", "C", "D"], &[Generator::parse("D=ABC").unwrap()])
            .unwrap()
    }

    fn design_d_ab() -> TwoLevelDesign {
        TwoLevelDesign::fractional(&["A", "B", "C", "D"], &[Generator::parse("D=AB").unwrap()])
            .unwrap()
    }

    #[test]
    fn generator_parse_and_display() {
        let g = Generator::parse("D=ABC").unwrap();
        assert_eq!(g.defined(), "D");
        assert_eq!(g.word(), &["A", "B", "C"]);
        assert_eq!(g.to_string(), "D=ABC");
        assert!(Generator::parse("DABC").is_err());
        assert!(Generator::parse("=ABC").is_err());
        assert!(Generator::parse("D=").is_err());
    }

    #[test]
    fn defining_relation_d_abc() {
        // I = ABCD.
        let a = AliasStructure::of(&design_d_abc()).unwrap();
        assert_eq!(a.defining_relation(), &[0, 0b1111]);
        assert_eq!(a.label(0b1111), "ABCD");
    }

    #[test]
    fn slide_105_aliases_hold() {
        let a = AliasStructure::of(&design_d_abc()).unwrap();
        let m = |s: &str| -> u32 {
            s.chars()
                .map(|c| 1u32 << (c as u8 - b'A'))
                .fold(0, |x, y| x | y)
        };
        // AD = BC, BD = AC, AB = CD.
        assert!(a.are_aliased(m("AD"), m("BC")));
        assert!(a.are_aliased(m("BD"), m("AC")));
        assert!(a.are_aliased(m("AB"), m("CD")));
        // A = BCD, B = ACD, C = ABD, I = ABCD.
        assert!(a.are_aliased(m("A"), m("BCD")));
        assert!(a.are_aliased(m("B"), m("ACD")));
        assert!(a.are_aliased(m("C"), m("ABD")));
        assert!(a.are_aliased(0, m("ABCD")));
        // Not everything is aliased.
        assert!(!a.are_aliased(m("A"), m("B")));
        assert!(!a.are_aliased(m("A"), m("BC")));
    }

    #[test]
    fn slide_108_confoundings_of_d_ab() {
        let a = AliasStructure::of(&design_d_ab()).unwrap();
        let m = |s: &str| -> u32 {
            s.chars()
                .map(|c| 1u32 << (c as u8 - b'A'))
                .fold(0, |x, y| x | y)
        };
        // A = BD, B = AD, D = AB, I = ABD.
        assert!(a.are_aliased(m("A"), m("BD")));
        assert!(a.are_aliased(m("B"), m("AD")));
        assert!(a.are_aliased(m("D"), m("AB")));
        assert!(a.are_aliased(0, m("ABD")));
        // AC = BCD, BC = ACD, CD = ABC, C = ABCD.
        assert!(a.are_aliased(m("AC"), m("BCD")));
        assert!(a.are_aliased(m("C"), m("ABCD")));
    }

    #[test]
    fn d_abc_is_resolution_iv_and_preferred() {
        // The punchline of slides 104–109.
        let abc = AliasStructure::of(&design_d_abc()).unwrap();
        let ab = AliasStructure::of(&design_d_ab()).unwrap();
        assert_eq!(abc.resolution(), Some(4));
        assert_eq!(ab.resolution(), Some(3));
        assert_eq!(
            abc.compare_preference(&ab),
            std::cmp::Ordering::Greater,
            "D=ABC is preferred"
        );
    }

    #[test]
    fn main_effects_confounded_with_third_order_in_res_iv() {
        let a = AliasStructure::of(&design_d_abc()).unwrap();
        // "confounds the main effects with 3rd order interactions."
        for j in 0..4u32 {
            let set = a.alias_set(1 << j);
            assert_eq!(set.len(), 2);
            assert_eq!(set[0].count_ones(), 1);
            assert_eq!(set[1].count_ones(), 3);
        }
    }

    #[test]
    fn full_design_confounds_nothing() {
        let d = TwoLevelDesign::full(&["A", "B", "C"]);
        let a = AliasStructure::of(&d).unwrap();
        assert_eq!(a.defining_relation(), &[0]);
        assert_eq!(a.resolution(), None);
        assert!(!a.are_aliased(0b001, 0b010));
        let full27 = AliasStructure::of(&TwoLevelDesign::full(&["A", "B"])).unwrap();
        assert_eq!(a.compare_preference(&full27), std::cmp::Ordering::Equal);
    }

    #[test]
    fn two_seven_four_is_resolution_iii() {
        let d = TwoLevelDesign::fractional(
            &["A", "B", "C", "D", "E", "F", "G"],
            &[
                Generator::parse("D=AB").unwrap(),
                Generator::parse("E=AC").unwrap(),
                Generator::parse("F=BC").unwrap(),
                Generator::parse("G=ABC").unwrap(),
            ],
        )
        .unwrap();
        let a = AliasStructure::of(&d).unwrap();
        assert_eq!(a.resolution(), Some(3));
        // Defining relation has 2^4 = 16 words.
        assert_eq!(a.defining_relation().len(), 16);
    }

    #[test]
    fn render_lists_identity_and_main_effects() {
        let a = AliasStructure::of(&design_d_abc()).unwrap();
        let text = a.render();
        assert!(text.starts_with("I = ABCD"));
        assert!(text.contains("A = BCD"));
        assert_eq!(text.lines().count(), 5);
    }
}
