//! Allocation of variation (slides 81–93): how much of the response's
//! variability each factor explains.
//!
//! For an unreplicated 2^k design:
//! `SST = Σ(yᵢ − ȳ)² = 2^k · Σ_{S≠∅} q_S²`, and the fraction
//! `2^k q_S² / SST` is the importance of effect `S`.
//!
//! With replication, `SST = SS(effects) + SSE`, and the error term SSE is
//! exactly what common-mistake #1 ("variation due to experimental error is
//! ignored") says you must compare factor effects against.

use crate::effects::{estimate_effects, estimate_effects_replicated, EffectModel};
use crate::twolevel::TwoLevelDesign;
use crate::DesignError;

/// One row of an allocation-of-variation table.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationShare {
    /// Effect label ("A", "A·B", …).
    pub effect: String,
    /// Effect mask.
    pub mask: u32,
    /// The effect's coefficient q.
    pub q: f64,
    /// Sum of squares attributed to the effect.
    pub sum_of_squares: f64,
    /// Fraction of SST explained, in `[0, 1]`.
    pub fraction: f64,
}

/// The full allocation result.
#[derive(Debug, Clone)]
pub struct VariationTable {
    /// Per-effect shares, largest first.
    pub shares: Vec<VariationShare>,
    /// Total sum of squares.
    pub sst: f64,
    /// Error sum of squares (0 without replication).
    pub sse: f64,
    /// Fraction of SST attributed to experimental error.
    pub error_fraction: f64,
    /// The underlying effect model.
    pub model: EffectModel,
}

impl VariationTable {
    /// Share of a named effect.
    pub fn fraction_of(&self, design: &TwoLevelDesign, factors: &[&str]) -> Option<f64> {
        let mask = design.effect_mask(factors).ok()?;
        self.shares
            .iter()
            .find(|s| s.mask == mask)
            .map(|s| s.fraction)
    }

    /// Renders the "Variation explained (%)" table of slide 92.
    pub fn render(&self) -> String {
        let mut out = String::from("effect      q        SS       %\n");
        for s in &self.shares {
            out.push_str(&format!(
                "{:<8} {:>8.4} {:>9.4} {:>6.1}\n",
                s.effect,
                s.q,
                s.sum_of_squares,
                s.fraction * 100.0
            ));
        }
        if self.sse > 0.0 {
            out.push_str(&format!(
                "{:<8} {:>8} {:>9.4} {:>6.1}\n",
                "error",
                "",
                self.sse,
                self.error_fraction * 100.0
            ));
        }
        out
    }

    /// Effects ranked by explained fraction, most important first.
    pub fn ranked_effects(&self) -> Vec<(&str, f64)> {
        self.shares
            .iter()
            .map(|s| (s.effect.as_str(), s.fraction))
            .collect()
    }
}

fn build_table(
    design: &TwoLevelDesign,
    model: EffectModel,
    sst_total: f64,
    sse: f64,
) -> VariationTable {
    let n_runs = design.run_count() as f64;
    let mut shares: Vec<VariationShare> = model
        .coefficients()
        .filter(|(mask, _)| *mask != 0)
        .map(|(mask, q)| {
            let ss = n_runs * q * q;
            VariationShare {
                effect: design.effect_label(mask),
                mask,
                q,
                sum_of_squares: ss,
                fraction: if sst_total > 0.0 { ss / sst_total } else { 0.0 },
            }
        })
        .collect();
    shares.sort_by(|a, b| {
        b.fraction
            .partial_cmp(&a.fraction)
            .expect("fractions are finite")
    });
    VariationTable {
        shares,
        sst: sst_total,
        sse,
        error_fraction: if sst_total > 0.0 {
            sse / sst_total
        } else {
            0.0
        },
        model,
    }
}

/// Allocation of variation for an unreplicated two-level design.
pub fn allocate_variation(
    design: &TwoLevelDesign,
    responses: &[f64],
) -> Result<VariationTable, DesignError> {
    let model = estimate_effects(design, responses)?;
    let mean = model.mean();
    let sst: f64 = responses.iter().map(|y| (y - mean) * (y - mean)).sum();
    Ok(build_table(design, model, sst, 0.0))
}

/// Allocation of variation with replication: SST decomposes into effect
/// sums of squares (computed from per-run means, scaled by the replication
/// count) plus SSE, the within-run spread.
pub fn allocate_variation_replicated(
    design: &TwoLevelDesign,
    replicates: &[Vec<f64>],
) -> Result<VariationTable, DesignError> {
    let model = estimate_effects_replicated(design, replicates)?;
    let reps = replicates[0].len();
    if replicates.iter().any(|r| r.len() != reps) {
        return Err(DesignError::Invalid(
            "replicated allocation requires equal replication per run".into(),
        ));
    }
    let grand_mean = model.mean();
    let sst: f64 = replicates
        .iter()
        .flatten()
        .map(|y| (y - grand_mean) * (y - grand_mean))
        .sum();
    let sse: f64 = replicates
        .iter()
        .map(|r| {
            let m = r.iter().sum::<f64>() / r.len() as f64;
            r.iter().map(|y| (y - m) * (y - m)).sum::<f64>()
        })
        .sum();
    // Effect SS must be scaled by the replication count: each run mean
    // represents `reps` observations.
    let n_runs = design.run_count() as f64;
    let mut table = build_table(design, model, sst, sse);
    for share in &mut table.shares {
        share.sum_of_squares = n_runs * reps as f64 * share.q * share.q;
        share.fraction = if sst > 0.0 {
            share.sum_of_squares / sst
        } else {
            0.0
        };
    }
    table
        .shares
        .sort_by(|a, b| b.fraction.partial_cmp(&a.fraction).expect("finite"));
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Slide 90–93: interconnection-network example. The slides' data table
    /// lists the sign columns in the order (address pattern, network type):
    /// computing the allocation from the printed responses yields the
    /// printed percentages only under that reading, so we name the factors
    /// accordingly (B = address pattern first, A = network type second) and
    /// reproduce the published table exactly.
    fn networks() -> (TwoLevelDesign, [f64; 4], [f64; 4], [f64; 4]) {
        let d = TwoLevelDesign::full(&["B", "A"]);
        let t = [0.6041, 0.4220, 0.7922, 0.4717]; // throughput
        let n = [3.0, 5.0, 2.0, 4.0]; // 90% transit time
        let r = [1.655, 2.378, 1.262, 2.190]; // response time
        (d, t, n, r)
    }

    #[test]
    fn slide_92_throughput_allocation() {
        let (d, t, _, _) = networks();
        let table = allocate_variation(&d, &t).unwrap();
        let qa = table.fraction_of(&d, &["A"]).unwrap();
        let qb = table.fraction_of(&d, &["B"]).unwrap();
        let qab = table.fraction_of(&d, &["B", "A"]).unwrap();
        assert!((qa * 100.0 - 17.2).abs() < 0.2, "qA% = {}", qa * 100.0);
        assert!((qb * 100.0 - 77.0).abs() < 0.2, "qB% = {}", qb * 100.0);
        assert!((qab * 100.0 - 5.8).abs() < 0.2, "qAB% = {}", qab * 100.0);
    }

    #[test]
    fn slide_92_transit_time_allocation() {
        let (d, _, n, _) = networks();
        let table = allocate_variation(&d, &n).unwrap();
        assert!((table.fraction_of(&d, &["A"]).unwrap() * 100.0 - 20.0).abs() < 1e-9);
        assert!((table.fraction_of(&d, &["B"]).unwrap() * 100.0 - 80.0).abs() < 1e-9);
        assert!(table.fraction_of(&d, &["B", "A"]).unwrap().abs() < 1e-9);
    }

    #[test]
    fn slide_92_response_time_allocation() {
        let (d, _, _, r) = networks();
        let table = allocate_variation(&d, &r).unwrap();
        let qa = table.fraction_of(&d, &["A"]).unwrap() * 100.0;
        let qb = table.fraction_of(&d, &["B"]).unwrap() * 100.0;
        let qab = table.fraction_of(&d, &["B", "A"]).unwrap() * 100.0;
        assert!((qa - 10.9).abs() < 0.2, "qA% = {qa}");
        assert!((qb - 87.8).abs() < 0.2, "qB% = {qb}");
        assert!((qab - 1.3).abs() < 0.2, "qAB% = {qab}");
    }

    #[test]
    fn conclusion_address_pattern_dominates() {
        // "Conclusion: the address pattern influences most."
        let (d, t, n, r) = networks();
        for responses in [t, n, r] {
            let table = allocate_variation(&d, &responses).unwrap();
            assert_eq!(table.ranked_effects()[0].0, "B");
        }
    }

    #[test]
    fn fractions_sum_to_one_without_error() {
        let (d, t, _, _) = networks();
        let table = allocate_variation(&d, &t).unwrap();
        let total: f64 = table.shares.iter().map(|s| s.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(table.sse, 0.0);
    }

    #[test]
    fn sst_identity_holds() {
        // SST = 2^k Σ q² (slide 81).
        let (d, t, _, _) = networks();
        let table = allocate_variation(&d, &t).unwrap();
        let from_effects: f64 = table.shares.iter().map(|s| s.sum_of_squares).sum();
        assert!((table.sst - from_effects).abs() < 1e-9);
    }

    #[test]
    fn constant_responses_have_zero_sst() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        let table = allocate_variation(&d, &[5.0; 4]).unwrap();
        assert_eq!(table.sst, 0.0);
        assert!(table.shares.iter().all(|s| s.fraction == 0.0));
    }

    #[test]
    fn replicated_allocation_decomposes_sst() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        // Strong A effect + noise.
        let reps = vec![
            vec![9.0, 11.0],  // (-,-): mean 10
            vec![29.0, 31.0], // (+,-): mean 30
            vec![11.0, 9.0],  // (-,+): mean 10
            vec![31.0, 29.0], // (+,+): mean 30
        ];
        let table = allocate_variation_replicated(&d, &reps).unwrap();
        // SSE = 4 runs × 2 reps, each ±1 around its mean: Σ = 8·1 = 8.
        assert!((table.sse - 8.0).abs() < 1e-9);
        // qA = 10 -> SS_A = 4·2·100 = 800. SST = 808.
        assert!((table.sst - 808.0).abs() < 1e-9);
        let a = table.fraction_of(&d, &["A"]).unwrap();
        assert!((a - 800.0 / 808.0).abs() < 1e-9);
        // Effects + error account for everything.
        let explained: f64 = table.shares.iter().map(|s| s.sum_of_squares).sum();
        assert!((explained + table.sse - table.sst).abs() < 1e-9);
    }

    #[test]
    fn replicated_requires_equal_counts() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        let reps = vec![vec![1.0, 2.0], vec![1.0], vec![1.0, 2.0], vec![1.0, 2.0]];
        assert!(allocate_variation_replicated(&d, &reps).is_err());
    }

    #[test]
    fn render_contains_percentages() {
        let (d, t, _, _) = networks();
        let table = allocate_variation(&d, &t).unwrap();
        let text = table.render();
        assert!(text.contains('%'));
        // 76.945% — the slide rounds it to 77.0.
        assert!(text.contains("76.9"), "{text}");
    }

    #[test]
    fn pure_noise_unreplicated_spreads_blame() {
        // Without replication, noise lands on effects (common mistake #1) —
        // this is detectable only with replication, which mistakes.rs
        // checks. Here we just assert fractions still sum to 1.
        let d = TwoLevelDesign::full(&["A", "B", "C"]);
        let y = [1.0, 4.0, 2.0, 8.0, 5.0, 7.0, 3.0, 6.0];
        let table = allocate_variation(&d, &y).unwrap();
        let sum: f64 = table.shares.iter().map(|s| s.fraction).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
