//! # perfeval-core
//!
//! The methodology core of the `perfeval` toolkit: **experiment design**,
//! the second chapter of "Performance Evaluation in Database Research:
//! Principles and Experiences" (Manolescu & Manegold, ICDE 2008 /
//! EDBT 2009), which itself follows Raj Jain's *The Art of Computer Systems
//! Performance Analysis*.
//!
//! > *Design measurement and simulation experiments to provide the most
//! > information with the least effort.*
//!
//! The pieces:
//!
//! * [`factor`] — factors and levels (the terminology slide: response,
//!   factor, level, effect, replication, interaction, design).
//! * [`design`] — multi-level designs: [`design::simple`] (one-at-a-time,
//!   `n = 1 + Σ(nᵢ−1)`), [`design::full_factorial`] (`n = Πnᵢ`), and the
//!   slide-67 three-level fractional (Latin-square) design.
//! * [`twolevel`] — 2^k full and 2^(k−p) fractional factorial designs as
//!   sign tables, with zero-sum and orthogonality validated.
//! * [`alias`] — the confounding algebra: generator words, the defining
//!   relation, alias sets (`AD = BC`), design resolution, and the
//!   sparsity-of-effects comparator that prefers `D = ABC` over `D = AB`.
//! * [`effects`] — the sign-table method: `q₀, qA, qB, qAB, …` from
//!   responses, the full regression model
//!   `y = q₀ + Σ qᵢxᵢ + Σ qᵢⱼxᵢxⱼ + …`, and prediction.
//! * [`variation`] — allocation of variation: `SST = Σ(yᵢ−ȳ)²`,
//!   `SST = 2^k Σ q²`, percent explained per effect, and the
//!   replication-aware error term the "common mistakes" slide demands.
//! * [`interaction`] — the 2×2 interaction test of slide 58.
//! * [`runner`] — executes any design against an [`runner::Experiment`]
//!   with a measurement protocol, producing a response table.
//! * [`screen`] — the recommended two-stage workflow: screen with a
//!   fractional design, rank factors, refine.
//! * [`mistakes`] — programmatic checks for the tutorial's "common
//!   mistakes" list.
//!
//! ## The slide-72 example, end to end
//!
//! ```
//! use perfeval_core::twolevel::TwoLevelDesign;
//! use perfeval_core::effects::estimate_effects;
//!
//! // Memory size (A) × cache size (B), performance in MIPS:
//! let design = TwoLevelDesign::full(&["memory", "cache"]);
//! let y = [15.0, 45.0, 25.0, 75.0]; // rows in standard order
//! let model = estimate_effects(&design, &y).unwrap();
//! assert_eq!(model.coefficient(&[]).unwrap(), 40.0);        // q0
//! assert_eq!(model.coefficient(&["memory"]).unwrap(), 20.0); // qA
//! assert_eq!(model.coefficient(&["cache"]).unwrap(), 10.0);  // qB
//! assert_eq!(model.coefficient(&["memory", "cache"]).unwrap(), 5.0); // qAB
//! ```
#![warn(missing_docs)]

pub mod alias;
pub mod anova;
pub mod design;
pub mod effects;
pub mod factor;
pub mod interaction;
pub mod mistakes;
pub mod runner;
pub mod screen;
pub mod twolevel;
pub mod variation;

pub use alias::{AliasStructure, Generator};
pub use anova::{anova, AnovaTable};
pub use design::{Design, DesignKind};
pub use effects::{estimate_effects, EffectModel};
pub use factor::{Factor, Level};
pub use runner::{
    design_assignments, two_level_assignments, Assignment, Experiment, ResponseTable, Runner,
    SyncExperiment,
};
pub use twolevel::TwoLevelDesign;
pub use variation::allocate_variation;

/// Errors from experiment-design routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// Response vector length does not match the design's run count.
    ResponseMismatch {
        /// Runs in the design.
        expected: usize,
        /// Responses supplied.
        got: usize,
    },
    /// A factor name was not found.
    UnknownFactor(String),
    /// Invalid construction parameters.
    Invalid(String),
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::ResponseMismatch { expected, got } => {
                write!(f, "design has {expected} runs but {got} responses given")
            }
            DesignError::UnknownFactor(name) => write!(f, "unknown factor: {name}"),
            DesignError::Invalid(m) => write!(f, "invalid design: {m}"),
        }
    }
}

impl std::error::Error for DesignError {}
