//! Executing a design against a real (or simulated) system.
//!
//! The [`Experiment`] trait is the boundary between the methodology and the
//! system under test: given an [`Assignment`] of factor levels it returns
//! one response measurement. The [`Runner`] walks a design, replicating
//! each run per a [`RunProtocol`]-inspired policy, and yields a
//! [`ResponseTable`] ready for effect estimation and allocation of
//! variation.

use crate::design::Design;
use crate::factor::Level;
use crate::twolevel::TwoLevelDesign;
use crate::DesignError;

/// The factor-level assignment of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    pairs: Vec<(String, Level)>,
}

impl Assignment {
    /// Creates an assignment from (factor, level) pairs.
    pub fn new(pairs: Vec<(String, Level)>) -> Self {
        Assignment { pairs }
    }

    /// Level of a factor by name.
    pub fn level(&self, factor: &str) -> Option<&Level> {
        self.pairs.iter().find(|(n, _)| n == factor).map(|(_, l)| l)
    }

    /// Numeric level of a factor.
    pub fn num(&self, factor: &str) -> Option<f64> {
        self.level(factor).and_then(Level::as_num)
    }

    /// Label of a factor's level.
    pub fn label(&self, factor: &str) -> Option<String> {
        self.level(factor).map(Level::label)
    }

    /// All pairs, in factor order.
    pub fn pairs(&self) -> &[(String, Level)] {
        &self.pairs
    }
}

impl std::fmt::Display for Assignment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self
            .pairs
            .iter()
            .map(|(n, l)| format!("{n}={}", l.label()))
            .collect();
        f.write_str(&parts.join(" "))
    }
}

/// A system under test.
pub trait Experiment {
    /// Runs the workload once under `assignment` and returns the response
    /// (e.g. elapsed ms). Called repeatedly for replication.
    fn respond(&mut self, assignment: &Assignment) -> f64;

    /// Optional per-run setup invoked once before the replications of each
    /// run (e.g. flush caches for cold protocols).
    fn prepare(&mut self, _assignment: &Assignment) {}
}

impl<F: FnMut(&Assignment) -> f64> Experiment for F {
    fn respond(&mut self, assignment: &Assignment) -> f64 {
        self(assignment)
    }
}

/// A thread-safe system under test: the shared-reference sibling of
/// [`Experiment`], required by parallel execution (`perfeval-exec`), where
/// many worker threads probe the system concurrently.
///
/// Implementations must be pure with respect to observable responses —
/// `respond(a, r)` must depend only on the assignment and replicate index
/// (plus any per-unit seed the caller derives) — or parallel and serial
/// execution cannot be bit-identical.
pub trait SyncExperiment: Sync {
    /// Runs the workload once under `assignment` for replicate `replicate`
    /// and returns the response.
    fn respond(&self, assignment: &Assignment, replicate: usize) -> f64;

    /// Optional per-unit setup (e.g. flush caches for cold protocols).
    fn prepare(&self, _assignment: &Assignment) {}
}

impl<F: Fn(&Assignment) -> f64 + Sync> SyncExperiment for F {
    fn respond(&self, assignment: &Assignment, _replicate: usize) -> f64 {
        self(assignment)
    }
}

/// Expands a multi-level [`Design`] into one [`Assignment`] per run.
pub fn design_assignments(design: &Design) -> Vec<Assignment> {
    (0..design.run_count())
        .map(|r| {
            Assignment::new(
                design
                    .factors()
                    .iter()
                    .zip(design.run(r))
                    .map(|(f, &level)| (f.name().to_owned(), f.levels()[level].clone()))
                    .collect(),
            )
        })
        .collect()
}

/// Expands a [`TwoLevelDesign`] into one ±1 [`Assignment`] per run.
pub fn two_level_assignments(design: &TwoLevelDesign) -> Vec<Assignment> {
    (0..design.run_count())
        .map(|r| {
            Assignment::new(
                design
                    .factor_names()
                    .iter()
                    .enumerate()
                    .map(|(j, n)| (n.clone(), Level::Num(design.factor_sign(r, j))))
                    .collect(),
            )
        })
        .collect()
}

/// Design runs with their replicated responses.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseTable {
    /// One assignment per run.
    pub assignments: Vec<Assignment>,
    /// replicates[r] = the measured responses of run r.
    pub replicates: Vec<Vec<f64>>,
}

impl ResponseTable {
    /// Per-run mean responses.
    pub fn means(&self) -> Vec<f64> {
        self.replicates
            .iter()
            .map(|r| r.iter().sum::<f64>() / r.len() as f64)
            .collect()
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.replicates.len()
    }

    /// Renders run → responses.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (a, reps) in self.assignments.iter().zip(&self.replicates) {
            let values: Vec<String> = reps.iter().map(|v| format!("{v:.4}")).collect();
            out.push_str(&format!("{a}  ->  {}\n", values.join(", ")));
        }
        out
    }
}

/// Walks designs, replicating each run.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    /// Measured replications per run (≥ 1).
    pub replications: usize,
}

impl Runner {
    /// Creates a runner with the given replication count.
    ///
    /// # Panics
    /// Panics if `replications == 0`.
    pub fn new(replications: usize) -> Self {
        assert!(replications >= 1, "need at least one replication");
        Runner { replications }
    }

    /// Executes a multi-level [`Design`].
    pub fn run_design(&self, design: &Design, experiment: &mut dyn Experiment) -> ResponseTable {
        self.run_assignments(design_assignments(design), experiment)
    }

    /// Executes a two-level design; factor levels are passed as ±1
    /// [`Level::Num`] values.
    pub fn run_two_level(
        &self,
        design: &TwoLevelDesign,
        experiment: &mut dyn Experiment,
    ) -> ResponseTable {
        self.run_assignments(two_level_assignments(design), experiment)
    }

    /// Executes an explicit run list (the shared core of the design
    /// walkers).
    pub fn run_assignments(
        &self,
        assignments: Vec<Assignment>,
        experiment: &mut dyn Experiment,
    ) -> ResponseTable {
        let replicates = assignments
            .iter()
            .map(|assignment| {
                experiment.prepare(assignment);
                (0..self.replications)
                    .map(|_| experiment.respond(assignment))
                    .collect()
            })
            .collect();
        ResponseTable {
            assignments,
            replicates,
        }
    }

    /// Serial reference execution of a [`SyncExperiment`] over a
    /// multi-level design — the comparison baseline for
    /// `perfeval-exec`'s `run_parallel`.
    pub fn run_design_sync<E: SyncExperiment>(
        &self,
        design: &Design,
        experiment: &E,
    ) -> ResponseTable {
        self.run_assignments_sync(design_assignments(design), experiment)
    }

    /// Serial reference execution of a [`SyncExperiment`] over a two-level
    /// design.
    pub fn run_two_level_sync<E: SyncExperiment>(
        &self,
        design: &TwoLevelDesign,
        experiment: &E,
    ) -> ResponseTable {
        self.run_assignments_sync(two_level_assignments(design), experiment)
    }

    /// Serial reference execution of a [`SyncExperiment`] over an explicit
    /// run list. Unlike [`Runner::run_assignments`], `prepare` is invoked
    /// before *every replicate* — matching the parallel path, where each
    /// (run, replicate) unit is independent and prepared by whichever
    /// worker executes it.
    pub fn run_assignments_sync<E: SyncExperiment>(
        &self,
        assignments: Vec<Assignment>,
        experiment: &E,
    ) -> ResponseTable {
        let replicates = assignments
            .iter()
            .map(|assignment| {
                (0..self.replications)
                    .map(|replicate| {
                        experiment.prepare(assignment);
                        experiment.respond(assignment, replicate)
                    })
                    .collect()
            })
            .collect();
        ResponseTable {
            assignments,
            replicates,
        }
    }
}

/// Convenience: runs a two-level design and fits the effect model in one
/// call.
pub fn run_and_analyze(
    design: &TwoLevelDesign,
    replications: usize,
    experiment: &mut dyn Experiment,
) -> Result<(ResponseTable, crate::variation::VariationTable), DesignError> {
    let table = Runner::new(replications).run_two_level(design, experiment);
    let variation = if replications > 1 {
        crate::variation::allocate_variation_replicated(design, &table.replicates)?
    } else {
        crate::variation::allocate_variation(design, &table.means())?
    };
    Ok((table, variation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::Factor;

    #[test]
    fn assignment_lookup() {
        let a = Assignment::new(vec![
            ("cache".into(), Level::Num(2.0)),
            ("engine".into(), Level::Cat("MonetDB".into())),
        ]);
        assert_eq!(a.num("cache"), Some(2.0));
        assert_eq!(a.label("engine").unwrap(), "MonetDB");
        assert!(a.level("nope").is_none());
        assert_eq!(a.to_string(), "cache=2 engine=MonetDB");
    }

    #[test]
    fn runner_visits_every_run_with_replication() {
        let design = Design::full_factorial(vec![
            Factor::numeric("a", &[1.0, 2.0]),
            Factor::numeric("b", &[10.0, 20.0, 30.0]),
        ]);
        let mut calls = 0;
        let mut exp = |a: &Assignment| {
            calls += 1;
            a.num("a").unwrap() * a.num("b").unwrap()
        };
        let table = Runner::new(3).run_design(&design, &mut exp);
        assert_eq!(table.run_count(), 6);
        assert_eq!(calls, 18);
        assert!(table.replicates.iter().all(|r| r.len() == 3));
        // Deterministic experiment: all replicates identical.
        assert_eq!(table.means()[0], table.replicates[0][0]);
    }

    #[test]
    fn two_level_runner_passes_signs() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        let mut exp = |a: &Assignment| {
            // y = 40 + 20xA + 10xB + 5xAB, the slide-72 system.
            let xa = a.num("A").unwrap();
            let xb = a.num("B").unwrap();
            40.0 + 20.0 * xa + 10.0 * xb + 5.0 * xa * xb
        };
        let table = Runner::new(1).run_two_level(&d, &mut exp);
        assert_eq!(table.means(), vec![15.0, 45.0, 25.0, 75.0]);
    }

    #[test]
    fn run_and_analyze_end_to_end() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        let mut exp = |a: &Assignment| {
            40.0 + 20.0 * a.num("A").unwrap()
                + 10.0 * a.num("B").unwrap()
                + 5.0 * a.num("A").unwrap() * a.num("B").unwrap()
        };
        let (table, variation) = run_and_analyze(&d, 1, &mut exp).unwrap();
        assert_eq!(table.run_count(), 4);
        let qa = variation.fraction_of(&d, &["A"]).unwrap();
        // SST = 4(400+100+25) = 2100; A share = 1600/2100.
        assert!((qa - 1600.0 / 2100.0).abs() < 1e-9);
    }

    #[test]
    fn prepare_called_once_per_run() {
        struct Spy {
            prepares: usize,
            responds: usize,
        }
        impl Experiment for Spy {
            fn respond(&mut self, _: &Assignment) -> f64 {
                self.responds += 1;
                1.0
            }
            fn prepare(&mut self, _: &Assignment) {
                self.prepares += 1;
            }
        }
        let d = TwoLevelDesign::full(&["A", "B"]);
        let mut spy = Spy {
            prepares: 0,
            responds: 0,
        };
        Runner::new(5).run_two_level(&d, &mut spy);
        assert_eq!(spy.prepares, 4);
        assert_eq!(spy.responds, 20);
    }

    #[test]
    fn render_lists_runs() {
        let d = TwoLevelDesign::full(&["A"]);
        let mut exp = |a: &Assignment| a.num("A").unwrap();
        let table = Runner::new(2).run_two_level(&d, &mut exp);
        let text = table.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("A=-1"));
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_panics() {
        let _ = Runner::new(0);
    }
}
