//! Effect estimation by the sign-table method (slides 70–80) and the full
//! 2^k regression model.
//!
//! For a 2^k design with responses `y`, the coefficient of effect column
//! `S` is `q_S = (column_S · y) / 2^k`; the model
//! `y = q₀ + Σ_S q_S · Π_{j∈S} x_j` then reproduces the observations
//! exactly (it has exactly as many coefficients as observations).

use crate::twolevel::TwoLevelDesign;
use crate::DesignError;
use std::collections::BTreeMap;

/// A fitted 2^k effect model.
#[derive(Debug, Clone)]
pub struct EffectModel {
    design: TwoLevelDesign,
    /// Effect mask -> coefficient. Contains every subset for full designs;
    /// for fractional designs only the estimable (non-aliased-to-lower)
    /// columns: the identity, main effects, and the base design's
    /// interaction columns.
    coefficients: BTreeMap<u32, f64>,
}

impl EffectModel {
    /// Coefficient of an effect by factor names (empty slice = q₀).
    pub fn coefficient(&self, factors: &[&str]) -> Result<f64, DesignError> {
        let mask = self.design.effect_mask(factors)?;
        self.coefficients.get(&mask).copied().ok_or_else(|| {
            DesignError::Invalid(format!(
                "effect {} not estimable in this design",
                self.design.effect_label(mask)
            ))
        })
    }

    /// Coefficient by mask, if estimated.
    pub fn coefficient_mask(&self, mask: u32) -> Option<f64> {
        self.coefficients.get(&mask).copied()
    }

    /// All (mask, coefficient) pairs, sorted by mask.
    pub fn coefficients(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.coefficients.iter().map(|(&m, &q)| (m, q))
    }

    /// The mean response (q₀).
    pub fn mean(&self) -> f64 {
        self.coefficients.get(&0).copied().unwrap_or(0.0)
    }

    /// Predicts the response at a ±1 assignment of all k factors.
    ///
    /// # Panics
    /// Panics if `signs.len() != k` or any sign is not ±1.
    pub fn predict(&self, signs: &[f64]) -> f64 {
        assert_eq!(signs.len(), self.design.k(), "need one sign per factor");
        assert!(
            signs.iter().all(|s| *s == 1.0 || *s == -1.0),
            "signs must be ±1"
        );
        let mut y = 0.0;
        for (&mask, &q) in &self.coefficients {
            let mut sign = 1.0;
            for (j, &s) in signs.iter().enumerate() {
                if mask & (1 << j) != 0 {
                    sign *= s;
                }
            }
            y += q * sign;
        }
        y
    }

    /// The design the model was fitted on.
    pub fn design(&self) -> &TwoLevelDesign {
        &self.design
    }

    /// Renders the fitted model as the slide-72 equation
    /// (`y = 40 + 20·xA + 10·xB + 5·xA·xB`).
    pub fn render(&self) -> String {
        let mut terms = Vec::new();
        for (&mask, &q) in &self.coefficients {
            if mask == 0 {
                terms.push(format!("{q}"));
            } else if q != 0.0 {
                let vars: Vec<String> = self
                    .design
                    .factor_names()
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| mask & (1 << j) != 0)
                    .map(|(_, n)| format!("x{n}"))
                    .collect();
                let sign = if q < 0.0 { "-" } else { "+" };
                terms.push(format!("{sign} {}·{}", q.abs(), vars.join("·")));
            }
        }
        format!("y = {}", terms.join(" "))
    }
}

/// Estimates all effects of a two-level design from one response per run.
///
/// For a full 2^k design every one of the 2^k subsets is estimated. For a
/// 2^(k−p) fractional design the 2^(k−p) distinct columns are estimated:
/// the identity, the k main effects, and the base interactions not aliased
/// to a main effect — each estimate being the *confounded sum* its alias
/// set implies.
pub fn estimate_effects(
    design: &TwoLevelDesign,
    responses: &[f64],
) -> Result<EffectModel, DesignError> {
    if responses.len() != design.run_count() {
        return Err(DesignError::ResponseMismatch {
            expected: design.run_count(),
            got: responses.len(),
        });
    }
    let n = design.run_count() as f64;
    let mut coefficients = BTreeMap::new();
    let masks: Vec<u32> = if design.is_full() {
        (0..(1u32 << design.k())).collect()
    } else {
        // The estimable columns of the fraction: all subsets of the base
        // factors (they enumerate the 2^(k-p) distinct sign columns), with
        // each subset relabelled to its minimum-alias representative for
        // reporting friendliness (main effects win over interactions).
        let base = design.run_count().trailing_zeros(); // 2^(k-p) runs
        let alias = crate::alias::AliasStructure::of(design)?;
        (0..(1u32 << base)).map(|m| alias.alias_set(m)[0]).collect()
    };
    for mask in masks {
        let dot: f64 = (0..design.run_count())
            .map(|r| design.effect_sign(r, mask) * responses[r])
            .sum();
        coefficients.insert(mask, dot / n);
    }
    Ok(EffectModel {
        design: design.clone(),
        coefficients,
    })
}

/// Estimates effects from replicated responses: `replicates[r]` holds the
/// repeated measurements of run `r`. Effects are fitted on the per-run
/// means; the replicate spread feeds the error term in
/// [`crate::variation::allocate_variation_replicated`].
pub fn estimate_effects_replicated(
    design: &TwoLevelDesign,
    replicates: &[Vec<f64>],
) -> Result<EffectModel, DesignError> {
    if replicates.len() != design.run_count() {
        return Err(DesignError::ResponseMismatch {
            expected: design.run_count(),
            got: replicates.len(),
        });
    }
    if replicates.iter().any(|r| r.is_empty()) {
        return Err(DesignError::Invalid(
            "every run needs at least one replication".into(),
        ));
    }
    let means: Vec<f64> = replicates
        .iter()
        .map(|r| r.iter().sum::<f64>() / r.len() as f64)
        .collect();
    estimate_effects(design, &means)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias::Generator;

    /// Slide 70–72: memory (A) × cache (B) → MIPS.
    fn slide72() -> (TwoLevelDesign, [f64; 4]) {
        (TwoLevelDesign::full(&["A", "B"]), [15.0, 45.0, 25.0, 75.0])
    }

    #[test]
    fn slide_72_coefficients() {
        let (d, y) = slide72();
        let m = estimate_effects(&d, &y).unwrap();
        assert_eq!(m.coefficient(&[]).unwrap(), 40.0);
        assert_eq!(m.coefficient(&["A"]).unwrap(), 20.0);
        assert_eq!(m.coefficient(&["B"]).unwrap(), 10.0);
        assert_eq!(m.coefficient(&["A", "B"]).unwrap(), 5.0);
        assert_eq!(m.mean(), 40.0);
    }

    #[test]
    fn model_reproduces_observations_exactly() {
        let (d, y) = slide72();
        let m = estimate_effects(&d, &y).unwrap();
        for (r, &expected) in y.iter().enumerate() {
            let signs = d.run_signs(r);
            assert!((m.predict(&signs) - expected).abs() < 1e-12, "run {r}");
        }
    }

    #[test]
    fn render_is_the_slide_equation() {
        let (d, y) = slide72();
        let m = estimate_effects(&d, &y).unwrap();
        assert_eq!(m.render(), "y = 40 + 20·xA + 10·xB + 5·xA·xB");
    }

    #[test]
    fn three_factor_full_model() {
        let d = TwoLevelDesign::full(&["A", "B", "C"]);
        // y = 10 + 2xA - 3xB + 1xAxC (constructed, then recovered).
        let y: Vec<f64> = (0..8)
            .map(|r| {
                let s = d.run_signs(r);
                10.0 + 2.0 * s[0] - 3.0 * s[1] + s[0] * s[2]
            })
            .collect();
        let m = estimate_effects(&d, &y).unwrap();
        assert!((m.coefficient(&[]).unwrap() - 10.0).abs() < 1e-12);
        assert!((m.coefficient(&["A"]).unwrap() - 2.0).abs() < 1e-12);
        assert!((m.coefficient(&["B"]).unwrap() + 3.0).abs() < 1e-12);
        assert!((m.coefficient(&["A", "C"]).unwrap() - 1.0).abs() < 1e-12);
        assert!(m.coefficient(&["C"]).unwrap().abs() < 1e-12);
        assert!(m.coefficient(&["A", "B", "C"]).unwrap().abs() < 1e-12);
    }

    #[test]
    fn response_count_checked() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        assert_eq!(
            estimate_effects(&d, &[1.0, 2.0]),
            Err(DesignError::ResponseMismatch {
                expected: 4,
                got: 2
            })
        );
    }

    // estimate_effects returns Result<EffectModel, _> — EffectModel is not
    // PartialEq, so compare errors via matches!.
    impl PartialEq for EffectModel {
        fn eq(&self, other: &Self) -> bool {
            self.coefficients == other.coefficients
        }
    }

    #[test]
    fn fractional_estimates_are_confounded_sums() {
        // In D=ABC, the "A" estimate is really A + BCD. Construct data with
        // a pure BCD effect and watch it land on A.
        let d = TwoLevelDesign::fractional(
            &["A", "B", "C", "D"],
            &[Generator::parse("D=ABC").unwrap()],
        )
        .unwrap();
        let bcd = d.effect_mask(&["B", "C", "D"]).unwrap();
        let y: Vec<f64> = (0..8).map(|r| 5.0 + 2.0 * d.effect_sign(r, bcd)).collect();
        let m = estimate_effects(&d, &y).unwrap();
        assert!(
            (m.coefficient(&["A"]).unwrap() - 2.0).abs() < 1e-12,
            "BCD effect is charged to its alias A"
        );
        assert!((m.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_model_has_8_columns_for_2_4_1() {
        let d = TwoLevelDesign::fractional(
            &["A", "B", "C", "D"],
            &[Generator::parse("D=ABC").unwrap()],
        )
        .unwrap();
        let y = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let m = estimate_effects(&d, &y).unwrap();
        assert_eq!(m.coefficients().count(), 8);
        // Main effects A..D all present.
        for f in ["A", "B", "C", "D"] {
            assert!(m.coefficient(&[f]).is_ok(), "{f}");
        }
    }

    #[test]
    fn replicated_estimation_uses_means() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        let reps = vec![
            vec![14.0, 16.0],
            vec![44.0, 46.0],
            vec![25.0],
            vec![70.0, 80.0],
        ];
        let m = estimate_effects_replicated(&d, &reps).unwrap();
        assert_eq!(m.coefficient(&[]).unwrap(), 40.0);
        assert_eq!(m.coefficient(&["A"]).unwrap(), 20.0);
    }

    #[test]
    fn replicated_rejects_empty_runs() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        let reps = vec![vec![1.0], vec![], vec![1.0], vec![1.0]];
        assert!(estimate_effects_replicated(&d, &reps).is_err());
    }

    #[test]
    #[should_panic(expected = "signs must be ±1")]
    fn predict_rejects_non_unit_signs() {
        let (d, y) = slide72();
        let m = estimate_effects(&d, &y).unwrap();
        let _ = m.predict(&[0.5, 1.0]);
    }
}
