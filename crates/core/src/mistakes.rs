//! Programmatic checks for the tutorial's "common mistakes" list
//! (slide 59):
//!
//! 1. variation due to experimental error is ignored,
//! 2. important parameters are not controlled,
//! 3. effects of different factors are not isolated,
//! 4. simple one-at-a-time experiment design,
//! 5. interactions are ignored,
//! 6. too many experiments are conducted.
//!
//! [`audit`] inspects a design + response table and reports which of these
//! it can detect. It is a lint, not a proof: a clean audit does not make an
//! experiment good, but a finding always points at a real methodological
//! hazard.

use crate::design::{Design, DesignKind};
use crate::twolevel::TwoLevelDesign;
use crate::variation::allocate_variation_replicated;

/// One detected methodological hazard.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which slide-59 mistake number this maps to (1–6).
    pub mistake: u8,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[mistake #{}] {}", self.mistake, self.message)
    }
}

/// Audits a multi-level design (structure only).
pub fn audit_design(design: &Design) -> Vec<Finding> {
    let mut findings = Vec::new();
    if design.kind() == DesignKind::Simple {
        findings.push(Finding {
            mistake: 4,
            message: "one-at-a-time design: interactions cannot be identified; \
                      a 2^k or 2^(k-p) design gives more information for similar effort"
                .into(),
        });
        findings.push(Finding {
            mistake: 5,
            message: "interactions are structurally ignored by this design".into(),
        });
    }
    let full: usize = design.factors().iter().map(|f| f.level_count()).product();
    if design.kind() == DesignKind::FullFactorial && full > 10_000 {
        findings.push(Finding {
            mistake: 6,
            message: format!(
                "enormous design ({full} runs): use a two-stage approach — screen \
                 with a 2^(k-p) design first, then refine the important factors"
            ),
        });
    }
    findings
}

/// Audits replicated two-level results.
///
/// * No replication ⇒ mistake #1 (error variation cannot be separated).
/// * With replication: if the error share exceeds every effect share, the
///   experiment's conclusions are noise (also #1).
pub fn audit_responses(design: &TwoLevelDesign, replicates: &[Vec<f64>]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let max_reps = replicates.iter().map(Vec::len).max().unwrap_or(0);
    if max_reps < 2 {
        findings.push(Finding {
            mistake: 1,
            message: "no replication: variation due to experimental error cannot be \
                      compared against factor effects"
                .into(),
        });
        return findings;
    }
    if let Ok(table) = allocate_variation_replicated(design, replicates) {
        let max_effect = table
            .shares
            .iter()
            .map(|s| s.fraction)
            .fold(0.0f64, f64::max);
        if table.error_fraction > max_effect {
            findings.push(Finding {
                mistake: 1,
                message: format!(
                    "experimental error explains {:.1}% of variation, more than any \
                     factor (max {:.1}%): effects are indistinguishable from noise",
                    table.error_fraction * 100.0,
                    max_effect * 100.0
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::Factor;

    #[test]
    fn simple_design_flagged() {
        let d = Design::simple(vec![
            Factor::numeric("a", &[1.0, 2.0]),
            Factor::numeric("b", &[1.0, 2.0]),
        ]);
        let findings = audit_design(&d);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().any(|f| f.mistake == 4));
        assert!(findings.iter().any(|f| f.mistake == 5));
        assert!(findings[0].to_string().contains("mistake #4"));
    }

    #[test]
    fn enormous_full_factorial_flagged() {
        let levels: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let d = Design::full_factorial(vec![
            Factor::numeric("a", &levels),
            Factor::numeric("b", &levels),
            Factor::numeric("c", &levels),
        ]);
        let findings = audit_design(&d);
        assert!(findings.iter().any(|f| f.mistake == 6));
    }

    #[test]
    fn reasonable_factorial_is_clean() {
        let d = Design::full_factorial(vec![
            Factor::numeric("a", &[1.0, 2.0]),
            Factor::numeric("b", &[1.0, 2.0, 3.0]),
        ]);
        assert!(audit_design(&d).is_empty());
    }

    #[test]
    fn unreplicated_responses_flagged() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        let reps = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        let findings = audit_responses(&d, &reps);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].mistake, 1);
    }

    #[test]
    fn noise_dominated_experiment_flagged() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        // Tiny effects, huge within-run spread.
        let reps = vec![
            vec![100.0, 140.0, 60.0],
            vec![101.0, 61.0, 141.0],
            vec![99.0, 139.0, 59.0],
            vec![102.0, 62.0, 142.0],
        ];
        let findings = audit_responses(&d, &reps);
        assert!(findings
            .iter()
            .any(|f| f.mistake == 1 && f.message.contains("indistinguishable from noise")));
    }

    #[test]
    fn strong_effects_with_replication_are_clean() {
        let d = TwoLevelDesign::full(&["A", "B"]);
        let reps = vec![
            vec![10.0, 10.1],
            vec![30.0, 29.9],
            vec![10.2, 9.9],
            vec![30.1, 30.0],
        ];
        assert!(audit_responses(&d, &reps).is_empty());
    }
}
