//! The two-stage workflow the tutorial recommends (slides 59, 110):
//!
//! > 1. Run a 2^k (or a 2^(k−p)) design.
//! > 2. Evaluate factor importance.
//! > 3. Pick important factors and possibly refine levels.
//!
//! [`screen`] runs stage 1–2: execute a (possibly fractional) two-level
//! design against the experiment and rank the *main effects* by explained
//! variation. [`ScreeningReport::important_factors`] then feeds stage 3 —
//! the caller builds a detailed (multi-level, full-factorial) design over
//! the survivors.

use crate::alias::Generator;
use crate::runner::{Experiment, Runner};
use crate::twolevel::TwoLevelDesign;
use crate::variation::{allocate_variation, allocate_variation_replicated};
use crate::DesignError;

/// Outcome of a screening pass.
#[derive(Debug, Clone)]
pub struct ScreeningReport {
    /// (factor name, fraction of variation explained by its main effect),
    /// most important first.
    pub ranking: Vec<(String, f64)>,
    /// Runs the screen spent.
    pub runs_spent: usize,
    /// Fraction of variation attributed to experimental error (0 without
    /// replication).
    pub error_fraction: f64,
}

impl ScreeningReport {
    /// Factors whose main effect explains at least `threshold` of the
    /// variation — the survivors for stage 3.
    pub fn important_factors(&self, threshold: f64) -> Vec<&str> {
        self.ranking
            .iter()
            .filter(|(_, f)| *f >= threshold)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Renders the ranking.
    pub fn render(&self) -> String {
        let mut out = format!("screening ({} runs)\n", self.runs_spent);
        for (name, fraction) in &self.ranking {
            out.push_str(&format!("{name:<12} {:>6.1}%\n", fraction * 100.0));
        }
        if self.error_fraction > 0.0 {
            out.push_str(&format!(
                "{:<12} {:>6.1}%\n",
                "error",
                self.error_fraction * 100.0
            ));
        }
        out
    }
}

/// Screens `factor_names` with a two-level design — full if `generators`
/// is empty, 2^(k−p) fractional otherwise — and ranks the main effects.
pub fn screen(
    factor_names: &[&str],
    generators: &[Generator],
    replications: usize,
    experiment: &mut dyn Experiment,
) -> Result<ScreeningReport, DesignError> {
    let design = if generators.is_empty() {
        TwoLevelDesign::full(factor_names)
    } else {
        TwoLevelDesign::fractional(factor_names, generators)?
    };
    let table = Runner::new(replications).run_two_level(&design, experiment);
    let variation = if replications > 1 {
        allocate_variation_replicated(&design, &table.replicates)?
    } else {
        allocate_variation(&design, &table.means())?
    };
    let mut ranking: Vec<(String, f64)> = design
        .factor_names()
        .iter()
        .enumerate()
        .map(|(j, name)| {
            let fraction = variation
                .shares
                .iter()
                .find(|s| s.mask == (1 << j))
                .map(|s| s.fraction)
                .unwrap_or(0.0);
            (name.clone(), fraction)
        })
        .collect();
    ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("fractions are finite"));
    Ok(ScreeningReport {
        ranking,
        runs_spent: design.run_count() * replications,
        error_fraction: variation.error_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Assignment;

    /// A synthetic system with two strong factors (A, D), one weak (B) and
    /// one inert (C).
    fn system(a: &Assignment) -> f64 {
        100.0
            + 30.0 * a.num("A").unwrap()
            + 2.0 * a.num("B").unwrap()
            + 0.0 * a.num("C").unwrap()
            + 20.0 * a.num("D").unwrap()
    }

    #[test]
    fn full_screen_ranks_correctly() {
        let mut exp = system;
        let report = screen(&["A", "B", "C", "D"], &[], 1, &mut exp).unwrap();
        assert_eq!(report.runs_spent, 16);
        assert_eq!(report.ranking[0].0, "A");
        assert_eq!(report.ranking[1].0, "D");
        let survivors = report.important_factors(0.05);
        assert_eq!(survivors, vec!["A", "D"]);
    }

    #[test]
    fn fractional_screen_costs_half_and_agrees() {
        let mut exp = system;
        let report = screen(
            &["A", "B", "C", "D"],
            &[Generator::parse("D=ABC").unwrap()],
            1,
            &mut exp,
        )
        .unwrap();
        assert_eq!(report.runs_spent, 8, "half the runs of the full design");
        assert_eq!(report.ranking[0].0, "A");
        assert_eq!(report.ranking[1].0, "D");
        assert_eq!(report.important_factors(0.05), vec!["A", "D"]);
    }

    #[test]
    fn screen_with_replication_reports_error_share() {
        // Noisy system: replication separates noise from effects.
        let mut flip = 1.0;
        let mut exp = |a: &Assignment| {
            flip = -flip;
            100.0 + 10.0 * a.num("A").unwrap() + flip * 3.0
        };
        let report = screen(&["A", "B"], &[], 4, &mut exp).unwrap();
        assert_eq!(report.runs_spent, 16);
        assert!(report.error_fraction > 0.0, "noise must land on error");
        assert_eq!(report.ranking[0].0, "A");
    }

    #[test]
    fn inert_system_ranks_everything_at_zero() {
        let mut exp = |_: &Assignment| 42.0;
        let report = screen(&["A", "B"], &[], 1, &mut exp).unwrap();
        assert!(report.ranking.iter().all(|(_, f)| *f == 0.0));
        assert!(report.important_factors(0.01).is_empty());
    }

    #[test]
    fn render_mentions_factors_and_percent() {
        let mut exp = system;
        let report = screen(&["A", "B", "C", "D"], &[], 1, &mut exp).unwrap();
        let text = report.render();
        assert!(text.contains("A"));
        assert!(text.contains('%'));
    }
}
