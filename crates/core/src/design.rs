//! Multi-level designs: simple (one-at-a-time), full factorial, and the
//! three-level fractional (Latin-square) design of slide 67.

use crate::factor::Factor;

/// How the runs were chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignKind {
    /// Fix a baseline, vary one factor at a time: `n = 1 + Σ(nᵢ−1)`.
    Simple,
    /// All level combinations: `n = Πnᵢ`.
    FullFactorial,
    /// A fraction chosen for balance (e.g. Latin square).
    Fractional,
}

/// A design over multi-level factors: an ordered list of runs, each
/// assigning a level index to every factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    kind: DesignKind,
    factors: Vec<Factor>,
    /// runs[r][f] = level index of factor f in run r.
    runs: Vec<Vec<usize>>,
}

impl Design {
    /// The simple (one-at-a-time) design: run the all-baseline
    /// configuration once, then vary each factor through its non-baseline
    /// levels with everything else at baseline.
    ///
    /// Requires `n = 1 + Σ(nᵢ−1)` runs — cheap, but *"impossible to
    /// identify interactions"* (slide 60).
    pub fn simple(factors: Vec<Factor>) -> Design {
        let mut runs = vec![vec![0; factors.len()]];
        for (f, factor) in factors.iter().enumerate() {
            for level in 1..factor.level_count() {
                let mut run = vec![0; factors.len()];
                run[f] = level;
                runs.push(run);
            }
        }
        Design {
            kind: DesignKind::Simple,
            factors,
            runs,
        }
    }

    /// The full factorial design: every combination, `n = Πnᵢ` runs —
    /// complete, but *"too many tests"* (slide 63).
    pub fn full_factorial(factors: Vec<Factor>) -> Design {
        let mut runs: Vec<Vec<usize>> = vec![vec![]];
        for factor in &factors {
            let mut next = Vec::with_capacity(runs.len() * factor.level_count());
            for level in 0..factor.level_count() {
                for run in &runs {
                    let mut r = run.clone();
                    r.push(level);
                    next.push(r);
                }
            }
            runs = next;
        }
        Design {
            kind: DesignKind::FullFactorial,
            factors,
            runs,
        }
    }

    /// The slide-67 fractional design: four factors, the first with `m`
    /// levels and the rest with 3 levels each, covered in `3·m` runs via a
    /// Latin-square assignment (each pair of factor levels co-occurs in a
    /// balanced pattern).
    ///
    /// With the slide's factors (CPU ∈ {68000, Z80, 8086}, memory ∈
    /// {512K, 2M, 8M}, workload ∈ {managerial, scientific, secretarial},
    /// education ∈ {high-school, postgraduate, college}) this reproduces
    /// the 9-experiment table.
    ///
    /// # Panics
    /// Panics unless there are exactly 4 factors and factors 1..=3 have
    /// exactly 3 levels.
    pub fn latin_square_fraction(factors: Vec<Factor>) -> Design {
        assert_eq!(factors.len(), 4, "latin square fraction needs 4 factors");
        for f in &factors[1..] {
            assert_eq!(
                f.level_count(),
                3,
                "factor {} must have exactly 3 levels",
                f.name()
            );
        }
        let m = factors[0].level_count();
        let mut runs = Vec::with_capacity(3 * m);
        for a in 0..m {
            for i in 0..3 {
                // Two mutually orthogonal Latin squares over Z3 give the
                // third and fourth columns.
                let b = i;
                let c = (i + a) % 3;
                let d = (i + 2 * a) % 3;
                runs.push(vec![a, b, c, d]);
            }
        }
        Design {
            kind: DesignKind::Fractional,
            factors,
            runs,
        }
    }

    /// The design kind.
    pub fn kind(&self) -> DesignKind {
        self.kind
    }

    /// The factors.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The level indices of run `r`.
    pub fn run(&self, r: usize) -> &[usize] {
        &self.runs[r]
    }

    /// All runs.
    pub fn runs(&self) -> &[Vec<usize>] {
        &self.runs
    }

    /// Renders the design as a table of level labels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let widths: Vec<usize> = self
            .factors
            .iter()
            .map(|f| {
                f.levels()
                    .iter()
                    .map(|l| l.label().len())
                    .chain(std::iter::once(f.name().len()))
                    .max()
                    .unwrap_or(4)
            })
            .collect();
        out.push_str("run ");
        for (f, w) in self.factors.iter().zip(&widths) {
            out.push_str(&format!(" {:<w$}", f.name()));
        }
        out.push('\n');
        for (i, run) in self.runs.iter().enumerate() {
            out.push_str(&format!("{:>3} ", i + 1));
            for ((f, &level), w) in self.factors.iter().zip(run).zip(&widths) {
                out.push_str(&format!(" {:<w$}", f.levels()[level].label()));
            }
            out.push('\n');
        }
        out
    }

    /// Balance check: every level of every factor appears equally often
    /// (true for full factorials and Latin fractions, false for simple
    /// designs).
    pub fn is_balanced(&self) -> bool {
        for (f, factor) in self.factors.iter().enumerate() {
            let mut counts = vec![0usize; factor.level_count()];
            for run in &self.runs {
                counts[run[f]] += 1;
            }
            if counts.windows(2).any(|w| w[0] != w[1]) {
                return false;
            }
        }
        true
    }

    /// Pairwise coverage check: for factors `i` and `j`, does every level
    /// pair occur in some run?
    pub fn covers_pairs(&self, i: usize, j: usize) -> bool {
        let ni = self.factors[i].level_count();
        let nj = self.factors[j].level_count();
        let mut seen = vec![false; ni * nj];
        for run in &self.runs {
            seen[run[i] * nj + run[j]] = true;
        }
        seen.iter().all(|&b| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slide_56_factors() -> Vec<Factor> {
        // "5 parameters, each has between 10 and 40 values."
        vec![
            Factor::numeric("p1", &(0..10).map(|i| i as f64).collect::<Vec<_>>()),
            Factor::numeric("p2", &(0..20).map(|i| i as f64).collect::<Vec<_>>()),
            Factor::numeric("p3", &(0..40).map(|i| i as f64).collect::<Vec<_>>()),
            Factor::numeric("p4", &(0..10).map(|i| i as f64).collect::<Vec<_>>()),
            Factor::numeric("p5", &(0..15).map(|i| i as f64).collect::<Vec<_>>()),
        ]
    }

    #[test]
    fn simple_design_run_count_formula() {
        let factors = slide_56_factors();
        let expected = 1 + factors.iter().map(|f| f.level_count() - 1).sum::<usize>();
        let d = Design::simple(factors);
        assert_eq!(d.run_count(), expected);
        assert_eq!(d.run_count(), 1 + 9 + 19 + 39 + 9 + 14);
        assert_eq!(d.kind(), DesignKind::Simple);
    }

    #[test]
    fn simple_design_varies_one_factor_at_a_time() {
        let d = Design::simple(vec![
            Factor::numeric("a", &[0.0, 1.0, 2.0]),
            Factor::numeric("b", &[0.0, 1.0]),
        ]);
        assert_eq!(d.run_count(), 4);
        assert_eq!(d.run(0), &[0, 0]); // baseline
        for run in d.runs().iter().skip(1) {
            let non_baseline = run.iter().filter(|&&l| l != 0).count();
            assert_eq!(non_baseline, 1);
        }
        assert!(!d.is_balanced());
    }

    #[test]
    fn full_factorial_run_count() {
        let d = Design::full_factorial(vec![
            Factor::numeric("a", &[0.0, 1.0, 2.0]),
            Factor::numeric("b", &[0.0, 1.0]),
            Factor::categorical("c", &["x", "y", "z", "w"]),
        ]);
        assert_eq!(d.run_count(), 3 * 2 * 4);
        assert!(d.is_balanced());
        assert!(d.covers_pairs(0, 1));
        assert!(d.covers_pairs(0, 2));
        assert!(d.covers_pairs(1, 2));
        // All runs distinct.
        let mut runs = d.runs().to_vec();
        runs.sort();
        runs.dedup();
        assert_eq!(runs.len(), 24);
    }

    #[test]
    fn full_factorial_explodes_like_slide_56_warns() {
        let total: usize = slide_56_factors().iter().map(|f| f.level_count()).product();
        assert_eq!(total, 10 * 20 * 40 * 10 * 15); // 1.2 million runs
        assert!(total > 1_000_000);
    }

    fn slide_67_design() -> Design {
        Design::latin_square_fraction(vec![
            Factor::categorical("cpu", &["68000", "Z80", "8086"]),
            Factor::categorical("memory", &["512K", "2M", "8M"]),
            Factor::categorical("workload", &["managerial", "scientific", "secretarial"]),
            Factor::categorical("education", &["high school", "postgraduate", "college"]),
        ])
    }

    #[test]
    fn latin_fraction_has_nine_runs() {
        let d = slide_67_design();
        assert_eq!(d.run_count(), 9, "slide 67's table has 9 experiments");
        assert_eq!(d.kind(), DesignKind::Fractional);
        assert!(d.is_balanced());
    }

    #[test]
    fn latin_fraction_covers_cpu_memory_pairs() {
        let d = slide_67_design();
        // CPU × memory is fully covered (that is the point of the design)…
        assert!(d.covers_pairs(0, 1));
        // …and so are CPU × workload and CPU × education.
        assert!(d.covers_pairs(0, 2));
        assert!(d.covers_pairs(0, 3));
    }

    #[test]
    fn latin_fraction_is_a_fraction() {
        let d = slide_67_design();
        let full: usize = d.factors().iter().map(|f| f.level_count()).product();
        assert_eq!(full, 81);
        assert_eq!(d.run_count(), 9, "9 of 81 combinations");
    }

    #[test]
    fn render_lists_labels() {
        let d = slide_67_design();
        let text = d.render();
        assert!(text.contains("cpu"));
        assert!(text.contains("Z80"));
        assert!(text.contains("postgraduate"));
        assert_eq!(text.lines().count(), 10); // header + 9 runs
    }

    #[test]
    #[should_panic(expected = "must have exactly 3 levels")]
    fn latin_fraction_checks_levels() {
        let _ = Design::latin_square_fraction(vec![
            Factor::categorical("a", &["1", "2", "3"]),
            Factor::categorical("b", &["1", "2"]),
            Factor::categorical("c", &["1", "2", "3"]),
            Factor::categorical("d", &["1", "2", "3"]),
        ]);
    }
}
