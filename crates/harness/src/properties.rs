//! `java.util.Properties`, the Rust edition (slides 183–195).
//!
//! The tutorial's recipe for parameterizable experiments:
//!
//! 1. code ships **defaults**,
//! 2. a **config file** overrides them,
//! 3. **command-line `-Dkey=value`** arguments override both,
//!
//! and a missing config file produces a *meaningful error* (slide 189).
//! Keys and values are strings; typed accessors parse on demand.

use std::collections::BTreeMap;
use std::path::Path;

/// Ordered string-to-string configuration store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Properties {
    values: BTreeMap<String, String>,
}

/// Errors from property handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropError {
    /// The config file was missing or unreadable.
    FileUnreadable {
        /// Path attempted.
        path: String,
        /// Underlying reason.
        reason: String,
    },
    /// A line was not `key=value`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A value failed to parse as the requested type.
    BadValue {
        /// The key.
        key: String,
        /// The raw value.
        value: String,
        /// Target type name.
        wanted: &'static str,
    },
    /// A required key is absent.
    Missing(String),
}

impl std::fmt::Display for PropError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PropError::FileUnreadable { path, reason } => {
                write!(f, "cannot read configuration file '{path}': {reason}")
            }
            PropError::Malformed { line, text } => {
                write!(f, "config line {line} is not key=value: '{text}'")
            }
            PropError::BadValue { key, value, wanted } => {
                write!(f, "property {key}='{value}' is not a valid {wanted}")
            }
            PropError::Missing(key) => write!(f, "required property '{key}' not set"),
        }
    }
}

impl std::error::Error for PropError {}

impl Properties {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a store from default pairs (the `defaults` array of the
    /// slide-193 Java class).
    pub fn with_defaults(defaults: &[(&str, &str)]) -> Self {
        let mut p = Properties::new();
        for (k, v) in defaults {
            p.set(k, v);
        }
        p
    }

    /// Sets a property.
    pub fn set(&mut self, key: &str, value: &str) {
        self.values.insert(key.to_owned(), value.to_owned());
    }

    /// Gets a property.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Gets a required property.
    pub fn require(&self, key: &str) -> Result<&str, PropError> {
        self.get(key)
            .ok_or_else(|| PropError::Missing(key.to_owned()))
    }

    /// Typed accessor.
    pub fn get_f64(&self, key: &str) -> Result<Option<f64>, PropError> {
        self.get(key)
            .map(|v| {
                v.parse().map_err(|_| PropError::BadValue {
                    key: key.to_owned(),
                    value: v.to_owned(),
                    wanted: "f64",
                })
            })
            .transpose()
    }

    /// Typed accessor.
    pub fn get_u64(&self, key: &str) -> Result<Option<u64>, PropError> {
        self.get(key)
            .map(|v| {
                v.parse().map_err(|_| PropError::BadValue {
                    key: key.to_owned(),
                    value: v.to_owned(),
                    wanted: "u64",
                })
            })
            .transpose()
    }

    /// Typed accessor (`true`/`false`, `1`/`0`, `yes`/`no`).
    pub fn get_bool(&self, key: &str) -> Result<Option<bool>, PropError> {
        self.get(key)
            .map(|v| match v.to_ascii_lowercase().as_str() {
                "true" | "1" | "yes" | "on" => Ok(true),
                "false" | "0" | "no" | "off" => Ok(false),
                _ => Err(PropError::BadValue {
                    key: key.to_owned(),
                    value: v.to_owned(),
                    wanted: "bool",
                }),
            })
            .transpose()
    }

    /// Parses `key=value` lines (`#` comments and blank lines ignored) and
    /// merges them over the current values.
    pub fn load_str(&mut self, text: &str) -> Result<(), PropError> {
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(PropError::Malformed {
                    line: i + 1,
                    text: raw.to_owned(),
                });
            };
            self.set(k.trim(), v.trim());
        }
        Ok(())
    }

    /// Loads a config file and merges it over the current values; a
    /// missing file is a *reported* error, never silent.
    pub fn load_file(&mut self, path: &Path) -> Result<(), PropError> {
        let text = std::fs::read_to_string(path).map_err(|e| PropError::FileUnreadable {
            path: path.display().to_string(),
            reason: e.to_string(),
        })?;
        self.load_str(&text)
    }

    /// Applies `-Dkey=value` command-line arguments over the current
    /// values (unknown arguments are returned for the caller to handle).
    pub fn apply_args<'a>(
        &mut self,
        args: impl IntoIterator<Item = &'a str>,
    ) -> Result<Vec<&'a str>, PropError> {
        let mut rest = Vec::new();
        for arg in args {
            if let Some(pair) = arg.strip_prefix("-D") {
                let Some((k, v)) = pair.split_once('=') else {
                    return Err(PropError::Malformed {
                        line: 0,
                        text: arg.to_owned(),
                    });
                };
                self.set(k, v);
            } else {
                rest.push(arg);
            }
        }
        Ok(rest)
    }

    /// Serializes to the config-file format (sorted, stable).
    pub fn store(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.values {
            out.push_str(&format!("{k}={v}\n"));
        }
        out
    }

    /// All keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_then_file_then_args_precedence() {
        // The slide-195 layering.
        let mut p = Properties::with_defaults(&[("dataDir", "./data"), ("doStore", "true")]);
        p.load_str("dataDir=/mnt/exp\nreps=5\n").unwrap();
        let rest = p
            .apply_args(["-DdoStore=false", "run", "-Dreps=7"])
            .unwrap();
        assert_eq!(p.get("dataDir"), Some("/mnt/exp"));
        assert_eq!(p.get_bool("doStore").unwrap(), Some(false));
        assert_eq!(p.get_u64("reps").unwrap(), Some(7));
        assert_eq!(rest, vec!["run"]);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let mut p = Properties::new();
        p.load_str("# a comment\n\n  key = value with spaces  \n")
            .unwrap();
        assert_eq!(p.get("key"), Some("value with spaces"));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn malformed_line_reported_with_number() {
        let mut p = Properties::new();
        let err = p.load_str("good=1\nbadline\n").unwrap_err();
        assert_eq!(
            err,
            PropError::Malformed {
                line: 2,
                text: "badline".into()
            }
        );
    }

    #[test]
    fn missing_file_is_a_meaningful_error() {
        let mut p = Properties::new();
        let err = p
            .load_file(Path::new("/definitely/not/here.conf"))
            .unwrap_err();
        match &err {
            PropError::FileUnreadable { path, .. } => {
                assert!(path.contains("not/here.conf"));
            }
            other => panic!("{other:?}"),
        }
        assert!(err.to_string().contains("cannot read configuration file"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("perfeval_props");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exp.conf");
        let mut p = Properties::with_defaults(&[("seed", "42"), ("sf", "0.01")]);
        std::fs::write(&path, p.store()).unwrap();
        let mut q = Properties::new();
        q.load_file(&path).unwrap();
        assert_eq!(p, q);
        p.set("extra", "1");
        assert_ne!(p, q);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn typed_accessors() {
        let mut p = Properties::new();
        p.set("f", "1.5");
        p.set("n", "12");
        p.set("b", "yes");
        p.set("junk", "zzz");
        assert_eq!(p.get_f64("f").unwrap(), Some(1.5));
        assert_eq!(p.get_u64("n").unwrap(), Some(12));
        assert_eq!(p.get_bool("b").unwrap(), Some(true));
        assert_eq!(p.get_f64("absent").unwrap(), None);
        assert!(p.get_u64("junk").is_err());
        assert!(p.get_bool("junk").is_err());
        let msg = p.get_f64("junk").unwrap_err().to_string();
        assert!(msg.contains("junk"));
    }

    #[test]
    fn require_reports_key() {
        let p = Properties::new();
        assert_eq!(
            p.require("seed").unwrap_err(),
            PropError::Missing("seed".into())
        );
    }

    #[test]
    fn bad_dash_d_argument() {
        let mut p = Properties::new();
        assert!(p.apply_args(["-Dnoequals"]).is_err());
    }

    #[test]
    fn store_is_sorted_and_stable() {
        let mut p = Properties::new();
        p.set("zeta", "1");
        p.set("alpha", "2");
        assert_eq!(p.store(), "alpha=2\nzeta=1\n");
    }
}
