//! The repeatability record: a submission checklist, and the SIGMOD 2008
//! repeatability-assessment outcome data of slides 218–220.
//!
//! The tutorial reports that of 436 SIGMOD 2008 submissions, 298 provided
//! code, and shows three pie charts of assessment outcomes. The slide deck
//! gives the chart categories and population sizes (accepted: 78,
//! rejected-but-verified: 11, all verified: 64); the per-slice counts below
//! are measured from the published charts and marked as such.

/// Outcome of repeating one paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepeatOutcome {
    /// Every experiment repeated.
    AllRepeated,
    /// Some experiments repeated.
    SomeRepeated,
    /// Nothing could be repeated.
    NoneRepeated,
    /// Authors provided an excuse instead of code.
    Excuse,
    /// No submission at all.
    NoSubmission,
}

impl RepeatOutcome {
    /// Chart label.
    pub fn label(&self) -> &'static str {
        match self {
            RepeatOutcome::AllRepeated => "All repeated",
            RepeatOutcome::SomeRepeated => "Some repeated",
            RepeatOutcome::NoneRepeated => "None repeated",
            RepeatOutcome::Excuse => "Excuse",
            RepeatOutcome::NoSubmission => "No submission",
        }
    }
}

/// One population of assessed papers.
#[derive(Debug, Clone)]
pub struct AssessmentPopulation {
    /// Population name ("Accepted papers").
    pub name: String,
    /// (outcome, paper count) pairs.
    pub counts: Vec<(RepeatOutcome, usize)>,
}

impl AssessmentPopulation {
    /// Total papers in the population.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// Fraction of a given outcome.
    pub fn fraction(&self, outcome: RepeatOutcome) -> f64 {
        let n = self
            .counts
            .iter()
            .find(|(o, _)| *o == outcome)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        n as f64 / self.total() as f64
    }

    /// Fraction of papers where at least something repeated.
    pub fn at_least_some_repeated(&self) -> f64 {
        self.fraction(RepeatOutcome::AllRepeated) + self.fraction(RepeatOutcome::SomeRepeated)
    }

    /// Renders the slice table (the pie chart, honestly: as numbers).
    pub fn render(&self) -> String {
        let mut out = format!("{} ({})\n", self.name, self.total());
        for (o, n) in &self.counts {
            out.push_str(&format!(
                "  {:<14} {:>3} ({:>5.1}%)\n",
                o.label(),
                n,
                100.0 * *n as f64 / self.total() as f64
            ));
        }
        out
    }
}

/// The three populations of slides 218–220. Totals match the slides
/// exactly; per-slice counts are measured from the published pie charts
/// (the deck prints no numbers inside the slices).
pub fn sigmod2008_populations() -> Vec<AssessmentPopulation> {
    vec![
        AssessmentPopulation {
            name: "Accepted papers".into(),
            counts: vec![
                (RepeatOutcome::AllRepeated, 26),
                (RepeatOutcome::SomeRepeated, 21),
                (RepeatOutcome::NoneRepeated, 6),
                (RepeatOutcome::Excuse, 12),
                (RepeatOutcome::NoSubmission, 13),
            ],
        },
        AssessmentPopulation {
            name: "Rejected verified papers".into(),
            counts: vec![
                (RepeatOutcome::AllRepeated, 5),
                (RepeatOutcome::SomeRepeated, 4),
                (RepeatOutcome::NoneRepeated, 2),
            ],
        },
        AssessmentPopulation {
            name: "All verified papers".into(),
            counts: vec![
                (RepeatOutcome::AllRepeated, 31),
                (RepeatOutcome::SomeRepeated, 25),
                (RepeatOutcome::NoneRepeated, 8),
            ],
        },
    ]
}

/// SIGMOD 2008 headline numbers from the acknowledgments slide: 298 of 436
/// papers provided code for repeatability testing.
pub const SIGMOD2008_SUBMISSIONS: usize = 436;
/// Papers that provided code.
pub const SIGMOD2008_PROVIDED_CODE: usize = 298;

/// The repeatability checklist distilled from the chapter: every item maps
/// to a concrete harness facility.
#[derive(Debug, Clone, Default)]
pub struct Checklist {
    /// Experiments parameterizable via config/args (not source edits).
    pub parameterizable: bool,
    /// Portable: common hardware, free tools.
    pub portable: bool,
    /// One command per experiment (scripted control loops).
    pub scripted: bool,
    /// Graphs generated automatically from result files.
    pub graphs_automated: bool,
    /// Instructions: install, run, output location, duration.
    pub documented: bool,
    /// Data sets regenerable from recorded seeds.
    pub data_regenerable: bool,
}

impl Checklist {
    /// Items satisfied (0–6).
    pub fn score(&self) -> usize {
        [
            self.parameterizable,
            self.portable,
            self.scripted,
            self.graphs_automated,
            self.documented,
            self.data_regenerable,
        ]
        .iter()
        .filter(|b| **b)
        .count()
    }

    /// The missing items, by name.
    pub fn missing(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if !self.parameterizable {
            out.push("parameterizable");
        }
        if !self.portable {
            out.push("portable");
        }
        if !self.scripted {
            out.push("scripted");
        }
        if !self.graphs_automated {
            out.push("graphs_automated");
        }
        if !self.documented {
            out.push("documented");
        }
        if !self.data_regenerable {
            out.push("data_regenerable");
        }
        out
    }

    /// A repeatable experiment suite satisfies everything.
    pub fn is_repeatable(&self) -> bool {
        self.score() == 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populations_match_slide_totals() {
        let pops = sigmod2008_populations();
        assert_eq!(pops[0].total(), 78, "accepted papers");
        assert_eq!(pops[1].total(), 11, "rejected verified papers");
        assert_eq!(pops[2].total(), 64, "all verified papers");
    }

    #[test]
    fn all_verified_is_consistent_with_splits() {
        // accepted-with-code (excluding excuses/no-submission) + rejected
        // verified = all verified: 26+21+6 + 5+4+2 = 64.
        let pops = sigmod2008_populations();
        let accepted_verified: usize = pops[0]
            .counts
            .iter()
            .filter(|(o, _)| {
                matches!(
                    o,
                    RepeatOutcome::AllRepeated
                        | RepeatOutcome::SomeRepeated
                        | RepeatOutcome::NoneRepeated
                )
            })
            .map(|(_, n)| n)
            .sum();
        assert_eq!(accepted_verified + pops[1].total(), pops[2].total());
        // And the all-verified slices are the sums of the two splits.
        for outcome in [
            RepeatOutcome::AllRepeated,
            RepeatOutcome::SomeRepeated,
            RepeatOutcome::NoneRepeated,
        ] {
            let get = |p: &AssessmentPopulation| {
                p.counts
                    .iter()
                    .find(|(o, _)| *o == outcome)
                    .map(|(_, n)| *n)
                    .unwrap_or(0)
            };
            assert_eq!(get(&pops[0]) + get(&pops[1]), get(&pops[2]), "{outcome:?}");
        }
    }

    #[test]
    fn most_verified_papers_repeated_at_least_partially() {
        let pops = sigmod2008_populations();
        let all_verified = &pops[2];
        assert!(all_verified.at_least_some_repeated() > 0.8);
        assert!(all_verified.fraction(RepeatOutcome::NoneRepeated) < 0.2);
    }

    #[test]
    fn headline_numbers() {
        assert_eq!(SIGMOD2008_SUBMISSIONS, 436);
        assert_eq!(SIGMOD2008_PROVIDED_CODE, 298);
        assert!(SIGMOD2008_PROVIDED_CODE as f64 / SIGMOD2008_SUBMISSIONS as f64 > 0.65);
    }

    #[test]
    fn render_shows_percentages() {
        let pops = sigmod2008_populations();
        let text = pops[0].render();
        assert!(text.contains("Accepted papers (78)"));
        assert!(text.contains("All repeated"));
        assert!(text.contains('%'));
    }

    #[test]
    fn checklist_scoring() {
        let mut c = Checklist::default();
        assert_eq!(c.score(), 0);
        assert!(!c.is_repeatable());
        assert_eq!(c.missing().len(), 6);
        c.parameterizable = true;
        c.portable = true;
        c.scripted = true;
        c.graphs_automated = true;
        c.documented = true;
        assert_eq!(c.score(), 5);
        assert_eq!(c.missing(), vec!["data_regenerable"]);
        c.data_regenerable = true;
        assert!(c.is_repeatable());
    }
}
