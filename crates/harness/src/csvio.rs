//! CSV result files with **locale validation**.
//!
//! Slide 212's war story: averaged timings (`13.666`, `12.3333`) copy-pasted
//! into a spreadsheet with a European locale silently became `13666` and
//! `123333`, and one of twenty hand-made graphs was wrong. The cure is a
//! pipeline that (a) never goes through a clipboard, and (b) *validates*
//! numeric columns on read: a column whose values jump by ~1000× when a few
//! entries lose their decimal point is flagged as locale corruption.

use std::path::Path;

/// A parsed CSV table: a header plus numeric rows (the result files this
/// harness produces are always numeric; labels belong in the file name,
/// per the tutorial's avgs.out counter-example).
#[derive(Debug, Clone, PartialEq)]
pub struct CsvTable {
    /// Column names.
    pub header: Vec<String>,
    /// Row-major values.
    pub rows: Vec<Vec<f64>>,
}

impl CsvTable {
    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.header.iter().position(|h| h == name)
    }

    /// One column's values.
    pub fn column(&self, idx: usize) -> Vec<f64> {
        self.rows.iter().map(|r| r[idx]).collect()
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

/// CSV errors, including the locale-corruption detection.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// File could not be read/written.
    Io(String),
    /// A cell failed to parse as a number.
    BadCell {
        /// 1-based data row.
        row: usize,
        /// 0-based column.
        col: usize,
        /// Raw text.
        text: String,
    },
    /// A row had the wrong number of fields.
    RaggedRow {
        /// 1-based data row.
        row: usize,
        /// Fields expected (header width).
        expected: usize,
        /// Fields found.
        got: usize,
    },
    /// The file was empty.
    Empty,
    /// Suspected locale corruption (decimal separators dropped).
    LocaleCorruption {
        /// Column name.
        column: String,
        /// Ratio between suspicious values and the column median.
        ratio: f64,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(m) => write!(f, "csv i/o error: {m}"),
            CsvError::BadCell { row, col, text } => {
                write!(f, "row {row}, column {col}: '{text}' is not a number")
            }
            CsvError::RaggedRow { row, expected, got } => {
                write!(f, "row {row} has {got} fields, expected {expected}")
            }
            CsvError::Empty => write!(f, "csv file is empty"),
            CsvError::LocaleCorruption { column, ratio } => write!(
                f,
                "column '{column}' looks locale-corrupted: some values are \
                 ~{ratio:.0}x the column median (decimal separator dropped?)"
            ),
        }
    }
}

impl std::error::Error for CsvError {}

/// Writes a numeric CSV file.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<f64>]) -> Result<(), CsvError> {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    std::fs::write(path, out).map_err(|e| CsvError::Io(e.to_string()))
}

/// Parses CSV text (no validation).
pub fn parse_csv(text: &str) -> Result<CsvTable, CsvError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header: Vec<String> = lines
        .next()
        .ok_or(CsvError::Empty)?
        .split(',')
        .map(|s| s.trim().to_owned())
        .collect();
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != header.len() {
            return Err(CsvError::RaggedRow {
                row: i + 1,
                expected: header.len(),
                got: cells.len(),
            });
        }
        let mut row = Vec::with_capacity(cells.len());
        for (c, cell) in cells.iter().enumerate() {
            let v: f64 = cell.trim().parse().map_err(|_| CsvError::BadCell {
                row: i + 1,
                col: c,
                text: cell.trim().to_owned(),
            })?;
            row.push(v);
        }
        rows.push(row);
    }
    Ok(CsvTable { header, rows })
}

/// Reads and parses a CSV file, then runs [`validate_locale`] on every
/// column — the full slide-212 defence.
pub fn read_csv(path: &Path) -> Result<CsvTable, CsvError> {
    let text = std::fs::read_to_string(path).map_err(|e| CsvError::Io(e.to_string()))?;
    let table = parse_csv(&text)?;
    validate_locale(&table)?;
    Ok(table)
}

/// Detects the `13.666 → 13666` corruption class.
///
/// A value that lost its decimal separator is (a) integral, (b) ≥ ~1000×
/// larger than the column's uncorrupted values, and (c) — the killer
/// signature — dividing it by the 10^k that brings it back into the
/// column's range yields a *non-integral* number (13666 / 10³ = 13.666).
/// Legitimately wide-ranging integer columns (10, 10000, 100000 rows) stay
/// integral under that shift and pass.
///
/// The check is heuristic by design; it trades a vanishing false-positive
/// rate (a count column whose large entries happen to decimal-shift into
/// the small cluster non-integrally) for catching the silent corruption
/// the tutorial shows producing a wrong published graph.
pub fn validate_locale(table: &CsvTable) -> Result<(), CsvError> {
    for (c, name) in table.header.iter().enumerate() {
        let column = table.column(c);
        if column.len() < 3 {
            continue;
        }
        let mut sorted: Vec<f64> = column
            .iter()
            .map(|v| v.abs())
            .filter(|v| *v > 0.0)
            .collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite csv values"));
        if sorted.len() < 3 {
            continue;
        }
        // Find the largest multiplicative gap between adjacent magnitudes.
        let mut split = None;
        let mut best_ratio = 1.0;
        for w in 0..sorted.len() - 1 {
            let ratio = sorted[w + 1] / sorted[w];
            if ratio > best_ratio {
                best_ratio = ratio;
                split = Some(w);
            }
        }
        let Some(split) = split else { continue };
        if best_ratio < 500.0 {
            continue; // magnitudes are continuous: no bimodal signature
        }
        let small = &sorted[..=split];
        let (small_min, small_max) = (small[0], small[small.len() - 1]);
        for &v in &sorted[split + 1..] {
            if v.fract() != 0.0 {
                continue; // still has a separator: not this corruption
            }
            for k in 3..=7u32 {
                let shifted = v / 10f64.powi(k as i32);
                let in_range = shifted >= 0.5 * small_min && shifted <= 2.0 * small_max;
                if in_range && shifted.fract() != 0.0 {
                    return Err(CsvError::LocaleCorruption {
                        column: name.clone(),
                        ratio: v / small_max,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("perfeval_csv");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_read_roundtrip() {
        let path = tmp("roundtrip.csv");
        write_csv(
            &path,
            &["sf", "ms"],
            &[vec![1.0, 1234.0], vec![2.0, 2467.0], vec![3.0, 4623.0]],
        )
        .unwrap();
        let t = read_csv(&path).unwrap();
        assert_eq!(t.header, vec!["sf", "ms"]);
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column(1), vec![1234.0, 2467.0, 4623.0]);
        assert_eq!(t.column_index("ms"), Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_rejects_ragged_and_bad_cells() {
        assert_eq!(
            parse_csv("a,b\n1,2\n3\n").unwrap_err(),
            CsvError::RaggedRow {
                row: 2,
                expected: 2,
                got: 1
            }
        );
        match parse_csv("a\nx\n").unwrap_err() {
            CsvError::BadCell {
                row: 1,
                col: 0,
                text,
            } => assert_eq!(text, "x"),
            other => panic!("{other:?}"),
        }
        assert_eq!(parse_csv("").unwrap_err(), CsvError::Empty);
    }

    #[test]
    fn slide_212_corruption_detected() {
        // The exact avgs.out from the slide, after the broken copy-paste:
        // 13.666 and 12.3333 lost their separators.
        let text = "a,b\n1,13666\n2,15\n3,123333\n4,13\n";
        let table = parse_csv(text).unwrap();
        match validate_locale(&table).unwrap_err() {
            CsvError::LocaleCorruption { column, ratio } => {
                assert_eq!(column, "b");
                assert!(ratio > 500.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clean_version_of_slide_212_passes() {
        let text = "a,b\n1,13.666\n2,15\n3,12.3333\n4,13\n";
        let table = parse_csv(text).unwrap();
        assert!(validate_locale(&table).is_ok());
    }

    #[test]
    fn legitimate_wide_range_is_not_flagged() {
        // Row counts spanning orders of magnitude: all integers — fine.
        let text = "n,rows\n1,10\n2,10000\n3,100000\n";
        let table = parse_csv(text).unwrap();
        assert!(validate_locale(&table).is_ok());
        // Fractional values spanning a wide range but never integral: fine.
        let text = "n,ms\n1,1.5\n2,800.25\n3,90000.125\n";
        let table = parse_csv(text).unwrap();
        assert!(validate_locale(&table).is_ok());
    }

    #[test]
    fn tiny_columns_skipped() {
        let text = "a\n13.6\n13600\n";
        let table = parse_csv(text).unwrap();
        assert!(validate_locale(&table).is_ok(), "too few rows to judge");
    }

    #[test]
    fn read_csv_applies_validation() {
        let path = tmp("corrupt.csv");
        std::fs::write(&path, "a,b\n1,13666\n2,15\n3,123333\n4,13\n").unwrap();
        assert!(matches!(
            read_csv(&path),
            Err(CsvError::LocaleCorruption { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_messages_are_actionable() {
        let e = CsvError::LocaleCorruption {
            column: "ms".into(),
            ratio: 1000.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("decimal separator"));
        assert!(msg.contains("ms"));
    }
}
