//! Terminal line charts, for experiment binaries that reproduce *figures*.
//!
//! The tutorial's presentation rules (slides 118–128) apply even to a quick
//! terminal rendering: the y axis starts at zero unless asked otherwise,
//! axes carry labels with units, and series are labelled with keywords.
//! This is deliberately minimal — the publishable artifact is the generated
//! gnuplot script; the ASCII chart is the "CSI" view for the terminal.

/// A series of (x, y) points with a keyword label.
#[derive(Debug, Clone)]
pub struct AsciiSeries {
    /// Legend keyword ("CPU", "Memory" — never a symbol).
    pub label: String,
    /// Points, assumed x-sorted.
    pub points: Vec<(f64, f64)>,
}

/// A minimal multi-series scatter/line chart rendered to text.
#[derive(Debug, Clone)]
pub struct AsciiChart {
    title: String,
    y_label: String,
    x_label: String,
    series: Vec<AsciiSeries>,
    height: usize,
    width: usize,
    y_from_zero: bool,
}

impl AsciiChart {
    /// Creates a chart; labels should carry units.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        AsciiChart {
            title: title.to_owned(),
            y_label: y_label.to_owned(),
            x_label: x_label.to_owned(),
            series: Vec::new(),
            height: 16,
            width: 60,
            y_from_zero: true,
        }
    }

    /// Adds a series.
    pub fn series(mut self, label: &str, points: Vec<(f64, f64)>) -> Self {
        self.series.push(AsciiSeries {
            label: label.to_owned(),
            points,
        });
        self
    }

    /// Canvas size in characters.
    pub fn size(mut self, width: usize, height: usize) -> Self {
        self.width = width.max(10);
        self.height = height.max(4);
        self
    }

    /// Lets the y axis start at the data minimum (the documented
    /// exception, not the default).
    pub fn y_from_data(mut self) -> Self {
        self.y_from_zero = false;
        self
    }

    /// Number of series (≤ 6 per the line-chart rule; not enforced here —
    /// `chartlint` owns the rules).
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        if all.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let x_min = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let x_max = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let y_data_min = all.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let y_max = all.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let y_min = if self.y_from_zero {
            0.0f64.min(y_data_min)
        } else {
            y_data_min
        };
        let x_span = (x_max - x_min).max(1e-12);
        let y_span = (y_max - y_min).max(1e-12);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, s) in self.series.iter().enumerate() {
            let mark = MARKS[si % MARKS.len()];
            for &(x, y) in &s.points {
                let col = (((x - x_min) / x_span) * (self.width - 1) as f64).round() as usize;
                let row_from_bottom =
                    (((y - y_min) / y_span) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - row_from_bottom.min(self.height - 1);
                grid[row][col.min(self.width - 1)] = mark;
            }
        }
        let mut out = format!("{}\n", self.title);
        for (i, row) in grid.iter().enumerate() {
            let y_here = y_max - y_span * i as f64 / (self.height - 1) as f64;
            let label = if i == 0 || i == self.height - 1 || i == self.height / 2 {
                format!("{y_here:>10.1}")
            } else {
                " ".repeat(10)
            };
            out.push_str(&format!("{label} |{}\n", row.iter().collect::<String>()));
        }
        out.push_str(&format!("{} +{}\n", " ".repeat(10), "-".repeat(self.width)));
        out.push_str(&format!(
            "{}  {:<width$.1}{:>rest$.1}\n",
            " ".repeat(10),
            x_min,
            x_max,
            width = self.width / 2,
            rest = self.width - self.width / 2
        ));
        out.push_str(&format!(
            "{}  x: {}   y: {}\n",
            " ".repeat(10),
            self.x_label,
            self.y_label
        ));
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!(
                "{}  {} {}\n",
                " ".repeat(10),
                MARKS[si % MARKS.len()],
                s.label
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> AsciiChart {
        AsciiChart::new("scan cost", "year", "ns per iteration")
            .series("CPU", vec![(1992.0, 104.0), (1996.0, 22.0), (2000.0, 10.7)])
            .series(
                "Memory",
                vec![(1992.0, 150.0), (1996.0, 140.0), (2000.0, 120.0)],
            )
    }

    #[test]
    fn renders_marks_and_legend() {
        let text = chart().render();
        assert!(text.starts_with("scan cost"));
        assert!(text.contains('*'), "{text}");
        assert!(text.contains('o'), "{text}");
        assert!(text.contains("* CPU"));
        assert!(text.contains("o Memory"));
        assert!(text.contains("x: year"));
        assert!(text.contains("y: ns per iteration"));
    }

    #[test]
    fn y_axis_starts_at_zero_by_default() {
        // With y from zero, the bottom axis label is 0.0.
        let text = chart().render();
        assert!(text.contains("       0.0 |"), "{text}");
        let data_scaled = chart().y_from_data().render();
        assert!(!data_scaled.contains("       0.0 |"), "{data_scaled}");
    }

    #[test]
    fn empty_chart_degrades_gracefully() {
        let text = AsciiChart::new("t", "x", "y").render();
        assert!(text.contains("no data"));
    }

    #[test]
    fn extreme_points_land_on_canvas_edges() {
        let text = AsciiChart::new("t", "x", "y")
            .series("s", vec![(0.0, 0.0), (10.0, 100.0)])
            .size(20, 5)
            .render();
        let rows: Vec<&str> = text.lines().collect();
        // Max point on the top row, min on the bottom row of the canvas.
        assert!(rows[1].ends_with('*') || rows[1].contains('*'), "{text}");
        assert!(rows[5].contains('*'), "{text}");
    }

    #[test]
    fn size_is_clamped() {
        let c = AsciiChart::new("t", "x", "y").size(1, 1);
        assert_eq!(c.width, 10);
        assert_eq!(c.height, 4);
    }
}
