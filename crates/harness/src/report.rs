//! Experiment reports: everything the tutorial says must accompany a
//! number, rendered as one Markdown document.
//!
//! A [`Report`] collects the hardware/software environment (slides
//! 149–156), the run protocol ("be aware and document what you do"), the
//! exact configuration (repeatability), result tables with confidence
//! intervals (slide 142), and free-form conclusions — then renders a
//! self-contained document suitable for a paper appendix or a lab
//! notebook.

use crate::properties::Properties;
use perfeval_exec::ExecReport;
use perfeval_measure::{EnvSpec, SoftwareSpec};
use perfeval_stats::ci::mean_confidence_interval;
use perfeval_stats::Summary;

/// A result table: named rows of replicated measurements.
#[derive(Debug, Clone, Default)]
pub struct ResultTable {
    /// Table caption.
    pub caption: String,
    /// Unit of the measurements ("ms", "queries/s").
    pub unit: String,
    /// (row label, replicated measurements).
    pub rows: Vec<(String, Vec<f64>)>,
}

impl ResultTable {
    /// Creates an empty table.
    pub fn new(caption: &str, unit: &str) -> Self {
        ResultTable {
            caption: caption.to_owned(),
            unit: unit.to_owned(),
            rows: Vec::new(),
        }
    }

    /// Adds a row of replicated measurements.
    pub fn row(&mut self, label: &str, measurements: Vec<f64>) {
        self.rows.push((label.to_owned(), measurements));
    }

    /// Renders the Markdown table: mean, 95% CI (when replicated), n.
    pub fn render(&self) -> String {
        let mut out = format!("**{}** (unit: {})\n\n", self.caption, self.unit);
        out.push_str("| case | mean | 95% CI | n |\n|---|---|---|---|\n");
        for (label, values) in &self.rows {
            let s = Summary::from_slice(values);
            let ci_text = match mean_confidence_interval(values, 0.95) {
                Ok(ci) => format!("[{:.3}, {:.3}]", ci.lower, ci.upper),
                Err(_) => "n/a (unreplicated!)".to_owned(),
            };
            out.push_str(&format!(
                "| {label} | {:.3} | {ci_text} | {} |\n",
                s.mean(),
                s.count()
            ));
        }
        out.push('\n');
        out
    }

    /// True if every row carries at least two replications (the audit
    /// condition of common mistake #1).
    pub fn fully_replicated(&self) -> bool {
        self.rows.iter().all(|(_, v)| v.len() >= 2)
    }
}

/// One tail-latency quantile with its per-replicate-run estimates (the
/// Kalibera–Jones idiom: the replicate, not the request, is the unit of
/// replication for the confidence interval).
#[derive(Debug, Clone)]
pub struct LoadTailRow {
    /// Quantile label ("p50", "p99.9", "max").
    pub quantile: String,
    /// One estimate per replicated run, ms.
    pub per_run_ms: Vec<f64>,
}

/// One load arm's honest summary: offered vs achieved throughput, the
/// tail table, and the failure accounting. Plain data — filled in by
/// `perfeval-load`'s `LoadReport`, rendered here so load runs get the
/// same documentation contract as sweeps.
#[derive(Debug, Clone, Default)]
pub struct LoadSection {
    /// Arm label ("open/64/heavy").
    pub arm: String,
    /// Arrival discipline description ("closed-loop, think 1.0 ms",
    /// "open-loop poisson, 500 q/s offered").
    pub arrival: String,
    /// Concurrent client sessions.
    pub clients: usize,
    /// Offered throughput from the arrival schedule, q/s (open loop only —
    /// a closed loop has no offered rate independent of the system).
    pub offered_qps: Option<f64>,
    /// Achieved throughput per replicate run, q/s.
    pub achieved_qps: Vec<f64>,
    /// Total requests completed (all runs).
    pub requests: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Connections revived via the reconnect path.
    pub reconnects: u64,
    /// Client sessions abandoned (could not reconnect) — the arm's
    /// results cover fewer clients than designed.
    pub dropped_sessions: u64,
    /// Retry attempts made beyond each request's first attempt.
    pub retries: u64,
    /// Typed server rejections received (overload shedding, deadlines,
    /// drain mode).
    pub rejects: u64,
    /// Requests abandoned after the retry budget (or an open circuit
    /// breaker) — accounted, never silently dropped.
    pub give_ups: u64,
    /// Times a client's circuit breaker tripped open.
    pub breaker_opens: u64,
    /// High-water mark of concurrently outstanding requests.
    pub max_in_flight: u64,
    /// Tail-latency rows, coordinated-omission-safe (intended-time).
    pub tail: Vec<LoadTailRow>,
}

impl LoadSection {
    /// True when every designed session delivered results and no request
    /// errored — the condition under which the tail table speaks for the
    /// whole arm.
    pub fn is_complete(&self) -> bool {
        self.errors == 0 && self.dropped_sessions == 0
    }

    /// Renders the arm as Markdown.
    pub fn render(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.arm, self.arrival);
        let achieved = Summary::from_slice(&self.achieved_qps);
        match self.offered_qps {
            Some(offered) => out.push_str(&format!(
                "- offered {offered:.1} q/s vs achieved {:.1} q/s (mean of {} run(s))\n",
                achieved.mean(),
                achieved.count()
            )),
            None => out.push_str(&format!(
                "- closed loop: achieved {:.1} q/s (mean of {} run(s))\n",
                achieved.mean(),
                achieved.count()
            )),
        }
        out.push_str(&format!(
            "- {} client(s), {} request(s), {} error(s), {} reconnect(s), \
             {} dropped session(s), max {} in flight\n",
            self.clients,
            self.requests,
            self.errors,
            self.reconnects,
            self.dropped_sessions,
            self.max_in_flight
        ));
        out.push_str(&format!(
            "- overload etiquette: {} retry(ies), {} reject(s), {} give-up(s), \
             {} breaker open(s)\n\n",
            self.retries, self.rejects, self.give_ups, self.breaker_opens
        ));
        if !self.tail.is_empty() {
            out.push_str("| quantile | mean ms | 95% CI | n |\n|---|---|---|---|\n");
            for row in &self.tail {
                let s = Summary::from_slice(&row.per_run_ms);
                let ci_text = match mean_confidence_interval(&row.per_run_ms, 0.95) {
                    Ok(ci) => format!("[{:.3}, {:.3}]", ci.lower, ci.upper),
                    Err(_) => "n/a (unreplicated!)".to_owned(),
                };
                out.push_str(&format!(
                    "| {} | {:.3} | {ci_text} | {} |\n",
                    row.quantile,
                    s.mean(),
                    s.count()
                ));
            }
            out.push('\n');
        }
        if !self.is_complete() {
            out.push_str(&format!(
                "> ⚠ PARTIAL arm: {} error(s), {} dropped session(s)\n\n",
                self.errors, self.dropped_sessions
            ));
        }
        out
    }
}

/// One compared perf-trajectory cell: head vs a committed baseline, with
/// the Kalibera–Jones interval on `head/baseline − 1` (positive = slower).
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Cell id (`<workload>/<engine>`).
    pub id: String,
    /// Baseline median, ms.
    pub baseline_ms: f64,
    /// Head median, ms.
    pub head_ms: f64,
    /// Effect CI on `ratio − 1`, as fractions (0.1 = 10% slower).
    pub effect: perfeval_stats::ConfidenceInterval,
    /// Gate verdict ("ok", "REGRESSION", "improvement").
    pub verdict: String,
}

/// The perf-trajectory section: the committed-baseline comparison the CI
/// gate runs, carried in the report so "no regression" is a documented
/// claim with intervals, not a green checkmark without provenance.
#[derive(Debug, Clone, Default)]
pub struct BenchSection {
    /// Which baseline file the comparison ran against.
    pub baseline: String,
    /// Tolerance on the ratio−1 scale the verdicts used.
    pub tolerance: f64,
    /// Confidence level of the intervals.
    pub level: f64,
    /// Whether baseline and head were measured on the same host.
    pub same_host: bool,
    /// Compared cells.
    pub rows: Vec<BenchRow>,
    /// Baseline cells missing from head (gate failures).
    pub missing: Vec<String>,
}

impl BenchSection {
    /// True when no cell regressed and none went missing.
    pub fn is_clean(&self) -> bool {
        self.missing.is_empty() && self.rows.iter().all(|r| r.verdict != "REGRESSION")
    }

    /// Renders the section as Markdown.
    pub fn render(&self) -> String {
        let mut out = format!(
            "vs `{}` — tolerance {:.0}%, {:.0}% CIs{}\n\n",
            self.baseline,
            self.tolerance * 100.0,
            self.level * 100.0,
            if self.same_host {
                ""
            } else {
                " — **different hosts** (ratios are cross-machine)"
            }
        );
        out.push_str(
            "| cell | base ms | head ms | effect (ratio−1) | verdict |\n|---|---|---|---|---|\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {:.3} | {:.3} | {:+.1}% [{:+.1}%, {:+.1}%] | {} |\n",
                r.id,
                r.baseline_ms,
                r.head_ms,
                r.effect.estimate * 100.0,
                r.effect.lower * 100.0,
                r.effect.upper * 100.0,
                r.verdict
            ));
        }
        for id in &self.missing {
            out.push_str(&format!(
                "| {id} | — | — | MISSING from head | gate fails |\n"
            ));
        }
        out.push('\n');
        out
    }
}

/// A complete experiment report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Report title.
    pub title: String,
    /// What the experiment sets out to show.
    pub goal: String,
    /// Hardware environment.
    pub environment: Option<EnvSpec>,
    /// Software under test.
    pub software: Vec<SoftwareSpec>,
    /// Run protocol description.
    pub protocol: String,
    /// Exact configuration.
    pub config: Option<Properties>,
    /// Result tables.
    pub tables: Vec<ResultTable>,
    /// How the sweep executed (threads, cache hits, stragglers), when it
    /// ran through the `perfeval-exec` scheduler.
    pub execution: Option<ExecReport>,
    /// Load-harness arms (offered vs achieved, tails, session accounting),
    /// when the experiment drove the server through `perfeval-load`.
    pub loads: Vec<LoadSection>,
    /// The perf-trajectory comparison, when the run gated against a
    /// committed baseline.
    pub bench: Option<BenchSection>,
    /// Rendered span-tree of the run, when it was traced.
    pub trace: Option<String>,
    /// Free-form analysis / conclusions.
    pub conclusions: String,
}

impl Report {
    /// Starts a report.
    pub fn new(title: &str, goal: &str) -> Self {
        Report {
            title: title.to_owned(),
            goal: goal.to_owned(),
            ..Report::default()
        }
    }

    /// Attaches the environment.
    pub fn environment(mut self, env: EnvSpec) -> Self {
        self.environment = Some(env);
        self
    }

    /// Adds a software spec.
    pub fn software(mut self, sw: SoftwareSpec) -> Self {
        self.software.push(sw);
        self
    }

    /// Sets the protocol description.
    pub fn protocol(mut self, text: &str) -> Self {
        self.protocol = text.to_owned();
        self
    }

    /// Attaches the configuration.
    pub fn config(mut self, props: Properties) -> Self {
        self.config = Some(props);
        self
    }

    /// Adds a result table.
    pub fn table(mut self, table: ResultTable) -> Self {
        self.tables.push(table);
        self
    }

    /// Attaches the scheduler's execution summary. Parallel execution is
    /// part of the protocol — thread count and cache reuse belong in the
    /// record just like hot/cold and replication counts.
    pub fn execution(mut self, report: ExecReport) -> Self {
        self.execution = Some(report);
        self
    }

    /// Adds a load-harness arm. Tail tables with CIs and the offered vs
    /// achieved comparison are part of the record, with the same honesty
    /// rules as execution: partial arms flag the whole report.
    pub fn load(mut self, section: LoadSection) -> Self {
        self.loads.push(section);
        self
    }

    /// Attaches the perf-trajectory comparison. A regression or a missing
    /// cell flags the whole report, the same honesty rule as partial
    /// sweeps and dropped load sessions.
    pub fn bench(mut self, section: BenchSection) -> Self {
        self.bench = Some(section);
        self
    }

    /// Attaches a recorded span timeline. The report embeds the
    /// plain-text tree rendering, so the where-did-the-time-go record
    /// travels with the numbers it explains.
    pub fn trace(mut self, trace: &perfeval_trace::Trace) -> Self {
        self.trace = Some(perfeval_trace::render_tree(trace));
        self
    }

    /// Sets the conclusions.
    pub fn conclusions(mut self, text: &str) -> Self {
        self.conclusions = text.to_owned();
        self
    }

    /// The documentation gaps, by section name — empty means the report
    /// satisfies the tutorial's documentation contract.
    pub fn missing_sections(&self) -> Vec<&'static str> {
        let mut missing = Vec::new();
        if self.goal.is_empty() {
            missing.push("goal");
        }
        if self.environment.is_none() {
            missing.push("environment");
        }
        if self.software.is_empty() {
            missing.push("software");
        }
        if self.protocol.is_empty() {
            missing.push("protocol");
        }
        if self.config.is_none() {
            missing.push("config");
        }
        if self.tables.is_empty() {
            missing.push("results");
        }
        if !self.tables.iter().all(ResultTable::fully_replicated) {
            missing.push("replication");
        }
        // A sweep with quarantined units produced a partial response
        // table; a report built on it must say so, loudly.
        if self.execution.as_ref().is_some_and(|e| !e.is_complete()) {
            missing.push("complete-execution");
        }
        // Same rule for load arms: dropped sessions or errored requests
        // mean the tail table does not cover the designed load.
        if !self.loads.iter().all(LoadSection::is_complete) {
            missing.push("complete-load");
        }
        // And for the perf gate: a report carrying a regressed or
        // incomplete trajectory comparison must say so.
        if self.bench.as_ref().is_some_and(|b| !b.is_clean()) {
            missing.push("clean-bench");
        }
        missing
    }

    /// Renders the Markdown document.
    pub fn render(&self) -> String {
        let mut out = format!("# {}\n\n", self.title);
        out.push_str(&format!("**Goal.** {}\n\n", self.goal));
        if let Some(env) = &self.environment {
            out.push_str("## Environment\n\n");
            out.push_str(&format!("{}\n\n", env.render()));
        }
        if !self.software.is_empty() {
            out.push_str("## Software\n\n");
            for sw in &self.software {
                out.push_str(&format!("- {}\n", sw.render()));
            }
            out.push('\n');
        }
        if !self.protocol.is_empty() {
            out.push_str("## Protocol\n\n");
            out.push_str(&format!("{}\n\n", self.protocol));
        }
        if let Some(config) = &self.config {
            out.push_str("## Configuration\n\n```\n");
            out.push_str(&config.store());
            out.push_str("```\n\n");
        }
        if !self.tables.is_empty() {
            out.push_str("## Results\n\n");
            for t in &self.tables {
                out.push_str(&t.render());
            }
        }
        if let Some(exec) = &self.execution {
            out.push_str("## Execution\n\n");
            for line in exec.render_lines() {
                out.push_str(&format!("- {line}\n"));
            }
            out.push('\n');
        }
        if !self.loads.is_empty() {
            out.push_str("## Load\n\n");
            for section in &self.loads {
                out.push_str(&section.render());
            }
        }
        if let Some(bench) = &self.bench {
            out.push_str("## Perf trajectory\n\n");
            out.push_str(&bench.render());
        }
        if let Some(tree) = &self.trace {
            out.push_str("## Trace\n\n```\n");
            out.push_str(tree);
            out.push_str("```\n\n");
        }
        if !self.conclusions.is_empty() {
            out.push_str("## Conclusions\n\n");
            out.push_str(&format!("{}\n", self.conclusions));
        }
        let missing = self.missing_sections();
        if !missing.is_empty() {
            out.push_str(&format!(
                "\n> ⚠ incomplete report — missing: {}\n",
                missing.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_report() -> Report {
        let mut table = ResultTable::new("Q1 server time", "ms");
        table.row("hot", vec![3.5, 3.4, 3.6]);
        table.row("cold", vec![13.2, 13.5, 12.9]);
        let mut props = Properties::new();
        props.set("seed", "20080408");
        props.set("sf", "0.01");
        Report::new("Hot vs cold Q1", "quantify the buffer-pool effect")
            .environment(EnvSpec::tutorial_laptop())
            .software(SoftwareSpec::new(
                "minidb",
                "0.1.0",
                "this repository",
                "release, OPT engine",
            ))
            .protocol("hot: measured last of three consecutive runs; cold: flush before each run")
            .config(props)
            .table(table)
            .conclusions("cold runs are dominated by disk waits.")
    }

    #[test]
    fn complete_report_has_no_gaps() {
        let r = full_report();
        assert!(r.missing_sections().is_empty());
        let text = r.render();
        assert!(text.starts_with("# Hot vs cold Q1"));
        assert!(text.contains("## Environment"));
        assert!(text.contains("Pentium"));
        assert!(text.contains("## Configuration"));
        assert!(text.contains("seed=20080408"));
        assert!(text.contains("| hot |"));
        assert!(text.contains("95% CI"));
        assert!(!text.contains("incomplete report"));
    }

    #[test]
    fn missing_sections_are_reported() {
        let r = Report::new("t", "");
        let missing = r.missing_sections();
        for section in [
            "goal",
            "environment",
            "software",
            "protocol",
            "config",
            "results",
        ] {
            assert!(missing.contains(&section), "{section}");
        }
        assert!(r.render().contains("incomplete report"));
    }

    #[test]
    fn unreplicated_rows_flag_the_report() {
        let mut table = ResultTable::new("t", "ms");
        table.row("single", vec![1.0]);
        assert!(!table.fully_replicated());
        let text = table.render();
        assert!(text.contains("unreplicated"));
        let r = full_report().table(table);
        assert!(r.missing_sections().contains(&"replication"));
    }

    #[test]
    fn execution_section_renders_scheduler_summary() {
        let exec = ExecReport {
            threads: 4,
            total_units: 24,
            executed: 20,
            from_cache: 4,
            retries: 0,
            quarantined: Vec::new(),
            units: Vec::new(),
            wall_secs: 2.0,
            workers: Vec::new(),
            order: "shuffled order (seed 7)".into(),
            plan: "8 runs x 3 replications = 24 units".into(),
        };
        let text = full_report().execution(exec).render();
        assert!(text.contains("## Execution"));
        assert!(text.contains("4 thread(s)"));
        assert!(text.contains("20 executed, 4 resumed from cache"));
        assert!(text.contains("shuffled order (seed 7)"));
        assert!(
            !text.contains("complete-execution"),
            "clean sweeps are not flagged"
        );
    }

    #[test]
    fn partial_sweep_flags_the_report_and_renders_its_taxonomy() {
        use perfeval_exec::{UnitOutcome, UnitReport};
        let exec = ExecReport {
            threads: 2,
            total_units: 6,
            executed: 4,
            from_cache: 0,
            retries: 3,
            quarantined: vec![1, 4],
            units: vec![
                UnitReport {
                    unit: 1,
                    run: 0,
                    replicate: 1,
                    outcome: UnitOutcome::Panicked("injected fault: exec.unit.run".into()),
                    attempts: 2,
                    quarantined: true,
                },
                UnitReport {
                    unit: 4,
                    run: 2,
                    replicate: 0,
                    outcome: UnitOutcome::TimedOut,
                    attempts: 2,
                    quarantined: true,
                },
            ],
            wall_secs: 1.0,
            workers: Vec::new(),
            order: "as-designed order".into(),
            plan: "3 runs x 2 replications".into(),
        };
        let r = full_report().execution(exec);
        assert!(r.missing_sections().contains(&"complete-execution"));
        let text = r.render();
        assert!(text.contains("failures: 1 panicked, 1 timed out"));
        assert!(text.contains("PARTIAL"));
        assert!(text.contains("injected fault: exec.unit.run"));
        assert!(text.contains("incomplete report"));
        assert!(text.contains("complete-execution"));
    }

    fn load_section() -> LoadSection {
        LoadSection {
            arm: "open/64/heavy".into(),
            arrival: "open-loop poisson, 500.0 q/s offered".into(),
            clients: 64,
            offered_qps: Some(500.0),
            achieved_qps: vec![478.0, 481.5, 476.2],
            requests: 4300,
            errors: 0,
            reconnects: 1,
            dropped_sessions: 0,
            retries: 1,
            rejects: 0,
            give_ups: 0,
            breaker_opens: 0,
            max_in_flight: 64,
            tail: vec![
                LoadTailRow {
                    quantile: "p50".into(),
                    per_run_ms: vec![1.2, 1.3, 1.25],
                },
                LoadTailRow {
                    quantile: "p99.9".into(),
                    per_run_ms: vec![18.0, 17.4, 19.1],
                },
            ],
        }
    }

    #[test]
    fn load_section_renders_offered_vs_achieved_and_tails() {
        let r = full_report().load(load_section());
        assert!(
            r.missing_sections().is_empty(),
            "{:?}",
            r.missing_sections()
        );
        let text = r.render();
        assert!(text.contains("## Load"));
        assert!(text.contains("offered 500.0 q/s vs achieved 478.6 q/s"));
        assert!(text.contains("| p99.9 |"));
        assert!(text.contains("95% CI"));
        assert!(text.contains("1 reconnect(s)"));
        assert!(!text.contains("PARTIAL"));
    }

    #[test]
    fn closed_loop_arm_has_no_offered_rate() {
        let section = LoadSection {
            arm: "closed/16/light".into(),
            arrival: "closed-loop, think 1.0 ms".into(),
            offered_qps: None,
            ..load_section()
        };
        let text = full_report().load(section).render();
        assert!(text.contains("closed loop: achieved"));
        assert!(!text.contains("offered"));
    }

    #[test]
    fn dropped_sessions_flag_the_report() {
        let section = LoadSection {
            dropped_sessions: 2,
            ..load_section()
        };
        let r = full_report().load(section);
        assert!(r.missing_sections().contains(&"complete-load"));
        let text = r.render();
        assert!(text.contains("PARTIAL arm"));
        assert!(text.contains("2 dropped session(s)"));
        assert!(text.contains("complete-load"));
    }

    #[test]
    fn trace_section_embeds_the_span_tree() {
        let tracer = perfeval_trace::Tracer::new();
        {
            let mut outer = tracer.span("experiment");
            outer.attr("reps", 3usize);
            drop(tracer.span("measure"));
        }
        let text = full_report().trace(&tracer.snapshot()).render();
        assert!(text.contains("## Trace"));
        assert!(text.contains("experiment"));
        assert!(text.contains("measure"));
    }

    fn bench_section() -> BenchSection {
        BenchSection {
            baseline: "BENCH_8.json".into(),
            tolerance: 0.10,
            level: 0.95,
            same_host: true,
            rows: vec![BenchRow {
                id: "agg-heavy/SIMD".into(),
                baseline_ms: 1.5,
                head_ms: 1.48,
                effect: perfeval_stats::ConfidenceInterval {
                    estimate: -0.013,
                    lower: -0.05,
                    upper: 0.02,
                    level: 0.95,
                },
                verdict: "ok".into(),
            }],
            missing: Vec::new(),
        }
    }

    #[test]
    fn bench_section_renders_the_gate_table() {
        let r = full_report().bench(bench_section());
        assert!(r.missing_sections().is_empty());
        let text = r.render();
        assert!(text.contains("## Perf trajectory"));
        assert!(text.contains("vs `BENCH_8.json`"));
        assert!(text.contains("| agg-heavy/SIMD |"));
        assert!(text.contains("tolerance 10%"));
    }

    #[test]
    fn regressed_bench_flags_the_report() {
        let mut section = bench_section();
        section.rows[0].verdict = "REGRESSION".into();
        assert!(!section.is_clean());
        let r = full_report().bench(section);
        assert!(r.missing_sections().contains(&"clean-bench"));
        assert!(r.render().contains("incomplete report"));
    }

    #[test]
    fn missing_bench_cells_flag_the_report() {
        let mut section = bench_section();
        section.missing.push("join-heavy/OPT".into());
        let r = full_report().bench(section);
        assert!(r.missing_sections().contains(&"clean-bench"));
        assert!(r.render().contains("MISSING from head"));
    }

    #[test]
    fn table_statistics_are_correct() {
        let mut table = ResultTable::new("t", "ms");
        table.row("x", vec![10.0, 12.0, 14.0]);
        let text = table.render();
        assert!(text.contains("| x | 12.000 |"));
        assert!(text.contains("| 3 |"));
    }
}
