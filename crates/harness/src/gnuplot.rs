//! Gnuplot script generation — slide 202, automated.
//!
//! The tutorial's recipe: a data file `results-m1-n5.csv`, a command file
//! `plot-m1-n5.gnu` with title/labels/terminal, and a `gnuplot` invocation.
//! [`GnuplotScript`] generates such command files, applying the
//! presentation rules of slides 122–148: units belong in axis labels, and
//! the paper-size rule `set size ratio 0 x*1.5,y` for a plot `x·\textwidth`
//! wide.

use std::path::Path;

/// One data series in a plot.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Data file path (relative to the script).
    pub data_file: String,
    /// 1-based x column in the data file.
    pub x_col: usize,
    /// 1-based y column.
    pub y_col: usize,
    /// Legend title — a keyword, not a symbol ("MonetDB", not "µ=2"):
    /// *"the human brain is a poor join processor"*.
    pub title: String,
}

/// A gnuplot command file under construction.
#[derive(Debug, Clone)]
pub struct GnuplotScript {
    title: String,
    xlabel: String,
    ylabel: String,
    output: String,
    series: Vec<Series>,
    logscale_y: bool,
    size: Option<(f64, f64)>,
    style: &'static str,
}

impl GnuplotScript {
    /// Starts a script. `xlabel`/`ylabel` should carry units ("CPU time
    /// (ms)", not "CPU time" — slide 122).
    pub fn new(title: &str, xlabel: &str, ylabel: &str, output_eps: &str) -> Self {
        GnuplotScript {
            title: title.to_owned(),
            xlabel: xlabel.to_owned(),
            ylabel: ylabel.to_owned(),
            output: output_eps.to_owned(),
            series: Vec::new(),
            logscale_y: false,
            size: None,
            style: "linespoints",
        }
    }

    /// Adds a series.
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Convenience: single-file single-series plot like the slide's
    /// `plot "results-m1-n5.csv"`.
    pub fn single(mut self, data_file: &str) -> Self {
        self.series.push(Series {
            data_file: data_file.to_owned(),
            x_col: 1,
            y_col: 2,
            title: String::new(),
        });
        self
    }

    /// Logarithmic y axis ("use exceptions as necessary").
    pub fn logscale_y(mut self) -> Self {
        self.logscale_y = true;
        self
    }

    /// The paper-size rule of slide 146: for a plot occupying
    /// `textwidth_fraction` of `\textwidth`, emit
    /// `set size ratio 0 x*1.5,y`.
    pub fn paper_size(mut self, textwidth_fraction: f64, height: f64) -> Self {
        self.size = Some((textwidth_fraction * 1.5, height));
        self
    }

    /// Bar-style plot (histogram / column chart).
    pub fn boxes(mut self) -> Self {
        self.style = "boxes";
        self
    }

    /// Renders the `.gnu` command file.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("set style data {}\n", self.style));
        out.push_str("set terminal postscript eps color\n");
        out.push_str(&format!("set output \"{}\"\n", self.output));
        out.push_str(&format!("set title \"{}\"\n", self.title));
        out.push_str(&format!("set xlabel \"{}\"\n", self.xlabel));
        out.push_str(&format!("set ylabel \"{}\"\n", self.ylabel));
        // Axes usually begin at 0 (slide 122).
        if self.logscale_y {
            out.push_str("set logscale y\n");
        } else {
            out.push_str("set yrange [0:*]\n");
        }
        if let Some((w, h)) = self.size {
            out.push_str(&format!("set size ratio 0 {w},{h}\n"));
        }
        let plots: Vec<String> = self
            .series
            .iter()
            .map(|s| {
                if s.title.is_empty() {
                    format!("\"{}\" using {}:{} notitle", s.data_file, s.x_col, s.y_col)
                } else {
                    format!(
                        "\"{}\" using {}:{} title \"{}\"",
                        s.data_file, s.x_col, s.y_col, s.title
                    )
                }
            })
            .collect();
        out.push_str(&format!("plot {}\n", plots.join(", \\\n     ")));
        out
    }

    /// Writes the command file to disk.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }

    /// The number of series (chart lint wants ≤ 6 on a line chart).
    pub fn series_count(&self) -> usize {
        self.series.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slide_202_script_shape() {
        // The tutorial's exact example, modulo deprecated gnuplot syntax.
        let script = GnuplotScript::new(
            "Execution time for various scale factors",
            "Scale factor",
            "Execution time (ms)",
            "results-m1-n5.eps",
        )
        .single("results-m1-n5.csv");
        let text = script.render();
        assert!(text.contains("set style data linespoints"));
        assert!(text.contains("set output \"results-m1-n5.eps\""));
        assert!(text.contains("set title \"Execution time for various scale factors\""));
        assert!(text.contains("set xlabel \"Scale factor\""));
        assert!(text.contains("set ylabel \"Execution time (ms)\""));
        assert!(text.contains("plot \"results-m1-n5.csv\""));
    }

    #[test]
    fn axes_begin_at_zero_by_default() {
        let text = GnuplotScript::new("t", "x", "y (ms)", "o.eps")
            .single("d.csv")
            .render();
        assert!(text.contains("set yrange [0:*]"));
    }

    #[test]
    fn logscale_is_an_explicit_exception() {
        let text = GnuplotScript::new("t", "x", "y (ms)", "o.eps")
            .single("d.csv")
            .logscale_y()
            .render();
        assert!(text.contains("set logscale y"));
        assert!(!text.contains("set yrange [0:*]"));
    }

    #[test]
    fn paper_size_rule() {
        // Half-textwidth plot: set size ratio 0 0.5*1.5, 0.5.
        let text = GnuplotScript::new("t", "x", "y", "o.eps")
            .single("d.csv")
            .paper_size(0.5, 0.5)
            .render();
        assert!(text.contains("set size ratio 0 0.75,0.5"), "{text}");
    }

    #[test]
    fn multi_series_with_keyword_titles() {
        let script = GnuplotScript::new("t", "users", "response time (ms)", "o.eps")
            .series(Series {
                data_file: "a.csv".into(),
                x_col: 1,
                y_col: 2,
                title: "MonetDB".into(),
            })
            .series(Series {
                data_file: "b.csv".into(),
                x_col: 1,
                y_col: 2,
                title: "MySQL".into(),
            });
        assert_eq!(script.series_count(), 2);
        let text = script.render();
        assert!(text.contains("title \"MonetDB\""));
        assert!(text.contains("title \"MySQL\""));
    }

    #[test]
    fn boxes_style() {
        let text = GnuplotScript::new("t", "x", "y", "o.eps")
            .single("d.csv")
            .boxes()
            .render();
        assert!(text.contains("set style data boxes"));
    }

    #[test]
    fn write_to_disk() {
        let dir = std::env::temp_dir().join("perfeval_gnu");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plot.gnu");
        GnuplotScript::new("t", "x", "y", "o.eps")
            .single("d.csv")
            .write_to(&path)
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("plot"));
        std::fs::remove_file(&path).ok();
    }
}
