//! Experiment suites: directory structure, parameter grids, and generated
//! instructions.
//!
//! Slide 198's checklist: a suited directory structure (`source, bin, data,
//! res, graphs`), control loops that generate every point a graph needs
//! under `res/`, and graph generation under `graphs/`. Slide 216 adds the
//! documentation contract: what to install, which script to run, where the
//! graph appears, how long it takes.

use crate::csvio::write_csv;
use crate::gnuplot::GnuplotScript;
use crate::properties::Properties;
use std::path::{Path, PathBuf};

/// A managed experiment directory.
#[derive(Debug, Clone)]
pub struct ExperimentSuite {
    root: PathBuf,
    name: String,
}

impl ExperimentSuite {
    /// Creates (or opens) the suite directory layout under
    /// `root/<name>/{data,res,graphs}`.
    pub fn create(root: &Path, name: &str) -> std::io::Result<ExperimentSuite> {
        let base = root.join(name);
        for sub in ["data", "res", "graphs"] {
            std::fs::create_dir_all(base.join(sub))?;
        }
        Ok(ExperimentSuite {
            root: base,
            name: name.to_owned(),
        })
    }

    /// Suite name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Root directory of the suite.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path under `res/` for a result file.
    pub fn result_path(&self, file: &str) -> PathBuf {
        self.root.join("res").join(file)
    }

    /// Path under `graphs/` for a plot artifact.
    pub fn graph_path(&self, file: &str) -> PathBuf {
        self.root.join("graphs").join(file)
    }

    /// Path under `data/` for an input artifact.
    pub fn data_path(&self, file: &str) -> PathBuf {
        self.root.join("data").join(file)
    }

    /// Records the exact configuration used (the repeatability contract:
    /// `seed=… sf=…` next to the results).
    pub fn record_config(&self, props: &Properties) -> std::io::Result<()> {
        std::fs::write(self.root.join("experiment.conf"), props.store())
    }

    /// Writes a result CSV under `res/`.
    pub fn write_result(
        &self,
        file: &str,
        header: &[&str],
        rows: &[Vec<f64>],
    ) -> Result<PathBuf, crate::csvio::CsvError> {
        let path = self.result_path(file);
        write_csv(&path, header, rows)?;
        Ok(path)
    }

    /// Writes a gnuplot script under `graphs/`.
    pub fn write_plot(&self, file: &str, script: &GnuplotScript) -> std::io::Result<PathBuf> {
        let path = self.graph_path(file);
        script.write_to(&path)?;
        Ok(path)
    }

    /// Writes the per-experiment instructions of slide 216.
    pub fn write_instructions(&self, instructions: &Instructions) -> std::io::Result<PathBuf> {
        let path = self.root.join("README.md");
        std::fs::write(&path, instructions.render())?;
        Ok(path)
    }
}

/// The slide-216 documentation contract for one experiment.
#[derive(Debug, Clone, Default)]
pub struct Instructions {
    /// Experiment title.
    pub title: String,
    /// Installation requirements ("Rust 1.80+, 2 GB RAM").
    pub requirements: String,
    /// Extra setup if any.
    pub extra_setup: String,
    /// The command to run.
    pub command: String,
    /// Where the output/graph lands.
    pub output_location: String,
    /// Expected duration ("~40 s on a 2020 laptop").
    pub duration: String,
}

impl Instructions {
    /// Renders the README.
    pub fn render(&self) -> String {
        let mut out = format!("# {}\n\n", self.title);
        out.push_str(&format!("**Requirements:** {}\n\n", self.requirements));
        if !self.extra_setup.is_empty() {
            out.push_str(&format!("**Extra setup:** {}\n\n", self.extra_setup));
        }
        out.push_str(&format!("**Run:**\n\n```\n{}\n```\n\n", self.command));
        out.push_str(&format!("**Output:** {}\n\n", self.output_location));
        out.push_str(&format!("**Expected duration:** {}\n", self.duration));
        out
    }

    /// True if every mandatory section is filled.
    pub fn is_complete(&self) -> bool {
        !self.title.is_empty()
            && !self.requirements.is_empty()
            && !self.command.is_empty()
            && !self.output_location.is_empty()
            && !self.duration.is_empty()
    }
}

/// A parameter grid: the control loop generating "the points needed for
/// each graph". Produces the cartesian product of named value lists, each
/// point as a [`Properties`] overlay.
#[derive(Debug, Clone, Default)]
pub struct ParamGrid {
    axes: Vec<(String, Vec<String>)>,
}

impl ParamGrid {
    /// Creates an empty grid (one empty point).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an axis with string values.
    pub fn axis(mut self, name: &str, values: &[&str]) -> Self {
        self.axes.push((
            name.to_owned(),
            values.iter().map(|v| (*v).to_owned()).collect(),
        ));
        self
    }

    /// Adds a numeric axis.
    pub fn axis_f64(mut self, name: &str, values: &[f64]) -> Self {
        self.axes.push((
            name.to_owned(),
            values.iter().map(|v| format!("{v}")).collect(),
        ));
        self
    }

    /// Number of points in the grid.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product()
    }

    /// True if the grid has no axes.
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// Iterates over all points as property overlays, varying the first
    /// axis fastest.
    pub fn points(&self) -> Vec<Properties> {
        let mut points = vec![Properties::new()];
        for (name, values) in &self.axes {
            let mut next = Vec::with_capacity(points.len() * values.len());
            for v in values {
                for p in &points {
                    let mut q = p.clone();
                    q.set(name, v);
                    next.push(q);
                }
            }
            points = next;
        }
        points
    }

    /// Runs `f` over every grid point on `threads` workers (the
    /// `perfeval-exec` pool) and returns the results in [`ParamGrid::points`]
    /// order, regardless of thread count or scheduling.
    pub fn run_parallel<T, F>(&self, threads: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Properties) -> T + Sync,
    {
        let points = self.points();
        perfeval_exec::parallel_map(points.len(), threads, |i| f(&points[i])).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "perfeval_suite_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn create_builds_directory_layout() {
        let root = tmp_root();
        let suite = ExperimentSuite::create(&root, "exp1").unwrap();
        assert!(root.join("exp1/data").is_dir());
        assert!(root.join("exp1/res").is_dir());
        assert!(root.join("exp1/graphs").is_dir());
        assert_eq!(suite.name(), "exp1");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn results_and_plots_land_in_the_right_places() {
        let root = tmp_root();
        let suite = ExperimentSuite::create(&root, "exp2").unwrap();
        let csv = suite
            .write_result("times.csv", &["sf", "ms"], &[vec![1.0, 1234.0]])
            .unwrap();
        assert!(csv.starts_with(root.join("exp2/res")));
        assert!(csv.exists());
        let plot = suite
            .write_plot(
                "times.gnu",
                &GnuplotScript::new("t", "sf", "ms", "times.eps").single("../res/times.csv"),
            )
            .unwrap();
        assert!(plot.starts_with(root.join("exp2/graphs")));
        assert!(plot.exists());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn config_recorded_next_to_results() {
        let root = tmp_root();
        let suite = ExperimentSuite::create(&root, "exp3").unwrap();
        let mut props = Properties::new();
        props.set("seed", "42");
        props.set("sf", "0.01");
        suite.record_config(&props).unwrap();
        let text = std::fs::read_to_string(root.join("exp3/experiment.conf")).unwrap();
        assert_eq!(text, "seed=42\nsf=0.01\n");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn instructions_render_and_completeness() {
        let ins = Instructions {
            title: "E3: DBG/OPT sweep".into(),
            requirements: "Rust 1.80+".into(),
            extra_setup: String::new(),
            command: "cargo run --release --bin exp_e3_dbg_opt".into(),
            output_location: "res/dbg_opt.csv and graphs/dbg_opt.gnu".into(),
            duration: "~30 s".into(),
        };
        assert!(ins.is_complete());
        let text = ins.render();
        assert!(text.starts_with("# E3"));
        assert!(text.contains("cargo run"));
        assert!(!text.contains("Extra setup"));
        let incomplete = Instructions {
            title: "x".into(),
            ..Default::default()
        };
        assert!(!incomplete.is_complete());
    }

    #[test]
    fn grid_cartesian_product() {
        let grid = ParamGrid::new()
            .axis_f64("sf", &[0.01, 0.1])
            .axis("mode", &["DBG", "OPT"])
            .axis_f64("reps", &[3.0]);
        assert_eq!(grid.len(), 4);
        let points = grid.points();
        assert_eq!(points.len(), 4);
        // Every point carries all three keys.
        for p in &points {
            assert!(p.get("sf").is_some());
            assert!(p.get("mode").is_some());
            assert_eq!(p.get("reps"), Some("3"));
        }
        // First axis varies fastest.
        assert_eq!(points[0].get("sf"), Some("0.01"));
        assert_eq!(points[1].get("sf"), Some("0.1"));
        assert_eq!(points[0].get("mode"), Some("DBG"));
        assert_eq!(points[2].get("mode"), Some("OPT"));
    }

    #[test]
    fn grid_parallel_run_preserves_point_order() {
        let grid = ParamGrid::new()
            .axis_f64("sf", &[0.01, 0.1, 1.0])
            .axis("mode", &["DBG", "OPT"]);
        let serial = grid.run_parallel(1, |p| {
            format!("{}/{}", p.get("sf").unwrap(), p.get("mode").unwrap())
        });
        let parallel = grid.run_parallel(4, |p| {
            format!("{}/{}", p.get("sf").unwrap(), p.get("mode").unwrap())
        });
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 6);
        assert_eq!(serial[0], "0.01/DBG");
    }

    #[test]
    fn empty_grid_is_single_point() {
        let grid = ParamGrid::new();
        assert!(grid.is_empty());
        assert_eq!(grid.points().len(), 1);
        assert_eq!(grid.len(), 1);
    }
}
