//! # perfeval-harness
//!
//! Repeatability infrastructure — the tutorial's fourth chapter as a
//! library. *"Another human equipped with the appropriate software and
//! hardware can repeat your experiments"* requires:
//!
//! * **parameterizable experiments** ([`properties`]) — a
//!   `java.util.Properties`-style configuration store with defaults,
//!   config-file loading, and `-Dkey=value` command-line overrides
//!   (slides 183–195), so nobody ever has to *"change the value of the
//!   'delta' variable in distribution.DistFreeNode.java"* again;
//! * **a test suite with a directory structure** ([`suite`]) — `data/`,
//!   `res/`, `graphs/`, control loops over parameter grids, and generated
//!   per-experiment instructions (slides 198, 216);
//! * **automatic result files and graphs** ([`csvio`], [`gnuplot`]) — CSV
//!   writing, CSV *reading with locale validation* (the OpenOffice
//!   `13.666 → 13666` corruption of slide 212 is detected, not silently
//!   plotted), and gnuplot script generation matching slide 202 line for
//!   line;
//! * **presentation lint** ([`chartlint`]) — the chart rules of slides
//!   118–146: ≤ 6 curves per line chart, units in axis labels, axes from
//!   zero, the 3/4 height/width ratio;
//! * **the repeatability record** ([`repeatability`]) — a submission
//!   checklist plus the SIGMOD 2008 repeatability outcome data of slides
//!   218–220.
#![warn(missing_docs)]

pub mod asciichart;
pub mod chartlint;
pub mod csvio;
pub mod gnuplot;
pub mod properties;
pub mod repeatability;
pub mod report;
pub mod suite;

pub use asciichart::AsciiChart;
pub use csvio::{read_csv, write_csv, CsvError, CsvTable};
pub use gnuplot::GnuplotScript;
pub use properties::Properties;
pub use report::{BenchRow, BenchSection, LoadSection, LoadTailRow, Report, ResultTable};
pub use suite::ExperimentSuite;
