//! Presentation lint: the chart rules of slides 118–148 as checks.
//!
//! > Require minimum effort from the reader — not the minimum effort from
//! > you. Try to be honest.
//!
//! The lintable rules:
//! * a line chart should be limited to 6 curves, a bar chart to 10 bars, a
//!   pie chart to 8 components (slide 128);
//! * axis labels should name the quantity *and its unit* (slide 122);
//! * axes usually begin at 0 — a truncated value axis is the "MINE is
//!   better than YOURS" trick of slide 138;
//! * histogram cells need ≥ 5 points (slide 144, checked in
//!   `perfeval_stats::histogram`);
//! * error bars: comparisons of random quantities need confidence
//!   intervals (slide 142).

/// Chart type being linted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChartKind {
    /// Line chart (≤ 6 curves).
    Line,
    /// Column/bar chart (≤ 10 bars).
    Bar,
    /// Pie chart (≤ 8 components).
    Pie,
}

/// Declarative description of a chart for linting.
#[derive(Debug, Clone)]
pub struct ChartSpec {
    /// Chart type.
    pub kind: ChartKind,
    /// Number of curves / bars / components.
    pub series: usize,
    /// Y-axis label text.
    pub y_label: String,
    /// X-axis label text.
    pub x_label: String,
    /// Lowest y value shown on the axis.
    pub y_axis_start: f64,
    /// Lowest data value.
    pub y_data_min: f64,
    /// Whether plotted quantities are means of replicated measurements.
    pub plots_random_quantities: bool,
    /// Whether error bars / confidence intervals are drawn.
    pub has_error_bars: bool,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChartLint {
    /// Short rule id.
    pub rule: &'static str,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for ChartLint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.message)
    }
}

/// True if a label carries a unit ("(ms)", "(MB/s)", "per second", "%").
fn has_unit(label: &str) -> bool {
    let l = label.to_ascii_lowercase();
    l.contains('(') && l.contains(')')
        || l.contains('%')
        || l.contains("per ")
        || l.contains("/s")
        || l.ends_with("count") // counts are dimensionless
        || l.contains("ratio") // so are ratios
        || l.contains("factor")
}

/// Lints a chart description.
pub fn lint(spec: &ChartSpec) -> Vec<ChartLint> {
    let mut lints = Vec::new();
    let (limit, noun) = match spec.kind {
        ChartKind::Line => (6, "curves"),
        ChartKind::Bar => (10, "bars"),
        ChartKind::Pie => (8, "components"),
    };
    if spec.series > limit {
        lints.push(ChartLint {
            rule: "too-many-series",
            message: format!(
                "{} {noun} on one chart; the rule of thumb is at most {limit}",
                spec.series
            ),
        });
    }
    if !has_unit(&spec.y_label) {
        lints.push(ChartLint {
            rule: "missing-unit",
            message: format!(
                "y label '{}' has no unit: prefer 'CPU time (ms)' to 'CPU time'",
                spec.y_label
            ),
        });
    }
    if spec.x_label.trim().is_empty() {
        lints.push(ChartLint {
            rule: "missing-label",
            message: "x axis is unlabeled".into(),
        });
    }
    // Truncated value axis: the axis starts well above zero relative to
    // the data, visually inflating differences (slide 138).
    if spec.y_data_min >= 0.0 && spec.y_axis_start > 0.0 {
        let span = spec.y_data_min.max(1e-300);
        if spec.y_axis_start / span > 0.5 {
            lints.push(ChartLint {
                rule: "truncated-axis",
                message: format!(
                    "y axis starts at {} with data from {}: differences are \
                     visually exaggerated (the MINE-vs-YOURS trick)",
                    spec.y_axis_start, spec.y_data_min
                ),
            });
        }
    }
    if spec.plots_random_quantities && !spec.has_error_bars {
        lints.push(ChartLint {
            rule: "no-confidence-intervals",
            message: "random quantities plotted without confidence intervals; \
                      overlapping intervals may mean the quantities are \
                      statistically indifferent"
                .into(),
        });
    }
    lints
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_line() -> ChartSpec {
        ChartSpec {
            kind: ChartKind::Line,
            series: 3,
            y_label: "Response time (ms)".into(),
            x_label: "Number of users".into(),
            y_axis_start: 0.0,
            y_data_min: 12.0,
            plots_random_quantities: true,
            has_error_bars: true,
        }
    }

    #[test]
    fn clean_chart_passes() {
        assert!(lint(&good_line()).is_empty());
    }

    #[test]
    fn too_many_curves_flagged() {
        let mut s = good_line();
        s.series = 9;
        let lints = lint(&s);
        assert_eq!(lints.len(), 1);
        assert_eq!(lints[0].rule, "too-many-series");
        assert!(lints[0].to_string().contains("at most 6"));
    }

    #[test]
    fn bar_and_pie_limits() {
        let mut s = good_line();
        s.kind = ChartKind::Bar;
        s.series = 10;
        assert!(lint(&s).is_empty());
        s.series = 11;
        assert_eq!(lint(&s)[0].rule, "too-many-series");
        s.kind = ChartKind::Pie;
        s.series = 9;
        assert_eq!(lint(&s)[0].rule, "too-many-series");
    }

    #[test]
    fn unit_detection() {
        let mut s = good_line();
        s.y_label = "CPU time".into();
        assert_eq!(lint(&s)[0].rule, "missing-unit");
        for ok in [
            "CPU time (ms)",
            "throughput (queries/s)",
            "Average I/Os per query",
            "hit rate %",
            "speedup factor",
            "row count",
        ] {
            s.y_label = ok.into();
            assert!(
                lint(&s).iter().all(|l| l.rule != "missing-unit"),
                "'{ok}' should count as unit-bearing"
            );
        }
    }

    #[test]
    fn mine_vs_yours_truncated_axis_flagged() {
        // Slide 138: bars from 2600 to 2610 drawn on an axis starting at
        // 2600.
        let s = ChartSpec {
            kind: ChartKind::Bar,
            series: 2,
            y_label: "time (ms)".into(),
            x_label: "system".into(),
            y_axis_start: 2600.0,
            y_data_min: 2600.0,
            plots_random_quantities: false,
            has_error_bars: false,
        };
        let lints = lint(&s);
        assert!(lints.iter().any(|l| l.rule == "truncated-axis"));
    }

    #[test]
    fn honest_full_axis_passes() {
        // Slide 141: the recommended version starts at 0.
        let s = ChartSpec {
            kind: ChartKind::Bar,
            series: 2,
            y_label: "time (ms)".into(),
            x_label: "system".into(),
            y_axis_start: 0.0,
            y_data_min: 2600.0,
            plots_random_quantities: false,
            has_error_bars: false,
        };
        assert!(lint(&s).is_empty());
    }

    #[test]
    fn missing_error_bars_flagged() {
        let mut s = good_line();
        s.has_error_bars = false;
        let lints = lint(&s);
        assert!(lints.iter().any(|l| l.rule == "no-confidence-intervals"));
    }

    #[test]
    fn missing_x_label_flagged() {
        let mut s = good_line();
        s.x_label = "  ".into();
        assert!(lint(&s).iter().any(|l| l.rule == "missing-label"));
    }
}
