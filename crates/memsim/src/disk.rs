//! Disk and buffer-pool models.
//!
//! These provide the *cold-run* half of slide 33's table: a cold TPC-H Q1
//! spends ~2.9 s of CPU but ~13.2 s of wall clock, the difference being disk
//! waits. The [`Disk`] charges seek + rotational + transfer time per page
//! read; the [`BufferPool`] caches pages LRU-style and accumulates the
//! simulated wait, so a second ("hot") run costs nothing.
//!
//! **Deprecated for measurement.** These models answer era what-ifs
//! ("this scan on a 1996 disk") — that is all. For measured hot-vs-cold
//! claims on the machine actually running, use `perfeval-store`'s real
//! buffer pool, whose hits, misses, and evictions are counters over real
//! `pread` calls (experiment `exp_e26_hot_cold`). E2 keeps using this
//! model deliberately: its exhibit is the *shape* of the era table, not a
//! measurement of the host.

use std::collections::HashMap;

/// Identifier of a fixed-size page: (table/file id, page number).
pub type PageId = (u32, u64);

/// A simple disk model: every random read pays seek + half-rotation, then
/// pages transfer at the sequential rate. Sequential reads (next page of the
/// same file) skip the positioning cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Disk {
    /// Average seek time in ms.
    pub seek_ms: f64,
    /// Rotational speed in RPM (half a rotation is charged per random read).
    pub rpm: f64,
    /// Sequential transfer rate in MiB/s.
    pub transfer_mib_s: f64,
    /// Page size in bytes.
    pub page_bytes: u64,
}

impl Disk {
    /// A 1992-era SCSI disk.
    pub fn era_1992() -> Self {
        Disk {
            seek_ms: 12.0,
            rpm: 5400.0,
            transfer_mib_s: 3.0,
            page_bytes: 8192,
        }
    }

    /// A 1996-era disk.
    pub fn era_1996() -> Self {
        Disk {
            seek_ms: 9.0,
            rpm: 7200.0,
            transfer_mib_s: 10.0,
            page_bytes: 8192,
        }
    }

    /// A 1998-era disk.
    pub fn era_1998() -> Self {
        Disk {
            seek_ms: 8.0,
            rpm: 7200.0,
            transfer_mib_s: 20.0,
            page_bytes: 8192,
        }
    }

    /// The tutorial laptop's 5400 RPM ATA disk.
    pub fn laptop_5400rpm() -> Self {
        Disk {
            seek_ms: 12.0,
            rpm: 5400.0,
            transfer_mib_s: 30.0,
            page_bytes: 8192,
        }
    }

    /// The 2008 evaluation machine's 4-disk RAID-0.
    pub fn raid_2008() -> Self {
        Disk {
            seek_ms: 8.0,
            rpm: 7200.0,
            transfer_mib_s: 240.0,
            page_bytes: 8192,
        }
    }

    /// Positioning cost (seek + half rotation) in ns.
    pub fn position_ns(&self) -> f64 {
        let half_rotation_ms = 0.5 * 60_000.0 / self.rpm;
        (self.seek_ms + half_rotation_ms) * 1.0e6
    }

    /// Transfer cost for one page in ns.
    pub fn transfer_ns(&self) -> f64 {
        self.page_bytes as f64 / (self.transfer_mib_s * 1024.0 * 1024.0) * 1.0e9
    }

    /// Cost of reading a page: positioning is charged unless the read is
    /// sequential after the previous one.
    pub fn read_ns(&self, sequential: bool) -> f64 {
        if sequential {
            self.transfer_ns()
        } else {
            self.position_ns() + self.transfer_ns()
        }
    }
}

/// An LRU buffer pool over [`Disk`] pages, accounting simulated wait time.
///
/// `flush()` is the simulator's "reboot or run a cache-flusher application"
/// from the cold-run definition.
#[derive(Debug, Clone)]
pub struct BufferPool {
    disk: Disk,
    capacity_pages: usize,
    /// page -> LRU stamp
    resident: HashMap<PageId, u64>,
    stamp: u64,
    last_read: Option<PageId>,
    sim_wait_ns: f64,
    physical_reads: u64,
    logical_reads: u64,
}

impl BufferPool {
    /// Creates an empty pool of `capacity_pages` pages over `disk`.
    ///
    /// # Panics
    /// Panics if `capacity_pages == 0`.
    pub fn new(disk: Disk, capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "buffer pool needs capacity >= 1");
        BufferPool {
            disk,
            capacity_pages,
            resident: HashMap::new(),
            stamp: 0,
            last_read: None,
            sim_wait_ns: 0.0,
            physical_reads: 0,
            logical_reads: 0,
        }
    }

    /// Reads a page through the pool. Returns `true` if it was a buffer hit.
    /// On a miss the page is fetched from disk (simulated wait accumulates)
    /// and installed, evicting the LRU page if the pool is full.
    pub fn read(&mut self, page: PageId) -> bool {
        self.logical_reads += 1;
        self.stamp += 1;
        if self.resident.contains_key(&page) {
            self.resident.insert(page, self.stamp);
            self.last_read = Some(page);
            return true;
        }
        // Miss: charge the disk.
        let sequential = matches!(
            self.last_read,
            Some((file, num)) if file == page.0 && num + 1 == page.1
        );
        self.sim_wait_ns += self.disk.read_ns(sequential);
        self.physical_reads += 1;
        if self.resident.len() == self.capacity_pages {
            // Evict LRU.
            if let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, &s)| s) {
                self.resident.remove(&victim);
            }
        }
        self.resident.insert(page, self.stamp);
        self.last_read = Some(page);
        false
    }

    /// Simulated I/O wait accumulated so far, in ns.
    pub fn sim_wait_ns(&self) -> f64 {
        self.sim_wait_ns
    }

    /// Number of reads served from disk.
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads
    }

    /// Number of page read requests.
    pub fn logical_reads(&self) -> u64 {
        self.logical_reads
    }

    /// Buffer hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            1.0 - self.physical_reads as f64 / self.logical_reads as f64
        }
    }

    /// Evicts everything and zeroes counters — cold state.
    pub fn flush(&mut self) {
        self.resident.clear();
        self.last_read = None;
        self.sim_wait_ns = 0.0;
        self.physical_reads = 0;
        self.logical_reads = 0;
    }

    /// Zeroes the wait/read counters but keeps pages resident — begin
    /// measuring a hot pool.
    pub fn reset_counters(&mut self) {
        self.sim_wait_ns = 0.0;
        self.physical_reads = 0;
        self.logical_reads = 0;
        self.last_read = None;
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Pool capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_costs_are_positive_and_ordered() {
        let d = Disk::laptop_5400rpm();
        assert!(d.position_ns() > 0.0);
        assert!(d.transfer_ns() > 0.0);
        assert!(d.read_ns(false) > d.read_ns(true));
        // 5400 RPM: half rotation is 5.56ms; seek 12ms -> ~17.6ms position.
        assert!((d.position_ns() / 1e6 - 17.56).abs() < 0.1);
    }

    #[test]
    fn newer_disks_are_faster() {
        assert!(Disk::era_1992().read_ns(true) > Disk::raid_2008().read_ns(true));
    }

    #[test]
    fn cold_read_charges_hot_read_free() {
        let mut pool = BufferPool::new(Disk::laptop_5400rpm(), 100);
        assert!(!pool.read((0, 0)));
        let cold_wait = pool.sim_wait_ns();
        assert!(cold_wait > 0.0);
        assert!(pool.read((0, 0)));
        assert_eq!(pool.sim_wait_ns(), cold_wait, "hit adds no wait");
        assert_eq!(pool.physical_reads(), 1);
        assert_eq!(pool.logical_reads(), 2);
        assert_eq!(pool.hit_rate(), 0.5);
    }

    #[test]
    fn sequential_reads_skip_positioning() {
        let disk = Disk::laptop_5400rpm();
        let mut pool = BufferPool::new(disk.clone(), 100);
        pool.read((0, 0)); // random
        let after_first = pool.sim_wait_ns();
        pool.read((0, 1)); // sequential
        let delta = pool.sim_wait_ns() - after_first;
        assert!((delta - disk.transfer_ns()).abs() < 1e-6);
        pool.read((0, 5)); // skip -> random again
        let delta2 = pool.sim_wait_ns() - after_first - delta;
        assert!((delta2 - disk.read_ns(false)).abs() < 1e-6);
    }

    #[test]
    fn lru_eviction() {
        let mut pool = BufferPool::new(Disk::laptop_5400rpm(), 2);
        pool.read((0, 0));
        pool.read((0, 1));
        pool.read((0, 0)); // refresh page 0
        pool.read((0, 2)); // evicts page 1 (LRU)
        assert!(pool.read((0, 0)), "page 0 refreshed, must survive");
        assert!(!pool.read((0, 1)), "page 1 was evicted");
        assert_eq!(pool.resident_pages(), 2);
    }

    #[test]
    fn flush_makes_pool_cold() {
        let mut pool = BufferPool::new(Disk::laptop_5400rpm(), 10);
        pool.read((0, 0));
        pool.flush();
        assert_eq!(pool.resident_pages(), 0);
        assert_eq!(pool.sim_wait_ns(), 0.0);
        assert!(!pool.read((0, 0)));
    }

    #[test]
    fn reset_counters_keeps_pages_hot() {
        let mut pool = BufferPool::new(Disk::laptop_5400rpm(), 10);
        pool.read((0, 0));
        pool.reset_counters();
        assert!(pool.read((0, 0)), "page still resident");
        assert_eq!(pool.sim_wait_ns(), 0.0, "hot read costs nothing");
        assert_eq!(pool.hit_rate(), 1.0);
    }

    #[test]
    fn hot_cold_gap_is_large_like_the_tutorial() {
        // Scan 1000 pages cold vs hot: the wall-clock gap should be orders
        // of magnitude, echoing 13243 ms vs 3534 ms.
        let mut pool = BufferPool::new(Disk::laptop_5400rpm(), 2000);
        for p in 0..1000 {
            pool.read((0, p));
        }
        let cold_ns = pool.sim_wait_ns();
        pool.reset_counters();
        for p in 0..1000 {
            pool.read((0, p));
        }
        let hot_ns = pool.sim_wait_ns();
        assert_eq!(hot_ns, 0.0);
        assert!(cold_ns > 1e6, "cold scan must cost milliseconds");
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_panics() {
        let _ = BufferPool::new(Disk::laptop_5400rpm(), 0);
    }
}
