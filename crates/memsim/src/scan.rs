//! The `SELECT MAX(column) FROM table` micro-benchmark on a simulated
//! machine — the memory-wall experiment (slides 46–51).
//!
//! For each loop iteration the CPU executes a handful of instructions
//! (load, compare, branch, advance) and touches `stride` bytes further into
//! the column. The per-iteration cost therefore splits into:
//!
//! * **CPU component** — `instructions × CPI × cycle time`, which shrinks
//!   as clocks race from 50 MHz to 500 MHz;
//! * **memory component** — whatever the cache hierarchy charges for the
//!   load, which is dominated by DRAM latency whenever the stride reaches a
//!   cache line, and DRAM latency barely improved over the decade.
//!
//! The sum is what the figure's y-axis plots; the split is what hardware
//! counters reveal.

use crate::machine::MachineSpec;
use perfeval_measure::CounterSet;

/// Number of CPU instructions per scan iteration (load, cmp, cmov/branch,
/// pointer increment) — calibrated once for all machines so comparisons are
/// apples-to-apples.
pub const INSTRUCTIONS_PER_ITERATION: f64 = 4.0;

/// Result of simulating a scan on one machine.
#[derive(Debug, Clone)]
pub struct ScanCost {
    /// Machine name the cost was computed for.
    pub system: String,
    /// Year of the machine.
    pub year: u32,
    /// CPU MHz of the machine.
    pub cpu_mhz: f64,
    /// Iterations simulated.
    pub iterations: u64,
    /// CPU component, ns per iteration.
    pub cpu_ns_per_iter: f64,
    /// Memory component, ns per iteration.
    pub mem_ns_per_iter: f64,
    /// Cache/DRAM event counters from the run.
    pub counters: CounterSet,
}

impl ScanCost {
    /// Total elapsed ns per iteration (the figure's y-value).
    pub fn total_ns_per_iter(&self) -> f64 {
        self.cpu_ns_per_iter + self.mem_ns_per_iter
    }

    /// Fraction of time spent waiting on memory.
    pub fn memory_fraction(&self) -> f64 {
        let total = self.total_ns_per_iter();
        if total == 0.0 {
            0.0
        } else {
            self.mem_ns_per_iter / total
        }
    }
}

/// Simulates `SELECT MAX(col)` over `iterations` elements laid out
/// `stride_bytes` apart (8 = packed i64 column; 64+ = one element per cache
/// line, e.g. a column embedded in a wide row layout).
///
/// The scan runs twice: once to warm the hierarchy, once measured —
/// mirroring the tutorial's hot-run protocol, since the original figure
/// shows steady-state cost.
///
/// # Panics
/// Panics if `iterations == 0` or `stride_bytes == 0`.
pub fn scan_cost(machine: &MachineSpec, iterations: u64, stride_bytes: u64) -> ScanCost {
    assert!(iterations > 0, "scan needs at least one iteration");
    assert!(stride_bytes > 0, "stride must be positive");
    let mut hierarchy = machine.hierarchy();
    // Warmup pass (loads the tail of the column into cache; for a footprint
    // larger than the caches the measured pass still misses, as it should).
    for i in 0..iterations {
        hierarchy.access(i * stride_bytes);
    }
    hierarchy.reset_counters();
    // Measured pass.
    for i in 0..iterations {
        hierarchy.access(i * stride_bytes);
    }
    let mem_ns_total = hierarchy.total_ns();
    let cpu_ns_per_iter = machine.cpu_ns(INSTRUCTIONS_PER_ITERATION);
    ScanCost {
        system: machine.system.clone(),
        year: machine.year,
        cpu_mhz: machine.cpu_mhz,
        iterations,
        cpu_ns_per_iter,
        mem_ns_per_iter: mem_ns_total / iterations as f64,
        counters: hierarchy.counters(),
    }
}

/// Runs the full memory-wall experiment: the five historical machines, a
/// column whose footprint exceeds every cache, one element per cache line
/// (the row-store layout that motivated column stores).
pub fn memory_wall_series(iterations: u64) -> Vec<ScanCost> {
    MachineSpec::memory_wall_lineup()
        .iter()
        .map(|m| scan_cost(m, iterations, 128))
        .collect()
}

/// Analytic (closed-form) counterpart of [`scan_cost`]: predicts the
/// steady-state per-iteration CPU and memory cost without simulating a
/// single access.
///
/// The model: the scan's footprint (`iterations × stride`) resides in the
/// smallest cache that holds it (or DRAM); each cache line is fetched once
/// from that level and the remaining accesses to the same line hit L1. The
/// simulator exists to validate this kind of back-of-envelope model — and
/// vice versa: `tests::analytic_matches_simulation` keeps the two within a
/// tolerance, which is how one debugs either.
pub fn scan_cost_analytic(machine: &MachineSpec, iterations: u64, stride_bytes: u64) -> ScanCost {
    assert!(iterations > 0, "scan needs at least one iteration");
    assert!(stride_bytes > 0, "stride must be positive");
    let footprint = iterations * stride_bytes;
    // Which level serves the line fetches in steady state?
    let mut fetch_ns = machine.dram_ns;
    let mut fetch_line = machine
        .caches
        .last()
        .map(|c| c.line_bytes)
        .unwrap_or(stride_bytes);
    for cache in &machine.caches {
        if footprint <= cache.size_bytes {
            fetch_ns = cache.hit_ns;
            fetch_line = cache.line_bytes;
            break;
        }
    }
    let l1_hit = machine
        .caches
        .first()
        .map(|c| c.hit_ns)
        .unwrap_or(machine.dram_ns);
    // Accesses per fetched line.
    let per_line = (fetch_line / stride_bytes).max(1) as f64;
    let mem_ns_per_iter = (fetch_ns + (per_line - 1.0) * l1_hit) / per_line;
    ScanCost {
        system: machine.system.clone(),
        year: machine.year,
        cpu_mhz: machine.cpu_mhz,
        iterations,
        cpu_ns_per_iter: machine.cpu_ns(INSTRUCTIONS_PER_ITERATION),
        mem_ns_per_iter,
        counters: perfeval_measure::CounterSet::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_component_shrinks_with_clock_speed() {
        let old = scan_cost(&MachineSpec::sun_lx_1992(), 100_000, 128);
        let new = scan_cost(&MachineSpec::dec_alpha_1998(), 100_000, 128);
        assert!(
            old.cpu_ns_per_iter > 5.0 * new.cpu_ns_per_iter,
            "old {} vs new {}",
            old.cpu_ns_per_iter,
            new.cpu_ns_per_iter
        );
    }

    #[test]
    fn memory_component_barely_improves() {
        let old = scan_cost(&MachineSpec::sun_lx_1992(), 100_000, 128);
        let new = scan_cost(&MachineSpec::dec_alpha_1998(), 100_000, 128);
        let ratio = old.mem_ns_per_iter / new.mem_ns_per_iter;
        assert!(
            ratio < 2.0,
            "memory cost must not improve like the clock did: ratio {ratio}"
        );
    }

    #[test]
    fn total_hardly_improves_despite_10x_clock() {
        // The headline claim of slide 46.
        let series = memory_wall_series(100_000);
        let first = series.first().unwrap().total_ns_per_iter();
        let best = series
            .iter()
            .map(|s| s.total_ns_per_iter())
            .fold(f64::INFINITY, f64::min);
        let improvement = first / best;
        assert!(
            improvement < 3.0,
            "10x clock must NOT give 10x scan: improvement {improvement:.2}x"
        );
        assert!(improvement > 1.0, "some improvement is expected");
    }

    #[test]
    fn late_machines_are_memory_bound() {
        let alpha = scan_cost(&MachineSpec::dec_alpha_1998(), 100_000, 128);
        assert!(
            alpha.memory_fraction() > 0.8,
            "memory fraction {}",
            alpha.memory_fraction()
        );
        let lx = scan_cost(&MachineSpec::sun_lx_1992(), 100_000, 128);
        assert!(
            lx.memory_fraction() < 0.65,
            "1992 machine should be closer to CPU-bound: {}",
            lx.memory_fraction()
        );
    }

    #[test]
    fn packed_column_layout_reduces_memory_cost() {
        // stride 8 (packed i64 column) vs stride 128 (row layout): packed
        // amortizes one line fetch over many elements. This is the
        // column-store argument in one assert.
        let m = MachineSpec::dec_alpha_1998();
        let packed = scan_cost(&m, 100_000, 8);
        let rowwise = scan_cost(&m, 100_000, 128);
        assert!(packed.mem_ns_per_iter * 4.0 < rowwise.mem_ns_per_iter);
    }

    #[test]
    fn counters_expose_the_misses() {
        let m = MachineSpec::dec_alpha_1998();
        let cost = scan_cost(&m, 100_000, 128);
        // One element per 64B line at stride 128: every access is a new
        // line; footprint 12.8 MB >> 4 MB L2, so steady state misses DRAM.
        let dram = cost.counters.get("dram_access");
        assert!(
            dram as f64 > 0.9 * cost.iterations as f64,
            "dram accesses {dram} of {}",
            cost.iterations
        );
    }

    #[test]
    fn small_footprint_is_cache_resident() {
        let m = MachineSpec::dec_alpha_1998();
        // 1000 iterations * 8B = 8 KB << 64 KB L1: measured pass all-hit.
        let cost = scan_cost(&m, 1_000, 8);
        assert_eq!(cost.counters.get("dram_access"), 0);
        assert!(cost.mem_ns_per_iter <= m.caches[0].hit_ns + 1e-9);
    }

    #[test]
    fn series_is_complete_and_ordered() {
        let series = memory_wall_series(5_000);
        assert_eq!(series.len(), 5);
        assert_eq!(series[0].system, "Sun LX");
        assert_eq!(series[4].system, "Origin2000");
        for s in &series {
            assert!(s.total_ns_per_iter() > 0.0);
            assert!(
                s.total_ns_per_iter() < 400.0,
                "{}: {}",
                s.system,
                s.total_ns_per_iter()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let _ = scan_cost(&MachineSpec::sun_lx_1992(), 0, 8);
    }

    #[test]
    fn analytic_matches_simulation_for_dram_resident_scans() {
        // Stride >= line: every iteration fetches a fresh line from DRAM,
        // which the analytic model predicts exactly.
        for m in MachineSpec::memory_wall_lineup() {
            let sim = scan_cost(&m, 100_000, 128);
            let ana = scan_cost_analytic(&m, 100_000, 128);
            let rel = (sim.mem_ns_per_iter - ana.mem_ns_per_iter).abs() / sim.mem_ns_per_iter;
            assert!(
                rel < 0.05,
                "{}: sim {} vs analytic {}",
                m.system,
                sim.mem_ns_per_iter,
                ana.mem_ns_per_iter
            );
            assert_eq!(sim.cpu_ns_per_iter, ana.cpu_ns_per_iter);
        }
    }

    #[test]
    fn analytic_matches_simulation_for_packed_scans() {
        // Stride 8 within 64-byte lines: one fetch amortized over 8 hits.
        let m = MachineSpec::dec_alpha_1998();
        let sim = scan_cost(&m, 200_000, 8);
        let ana = scan_cost_analytic(&m, 200_000, 8);
        let rel = (sim.mem_ns_per_iter - ana.mem_ns_per_iter).abs() / sim.mem_ns_per_iter.max(1e-9);
        assert!(
            rel < 0.1,
            "sim {} vs analytic {}",
            sim.mem_ns_per_iter,
            ana.mem_ns_per_iter
        );
    }

    #[test]
    fn analytic_cache_resident_footprints() {
        let m = MachineSpec::dec_alpha_1998();
        // 8 KB footprint fits the 64 KB L1: cost = L1 hit.
        let ana = scan_cost_analytic(&m, 1_000, 8);
        assert_eq!(ana.mem_ns_per_iter, m.caches[0].hit_ns);
        // 1 MB footprint fits only L2: a line fetch from L2 amortized.
        let ana2 = scan_cost_analytic(&m, 131_072, 8);
        assert!(ana2.mem_ns_per_iter > ana.mem_ns_per_iter);
        assert!(ana2.mem_ns_per_iter < m.dram_ns);
    }
}
