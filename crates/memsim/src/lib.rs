//! # memsim
//!
//! A parameterized memory-hierarchy and I/O simulator — the hardware
//! substrate for reproducing the tutorial's hardware-bound experiments.
//!
//! The paper's most striking figure (slides 46/51) runs `SELECT MAX(column)`
//! over an in-memory table on five machines spanning 1992–2000 and shows
//! that a 10× CPU clock improvement yields *almost no* speedup: the scan is
//! memory-bound, and only hardware performance counters reveal it. We cannot
//! ship a 1992 Sun LX, so this crate simulates one — and the other four —
//! with enough fidelity to reproduce the figure's shape:
//!
//! * [`cache::CacheSim`] — a set-associative LRU cache simulator with
//!   hit/miss counters (the "hardware performance counters").
//! * [`hierarchy::MemoryHierarchy`] — multi-level hierarchy + DRAM, with
//!   per-access latency accounting in nanoseconds.
//! * [`machine`] — calibrated presets: Sun LX (1992) … Origin2000 (2000),
//!   the tutorial's 2005 Pentium M laptop, and a modern reference box.
//! * [`scan`] — the `SELECT MAX` micro-benchmark: per-iteration cost split
//!   into CPU and memory components, exactly what the figure plots.
//! * [`disk`] — a seek+transfer disk model and an LRU buffer pool whose
//!   simulated wait time gives cold runs their characteristic
//!   real ≫ user gap (slide 33).
//!
//! Simulated time is kept separate from wall-clock time on purpose: a
//! workload runs for real (CPU/user time is genuinely consumed) while its
//! *I/O waits* and *historical-machine costs* are accounted in simulated
//! nanoseconds. Experiments then report both, reproducing the tutorial's
//! user-vs-real lesson deterministically.
//!
//! ## Scope: era what-ifs only — measurement lives in `perfeval-store`
//!
//! Since the repository gained real persistent storage (`perfeval-store`:
//! on-disk segment files behind a buffer pool with genuine hit/miss/
//! eviction counters), this crate's modeled disk and [`disk::BufferPool`]
//! are **deprecated for measurement**. They remain the right tool for
//! counterfactuals no amount of measuring can answer — "what would this
//! scan cost on a 1992 Sun LX?", the era sweeps of E2/E4 — but any claim
//! about *this* machine's hot-vs-cold behavior must come from the real
//! pool's counters (see `exp_e26_hot_cold`, and `Session::flush_caches`,
//! which empties the real pool and the OS page cache rather than
//! resetting a model). When a catalog is disk-backed, minidb's hit/miss
//! span attributes and `QueryResult::store_physical_reads` already come
//! from the real store; the simulated numbers keep their `sim_` prefix.
#![warn(missing_docs)]

pub mod cache;
pub mod disk;
pub mod hierarchy;
pub mod machine;
pub mod scan;

pub use cache::CacheSim;
pub use disk::{BufferPool, Disk, PageId};
pub use hierarchy::{AccessOutcome, MemoryHierarchy};
pub use machine::MachineSpec;
pub use scan::{scan_cost, ScanCost};

// The parallel scheduler (`perfeval-exec`) moves simulator state across
// worker threads; these assertions turn any future non-Send field (Rc,
// raw pointer) into a compile error instead of a distant build break.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CacheSim>();
    assert_send::<BufferPool>();
    assert_send::<Disk>();
    assert_send::<MemoryHierarchy>();
    assert_send::<MachineSpec>();
};
