//! Machine presets — the five historical machines of the memory-wall figure
//! plus the tutorial's 2005 laptop and a modern reference.
//!
//! Calibration targets the *shape* of slide 46: per-iteration scan cost is
//! dominated by CPU work on the 1992 Sun LX (50 MHz) and by memory latency
//! on everything after ~1996, so that a 10× clock improvement buys almost
//! nothing. Absolute nanosecond values are plausible for the era but are not
//! measurements of the original hardware.

use crate::cache::CacheConfig;
use crate::disk::Disk;
use crate::hierarchy::MemoryHierarchy;

/// A complete machine description for simulation.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Marketing-level system name ("Sun LX", "DEC Alpha", …).
    pub system: String,
    /// CPU type ("Sparc", "UltraSparcII", …).
    pub cpu_type: String,
    /// Year of introduction.
    pub year: u32,
    /// Clock speed in MHz.
    pub cpu_mhz: f64,
    /// Average cycles per (non-memory) instruction.
    pub cpi: f64,
    /// Cache levels, innermost first.
    pub caches: Vec<CacheConfig>,
    /// DRAM access latency in ns.
    pub dram_ns: f64,
    /// Attached disk model.
    pub disk: Disk,
}

impl MachineSpec {
    /// Cycle time in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1000.0 / self.cpu_mhz
    }

    /// Cost in ns of executing `instructions` CPU-only instructions.
    pub fn cpu_ns(&self, instructions: f64) -> f64 {
        instructions * self.cpi * self.cycle_ns()
    }

    /// Builds a fresh (cold) memory hierarchy for this machine.
    pub fn hierarchy(&self) -> MemoryHierarchy {
        MemoryHierarchy::new(&self.caches, self.dram_ns)
    }

    /// 1992 Sun LX: 50 MHz Sparc. CPU-bound era — the clock is so slow that
    /// computation dominates even DRAM latency.
    pub fn sun_lx_1992() -> Self {
        MachineSpec {
            system: "Sun LX".into(),
            cpu_type: "Sparc".into(),
            year: 1992,
            cpu_mhz: 50.0,
            cpi: 1.3,
            caches: vec![CacheConfig {
                size_bytes: 64 * 1024,
                line_bytes: 32,
                ways: 1,
                hit_ns: 40.0, // 2 cycles at 20 ns
            }],
            dram_ns: 150.0,
            disk: Disk::era_1992(),
        }
    }

    /// 1996 Sun Ultra: 200 MHz UltraSparc.
    pub fn sun_ultra_1996() -> Self {
        MachineSpec {
            system: "Sun Ultra".into(),
            cpu_type: "UltraSparc".into(),
            year: 1996,
            cpu_mhz: 200.0,
            cpi: 1.1,
            caches: vec![
                CacheConfig {
                    size_bytes: 16 * 1024,
                    line_bytes: 32,
                    ways: 1,
                    hit_ns: 5.0,
                },
                CacheConfig {
                    size_bytes: 512 * 1024,
                    line_bytes: 64,
                    ways: 1,
                    hit_ns: 30.0,
                },
            ],
            dram_ns: 140.0,
            disk: Disk::era_1996(),
        }
    }

    /// 1997 Sun Ultra2: 296 MHz UltraSparcII.
    pub fn sun_ultra2_1997() -> Self {
        MachineSpec {
            system: "Sun Ultra2".into(),
            cpu_type: "UltraSparcII".into(),
            year: 1997,
            cpu_mhz: 296.0,
            cpi: 1.0,
            caches: vec![
                CacheConfig {
                    size_bytes: 16 * 1024,
                    line_bytes: 32,
                    ways: 1,
                    hit_ns: 3.4,
                },
                CacheConfig {
                    size_bytes: 1024 * 1024,
                    line_bytes: 64,
                    ways: 1,
                    hit_ns: 25.0,
                },
            ],
            dram_ns: 135.0,
            disk: Disk::era_1996(),
        }
    }

    /// 1998 DEC Alpha: 500 MHz — ten times the 1992 clock.
    pub fn dec_alpha_1998() -> Self {
        MachineSpec {
            system: "DEC Alpha".into(),
            cpu_type: "Alpha".into(),
            year: 1998,
            cpu_mhz: 500.0,
            cpi: 0.9,
            caches: vec![
                CacheConfig {
                    size_bytes: 64 * 1024,
                    line_bytes: 64,
                    ways: 2,
                    hit_ns: 2.0,
                },
                CacheConfig {
                    size_bytes: 4 * 1024 * 1024,
                    line_bytes: 64,
                    ways: 1,
                    hit_ns: 20.0,
                },
            ],
            dram_ns: 130.0,
            disk: Disk::era_1998(),
        }
    }

    /// 2000 SGI Origin2000: 300 MHz R12000 (NUMA — modeled with a higher
    /// effective memory latency).
    pub fn origin2000_2000() -> Self {
        MachineSpec {
            system: "Origin2000".into(),
            cpu_type: "R12000".into(),
            year: 2000,
            cpu_mhz: 300.0,
            cpi: 0.8,
            caches: vec![
                CacheConfig {
                    size_bytes: 32 * 1024,
                    line_bytes: 64,
                    ways: 2,
                    hit_ns: 3.3,
                },
                CacheConfig {
                    size_bytes: 8 * 1024 * 1024,
                    line_bytes: 128,
                    ways: 2,
                    hit_ns: 18.0,
                },
            ],
            dram_ns: 120.0,
            disk: Disk::era_1998(),
        }
    }

    /// The tutorial's measurement platform: 1.5 GHz Pentium M (Dothan),
    /// 32 KiB L1 + 2 MiB L2, 2 GB RAM, 5400 RPM laptop disk.
    pub fn laptop_2005() -> Self {
        MachineSpec {
            system: "Laptop".into(),
            cpu_type: "Pentium M (Dothan)".into(),
            year: 2005,
            cpu_mhz: 1500.0,
            cpi: 0.7,
            caches: vec![
                CacheConfig {
                    size_bytes: 32 * 1024,
                    line_bytes: 64,
                    ways: 8,
                    hit_ns: 2.0,
                },
                CacheConfig {
                    size_bytes: 2 * 1024 * 1024,
                    line_bytes: 64,
                    ways: 8,
                    hit_ns: 6.7,
                },
            ],
            dram_ns: 110.0,
            disk: Disk::laptop_5400rpm(),
        }
    }

    /// A modern (2008-era, matching the tutorial's presentation date)
    /// reference machine for forward-looking experiments.
    pub fn modern_2008() -> Self {
        MachineSpec {
            system: "Commodity server".into(),
            cpu_type: "x86-64".into(),
            year: 2008,
            cpu_mhz: 3000.0,
            cpi: 0.5,
            caches: vec![
                CacheConfig {
                    size_bytes: 32 * 1024,
                    line_bytes: 64,
                    ways: 8,
                    hit_ns: 1.3,
                },
                CacheConfig {
                    size_bytes: 6 * 1024 * 1024,
                    line_bytes: 64,
                    ways: 12,
                    hit_ns: 5.0,
                },
            ],
            dram_ns: 90.0,
            disk: Disk::raid_2008(),
        }
    }

    /// The five machines of the memory-wall figure, in chronological order.
    pub fn memory_wall_lineup() -> Vec<MachineSpec> {
        vec![
            Self::sun_lx_1992(),
            Self::sun_ultra_1996(),
            Self::sun_ultra2_1997(),
            Self::dec_alpha_1998(),
            Self::origin2000_2000(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_times() {
        assert!((MachineSpec::sun_lx_1992().cycle_ns() - 20.0).abs() < 1e-12);
        assert!((MachineSpec::dec_alpha_1998().cycle_ns() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cpu_ns_scales_with_instructions() {
        let m = MachineSpec::sun_lx_1992();
        assert!((m.cpu_ns(4.0) - 4.0 * 1.3 * 20.0).abs() < 1e-9);
        assert_eq!(m.cpu_ns(0.0), 0.0);
    }

    #[test]
    fn lineup_is_chronological_and_clock_grows_10x() {
        let lineup = MachineSpec::memory_wall_lineup();
        assert_eq!(lineup.len(), 5);
        for pair in lineup.windows(2) {
            assert!(pair[0].year < pair[1].year);
        }
        let first = lineup.first().unwrap().cpu_mhz;
        let max = lineup.iter().map(|m| m.cpu_mhz).fold(0.0, f64::max);
        assert!((max / first - 10.0).abs() < 1e-9, "500/50 = 10x");
    }

    #[test]
    fn all_presets_build_valid_hierarchies() {
        for m in [
            MachineSpec::sun_lx_1992(),
            MachineSpec::sun_ultra_1996(),
            MachineSpec::sun_ultra2_1997(),
            MachineSpec::dec_alpha_1998(),
            MachineSpec::origin2000_2000(),
            MachineSpec::laptop_2005(),
            MachineSpec::modern_2008(),
        ] {
            let h = m.hierarchy();
            assert_eq!(h.depth(), m.caches.len(), "{}", m.system);
            assert!(m.dram_ns > 0.0);
        }
    }

    #[test]
    fn dram_latency_improves_slowly_while_clock_races() {
        let lineup = MachineSpec::memory_wall_lineup();
        let clock_ratio = 500.0 / 50.0;
        let dram_ratio = lineup[0].dram_ns / lineup[4].dram_ns;
        assert!(clock_ratio >= 10.0);
        assert!(dram_ratio < 1.5, "DRAM barely improves: ratio {dram_ratio}");
    }

    #[test]
    fn laptop_matches_tutorial_description() {
        let m = MachineSpec::laptop_2005();
        assert_eq!(m.cpu_mhz, 1500.0);
        assert_eq!(m.caches[1].size_bytes, 2 * 1024 * 1024);
        assert!(m.cpu_type.contains("Pentium M"));
    }
}
