//! A multi-level memory hierarchy: L1 … Ln caches in front of DRAM, with
//! per-access nanosecond accounting and event counters.

use crate::cache::{CacheConfig, CacheSim};
use perfeval_measure::CounterSet;

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in cache level `i` (0-based: 0 = L1).
    CacheHit(usize),
    /// Missed every level; served from DRAM.
    Dram,
}

/// L1..Ln caches backed by DRAM.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    levels: Vec<CacheSim>,
    dram_ns: f64,
    total_ns: f64,
}

impl MemoryHierarchy {
    /// Builds a hierarchy from innermost-first cache configurations and a
    /// DRAM access latency.
    ///
    /// # Panics
    /// Panics if any cache configuration is invalid or `dram_ns < 0`.
    pub fn new(configs: &[CacheConfig], dram_ns: f64) -> Self {
        assert!(dram_ns >= 0.0, "DRAM latency must be non-negative");
        MemoryHierarchy {
            levels: configs.iter().map(|&c| CacheSim::new(c)).collect(),
            dram_ns,
            total_ns: 0.0,
        }
    }

    /// Simulates a load of byte address `addr`: probes caches inner to
    /// outer, installs the line in every missed level (inclusive fill), and
    /// accounts the latency of the level that served the access.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        let mut outcome = AccessOutcome::Dram;
        let mut served_ns = self.dram_ns;
        let mut hit_level = None;
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.access(addr) {
                hit_level = Some(i);
                served_ns = level.config().hit_ns;
                outcome = AccessOutcome::CacheHit(i);
                break;
            }
        }
        // Fill levels inner than the hit level were already updated by the
        // probe loop itself (access() installs on miss), which models an
        // inclusive allocate-on-miss hierarchy. If the access hit level i,
        // levels 0..i were misses and installed the line; if it went to
        // DRAM, all levels installed it.
        let _ = hit_level;
        self.total_ns += served_ns;
        outcome
    }

    /// Number of cache levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Accumulated simulated access time in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.total_ns
    }

    /// DRAM latency in nanoseconds.
    pub fn dram_ns(&self) -> f64 {
        self.dram_ns
    }

    /// Reference to cache level `i` (0 = L1).
    pub fn level(&self, i: usize) -> &CacheSim {
        &self.levels[i]
    }

    /// Flushes all levels and zeroes accumulated time — the cold state.
    pub fn flush(&mut self) {
        for level in &mut self.levels {
            level.flush();
        }
        self.total_ns = 0.0;
    }

    /// Zeroes the time accumulator and per-level counters, keeping contents.
    pub fn reset_counters(&mut self) {
        for level in &mut self.levels {
            level.reset_counters();
        }
        self.total_ns = 0.0;
    }

    /// Snapshot of all counters in `perfeval` form — the simulated
    /// equivalent of reading PAPI counters after a run.
    pub fn counters(&self) -> CounterSet {
        let mut set = CounterSet::new();
        for (i, level) in self.levels.iter().enumerate() {
            let name = format!("l{}", i + 1);
            set.add(&format!("{name}_hit"), level.hits());
            set.add(&format!("{name}_miss"), level.misses());
            set.add(&format!("{name}_access"), level.accesses());
        }
        if let Some(last) = self.levels.last() {
            set.add("dram_access", last.misses());
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level() -> MemoryHierarchy {
        MemoryHierarchy::new(
            &[
                CacheConfig {
                    size_bytes: 1024,
                    line_bytes: 64,
                    ways: 2,
                    hit_ns: 1.0,
                },
                CacheConfig {
                    size_bytes: 16 * 1024,
                    line_bytes: 64,
                    ways: 4,
                    hit_ns: 10.0,
                },
            ],
            100.0,
        )
    }

    #[test]
    fn first_access_goes_to_dram() {
        let mut h = two_level();
        assert_eq!(h.access(0), AccessOutcome::Dram);
        assert_eq!(h.total_ns(), 100.0);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut h = two_level();
        h.access(0);
        assert_eq!(h.access(0), AccessOutcome::CacheHit(0));
        assert_eq!(h.total_ns(), 101.0);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = two_level();
        // L1: 1 KiB = 16 lines, 2-way, 8 sets. Touch 32 distinct lines to
        // evict the first from L1 while it survives in the 256-line L2.
        for i in 0..33u64 {
            h.access(i * 64);
        }
        let outcome = h.access(0);
        assert_eq!(outcome, AccessOutcome::CacheHit(1), "should hit L2");
    }

    #[test]
    fn counters_snapshot() {
        let mut h = two_level();
        h.access(0); // miss both
        h.access(0); // hit L1
        let c = h.counters();
        assert_eq!(c.get("l1_access"), 2);
        assert_eq!(c.get("l1_hit"), 1);
        assert_eq!(c.get("l1_miss"), 1);
        assert_eq!(c.get("l2_miss"), 1);
        assert_eq!(c.get("dram_access"), 1);
    }

    #[test]
    fn flush_produces_cold_hierarchy() {
        let mut h = two_level();
        h.access(0);
        h.access(0);
        h.flush();
        assert_eq!(h.total_ns(), 0.0);
        assert_eq!(h.access(0), AccessOutcome::Dram);
    }

    #[test]
    fn reset_counters_keeps_contents() {
        let mut h = two_level();
        h.access(0);
        h.reset_counters();
        assert_eq!(h.total_ns(), 0.0);
        assert_eq!(h.access(0), AccessOutcome::CacheHit(0), "still warm");
    }

    #[test]
    fn zero_level_hierarchy_is_pure_dram() {
        let mut h = MemoryHierarchy::new(&[], 50.0);
        assert_eq!(h.depth(), 0);
        assert_eq!(h.access(0), AccessOutcome::Dram);
        assert_eq!(h.access(0), AccessOutcome::Dram);
        assert_eq!(h.total_ns(), 100.0);
        assert!(h.counters().is_empty());
    }
}
