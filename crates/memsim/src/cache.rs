//! A set-associative LRU cache simulator.
//!
//! This is the machinery behind the "hardware performance counters" the
//! tutorial tells you to reach for (VTune, oprofile, perfctr, PAPI, …):
//! every simulated memory access is classified as a hit or a miss, and the
//! counts are exposed so analyses can dissect CPU versus memory cost.

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Cache-line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set); 1 = direct mapped.
    pub ways: u64,
    /// Hit latency in nanoseconds.
    pub hit_ns: f64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.ways)
    }

    /// Validates invariants; returns a descriptive error string on failure.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() {
            return Err(format!("line size {} not a power of two", self.line_bytes));
        }
        if self.ways == 0 {
            return Err("associativity must be >= 1".into());
        }
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(self.line_bytes * self.ways) {
            return Err(format!(
                "size {} not divisible by line*ways = {}",
                self.size_bytes,
                self.line_bytes * self.ways
            ));
        }
        Ok(())
    }
}

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    /// Per-set vectors of line tags, most-recently-used last.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(config: CacheConfig) -> Self {
        config.validate().expect("invalid cache configuration");
        let sets = vec![Vec::with_capacity(config.ways as usize); config.sets() as usize];
        CacheSim {
            config,
            sets,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Simulates an access to byte address `addr`. Returns `true` on hit.
    /// On a miss the line is installed (allocate-on-miss, evicting LRU).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes;
        let set_count = self.sets.len() as u64;
        let set_idx = (line % set_count) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&tag| tag == line) {
            // Hit: move to MRU position.
            let tag = set.remove(pos);
            set.push(tag);
            self.hits += 1;
            true
        } else {
            // Miss: install, evicting LRU (front) if full.
            if set.len() == self.config.ways as usize {
                set.remove(0);
            }
            set.push(line);
            self.misses += 1;
            false
        }
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`; 0 when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Invalidates all contents and zeroes the counters — the simulator's
    /// "reboot" (the cold-run state of slide 32).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }

    /// Zeroes the counters but keeps contents — start measuring a hot cache.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> CacheSim {
        // 4 lines of 64 B, 2-way: 2 sets.
        CacheSim::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 2,
            hit_ns: 1.0,
        })
    }

    #[test]
    fn sets_computed_correctly() {
        let c = small_cache();
        assert_eq!(c.config().sets(), 2);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small_cache();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small_cache();
        // Lines 0, 2, 4 all map to set 0 (even line numbers, 2 sets).
        c.access(0); // line 0 -> set0 [0]
        c.access(128); // line 2 -> set0 [0,2]
        c.access(256); // line 4 -> evicts line 0 -> set0 [2,4]
        assert!(!c.access(0), "line 0 must have been evicted");
        assert!(c.access(256), "line 4 must still be resident");
    }

    #[test]
    fn lru_updates_on_hit() {
        let mut c = small_cache();
        c.access(0); // set0 [0]
        c.access(128); // set0 [0,2]
        c.access(0); // hit: set0 [2,0]
        c.access(256); // evicts line 2 (LRU) -> [0,4]
        assert!(c.access(0), "line 0 was MRU, must survive");
        assert!(!c.access(128), "line 2 was LRU, must be evicted");
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = small_cache();
        c.access(0); // line 0 -> set 0
        c.access(64); // line 1 -> set 1
        c.access(192); // line 3 -> set 1
        c.access(320); // line 5 -> set 1, evicts line 1
        assert!(c.access(0), "set 0 line untouched by set 1 traffic");
    }

    #[test]
    fn sequential_scan_miss_rate_matches_line_size() {
        // 8-byte elements, 64-byte lines: 1 miss per 8 accesses on a large
        // scan (footprint >> cache).
        let mut c = CacheSim::new(CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 64,
            ways: 4,
            hit_ns: 1.0,
        });
        let n = 100_000u64;
        for i in 0..n {
            c.access(i * 8);
        }
        let expect = 1.0 / 8.0;
        assert!(
            (c.miss_rate() - expect).abs() < 0.001,
            "miss rate {} != {expect}",
            c.miss_rate()
        );
    }

    #[test]
    fn repeated_small_working_set_all_hits() {
        let mut c = small_cache();
        c.access(0);
        c.access(64);
        c.reset_counters();
        for _ in 0..100 {
            c.access(0);
            c.access(64);
        }
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hits(), 200);
        assert_eq!(c.miss_rate(), 0.0);
    }

    #[test]
    fn flush_restores_cold_state() {
        let mut c = small_cache();
        c.access(0);
        c.access(0);
        c.flush();
        assert_eq!(c.accesses(), 0);
        assert!(!c.access(0), "post-flush access must miss");
    }

    #[test]
    fn miss_rate_empty_cache_is_zero() {
        let c = small_cache();
        assert_eq!(c.miss_rate(), 0.0);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        assert!(CacheConfig {
            size_bytes: 100,
            line_bytes: 60, // not a power of two
            ways: 1,
            hit_ns: 1.0
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 100, // not divisible by 64
            line_bytes: 64,
            ways: 1,
            hit_ns: 1.0
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 128,
            line_bytes: 64,
            ways: 0,
            hit_ns: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid cache configuration")]
    fn new_panics_on_invalid() {
        let _ = CacheSim::new(CacheConfig {
            size_bytes: 100,
            line_bytes: 64,
            ways: 1,
            hit_ns: 1.0,
        });
    }
}
