//! A small, offline property-testing harness exposing the subset of the
//! `proptest` crate API that this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` cannot be vendored; this shim keeps the property tests (and
//! their `proptest!` syntax) working against a deterministic
//! [`SplitMix64`]-driven sampler. There is no shrinking: a failing case
//! reports its case number and the seed so it can be replayed.
//!
//! Supported surface:
//!
//! * `proptest! { #[test] fn name(x in strategy, ...) { body } }`
//! * `prop_assert!`, `prop_assert_eq!`
//! * range strategies (`0.5..0.999f64`, `1usize..32`, …), `any::<u64>()`
//! * tuples of strategies
//! * `prop::collection::vec(element, size)` with `usize`, `Range<usize>`
//!   or `RangeInclusive<usize>` sizes

#![warn(missing_docs)]

use perfeval_stats::rng::SplitMix64;

/// Number of cases each property runs (override with `PROPTEST_CASES`).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-property generator: the seed is a hash of the
/// property name, so adding a property never reorders another's cases.
pub fn test_rng(name: &str) -> SplitMix64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SplitMix64::new(h)
}

/// A failed property case (the `Err` side of a property body).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut SplitMix64) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SplitMix64) -> f64 {
        rng.next_range_f64(self.start, self.end)
    }
}

impl Strategy for std::ops::Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut SplitMix64) -> i64 {
        rng.next_range_i64(self.start, self.end - 1)
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut SplitMix64) -> u64 {
        self.start + rng.next_below(self.end - self.start)
    }
}

impl Strategy for std::ops::Range<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut SplitMix64) -> u32 {
        self.start + rng.next_below((self.end - self.start) as u64) as u32
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut SplitMix64) -> usize {
        self.start + rng.next_below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for std::ops::RangeInclusive<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut SplitMix64) -> usize {
        self.start() + rng.next_below((self.end() - self.start() + 1) as u64) as usize
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut SplitMix64) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut SplitMix64) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut SplitMix64) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut SplitMix64) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut SplitMix64) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut SplitMix64) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SplitMix64) -> bool {
        rng.next_bool(0.5)
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut SplitMix64) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (`any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeBounds, Strategy};
    use perfeval_stats::rng::SplitMix64;

    /// Strategy for `Vec<E>` with an element strategy and a size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SplitMix64) -> Vec<S::Value> {
            let len = self.min + rng.next_below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Accepted length specifications for [`collection::vec`].
pub trait SizeBounds {
    /// Inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeBounds for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeBounds for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeBounds for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// `proptest`-compatible module path for collection strategies.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_rng(stringify!($name));
                let cases = $crate::cases();
                for case in 0..cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {case}/{cases}: {e}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body, failing the case (not the
/// whole process) with a report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3i64..9, y in 0.25..0.75f64, n in 2usize..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((2..5).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0i64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|x| (0..10).contains(x)));
        }

        #[test]
        fn fixed_size_vec(v in prop::collection::vec(-1.0..1.0f64, 8)) {
            prop_assert_eq!(v.len(), 8);
        }

        #[test]
        fn tuples_sample_both(pair in (0i64..5, -100i64..100)) {
            prop_assert!((0..5).contains(&pair.0));
            prop_assert!((-100..100).contains(&pair.1));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = super::test_rng("same");
        let mut b = super::test_rng("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::test_rng("different");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_number() {
        proptest! {
            fn always_fails(x in 0i64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
