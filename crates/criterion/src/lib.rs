//! A small, offline micro-benchmark harness exposing the subset of the
//! `criterion` crate API that this workspace's `benches/` use.
//!
//! The build environment has no network access to crates.io, so the real
//! `criterion` cannot be vendored. This shim keeps every bench target
//! compiling and running under `cargo bench`: each benchmark is warmed up,
//! then timed for a fixed number of samples, and a `min / median / mean`
//! line is printed. It deliberately implements no statistics beyond that —
//! the workspace's own `perfeval-stats` is the place for rigor.

#![warn(missing_docs)]

use std::time::Instant;

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    /// Per-sample wall-clock durations, seconds.
    pub sample_secs: Vec<f64>,
}

impl Bencher {
    /// Runs `routine` repeatedly: a few warmup calls, then `samples` timed
    /// calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3.min(self.samples) {
            black_box(routine());
        }
        self.sample_secs.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.sample_secs.push(t0.elapsed().as_secs_f64());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            sample_secs: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher.sample_secs);
        self
    }

    /// Benchmarks a closure against an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            sample_secs: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher.sample_secs);
        self
    }

    fn report(&mut self, id: &str, secs: &[f64]) {
        let line = if secs.is_empty() {
            format!("{}/{id}: no samples", self.name)
        } else {
            let mut sorted = secs.to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            let mean = secs.iter().sum::<f64>() / secs.len() as f64;
            format!(
                "{}/{id}: min {:.3} ms, median {:.3} ms, mean {:.3} ms ({} samples)",
                self.name,
                sorted[0] * 1e3,
                sorted[sorted.len() / 2] * 1e3,
                mean * 1e3,
                secs.len()
            )
        };
        println!("{line}");
        self.criterion.lines.push(line);
    }

    /// Ends the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// Every report line emitted (inspectable by tests).
    pub lines: Vec<String>,
    sample_size: usize,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Sets the default sample size for subsequent groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Declares a group function calling each benchmark in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (`--bench`,
            // test filters); a shim has nothing to configure from them.
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_reports_each_benchmark() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(4);
            g.bench_function("fast", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        assert_eq!(c.lines.len(), 2);
        assert!(c.lines[0].starts_with("demo/fast:"));
        assert!(c.lines[1].starts_with("demo/param/42:"));
        assert!(c.lines[0].contains("4 samples"));
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("q1", "OPT").to_string(), "q1/OPT");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }

    #[test]
    fn black_box_passes_through() {
        assert_eq!(black_box(7), 7);
    }
}
