//! Determinism suite for the morsel-parallel engine.
//!
//! The contract under test: for any data, any query shape the engine
//! supports, any thread count, and any morsel size — including one-row
//! morsels, ragged tails, and empty tables — the parallel optimized
//! engine returns **bit-identical** results to the serial optimized
//! engine, which in turn matches the debug engine. Float cells are
//! compared by bit pattern, not `==`, so `-0.0` vs `0.0` or differently
//! rounded sums cannot hide behind float equality.

use minidb::{Catalog, DataType, ExecMode, Session, TableBuilder, Value};
use proptest::prelude::*;

/// Deterministic little generator (the proptest shim hands us seeds).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
    fn float(&mut self) -> f64 {
        // Includes negatives and awkward magnitudes so float summation
        // order genuinely matters.
        (self.next() % 2_000_000) as f64 / 97.0 - 10_000.0
    }
}

const STRINGS: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

/// Builds a catalog with a fact table `t (k, v, s)` of `n` rows and a
/// dimension table `u (j, w)` of `m` rows.
fn build_catalog(n: usize, m: usize, seed: u64) -> Catalog {
    let mut rng = Lcg(seed | 1);
    let mut catalog = Catalog::new();
    let mut t = TableBuilder::new("t")
        .column("k", DataType::Int)
        .column("v", DataType::Float)
        .column("s", DataType::Str)
        .build();
    for _ in 0..n {
        t.push_row(vec![
            Value::Int(rng.below(50) as i64),
            Value::Float(rng.float()),
            Value::Str(STRINGS[rng.below(STRINGS.len() as u64) as usize].to_owned()),
        ])
        .unwrap();
    }
    catalog.register(t).unwrap();
    let mut u = TableBuilder::new("u")
        .column("j", DataType::Int)
        .column("w", DataType::Float)
        .build();
    for _ in 0..m {
        u.push_row(vec![
            Value::Int(rng.below(50) as i64),
            Value::Float(rng.float()),
        ])
        .unwrap();
    }
    catalog.register(u).unwrap();
    catalog
}

/// Query shapes covering every parallel operator: pipelines (filter,
/// project, both), fused aggregation (grouped and global), the parallel
/// join probe, and aggregation over a materialized (join) input.
fn query_shapes() -> Vec<String> {
    vec![
        "SELECT k, v FROM t WHERE k < 25".to_owned(),
        "SELECT k + 1 AS k2, v * 0.5 AS half FROM t WHERE v > 0.0 AND k < 40".to_owned(),
        "SELECT s, v FROM t WHERE s = 'beta'".to_owned(),
        "SELECT s, SUM(v) AS total, COUNT(*) AS n FROM t WHERE k < 30 GROUP BY s".to_owned(),
        "SELECT SUM(v), AVG(v), MIN(k), MAX(k), COUNT(*) FROM t".to_owned(),
        "SELECT k, SUM(v * 2.0) AS dbl FROM t GROUP BY k ORDER BY dbl DESC LIMIT 7".to_owned(),
        "SELECT k, w FROM t JOIN u ON k = j".to_owned(),
        "SELECT s, SUM(w) AS tw FROM t JOIN u ON k = j GROUP BY s ORDER BY s".to_owned(),
        "SELECT k, v FROM t WHERE v > -5000.0 ORDER BY k, v DESC".to_owned(),
        "SELECT COUNT(*) FROM t WHERE s = 'gamma' AND v < 500.0".to_owned(),
    ]
}

/// Bitwise row equality: floats must match to the last bit.
fn rows_bit_equal(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                    (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                    (x, y) => x == y,
                })
        })
}

fn run(
    catalog: &Catalog,
    mode: ExecMode,
    threads: usize,
    morsel: usize,
    sql: &str,
) -> Vec<Vec<Value>> {
    let mut session = Session::new(catalog.clone())
        .with_mode(mode)
        .with_parallelism(threads)
        .with_morsel_rows(morsel);
    session.query(sql).run().unwrap().rows
}

proptest! {
    #[test]
    fn parallel_is_bit_identical_to_serial_and_debug(
        n in 0usize..220,
        m in 0usize..120,
        seed in any::<u64>(),
    ) {
        let catalog = build_catalog(n, m, seed);
        for sql in query_shapes() {
            let debug = run(&catalog, ExecMode::Debug, 1, 64, &sql);
            let serial = run(&catalog, ExecMode::Optimized, 1, 64, &sql);
            prop_assert!(
                rows_bit_equal(&debug, &serial),
                "DBG vs serial OPT diverged on {sql} (n={n}, m={m}, seed={seed})"
            );
            for threads in [2usize, 3, 8] {
                for morsel in [1usize, 3, 64] {
                    let parallel = run(&catalog, ExecMode::Optimized, threads, morsel, &sql);
                    prop_assert!(
                        rows_bit_equal(&serial, &parallel),
                        "parallel OPT ({threads} threads, morsel {morsel}) diverged on {sql} \
                         (n={n}, m={m}, seed={seed})"
                    );
                }
            }
        }
    }
}

/// The ragged-tail and empty-table corners, pinned explicitly (the
/// property test reaches them probabilistically).
#[test]
fn edge_morsel_geometries() {
    for n in [0usize, 1, 2, 63, 64, 65, 128, 129] {
        let catalog = build_catalog(n, 7, 0xfeed);
        for sql in query_shapes() {
            let serial = run(&catalog, ExecMode::Optimized, 1, 64, &sql);
            for (threads, morsel) in [(2, 64), (4, 1), (3, 63), (8, 130)] {
                let parallel = run(&catalog, ExecMode::Optimized, threads, morsel, &sql);
                assert!(
                    rows_bit_equal(&serial, &parallel),
                    "n={n} threads={threads} morsel={morsel} sql={sql}"
                );
            }
        }
    }
}

/// The parallel profile must tell the same story as the serial one: same
/// operators at the same depths with the same row counts (only the times
/// and notes may differ), and the per-worker morsel spans must account
/// for exactly the serial operator's output rows — no row lost or
/// double-counted across workers.
#[test]
fn parallel_profile_and_trace_account_for_every_row() {
    let catalog = build_catalog(10_000, 0, 0xabcdef);
    let sql = "SELECT k, v FROM t WHERE k < 25";

    let mut serial = Session::new(catalog.clone());
    let serial_result = serial.query(sql).run().unwrap();
    let filter_rows = serial_result.rows.len();

    let tracer = perfeval_trace::Tracer::new();
    let mut parallel = Session::new(catalog)
        .with_parallelism(4)
        .with_morsel_rows(1024);
    let parallel_result = parallel.query(sql).traced(&tracer).run().unwrap();
    assert_eq!(parallel_result.rows.len(), filter_rows);

    // Profile: operator tree and row counts match the serial engine.
    let shape = |profile: &[minidb::exec::ProfileEntry]| -> Vec<(String, usize, usize)> {
        profile
            .iter()
            .map(|e| (e.op.clone(), e.depth, e.rows_out))
            .collect()
    };
    assert_eq!(
        shape(&serial_result.profile),
        shape(&parallel_result.profile),
        "serial:\n{}\nparallel:\n{}",
        minidb::exec::render_profile(&serial_result.profile),
        minidb::exec::render_profile(&parallel_result.profile),
    );

    // Trace: worker lanes exist, and their morsel spans' rows_in/rows_out
    // sum to the scan and filter row counts respectively.
    let trace = tracer.snapshot();
    assert!(trace.lanes.len() > 1, "worker lanes expected in the trace");
    let morsels: Vec<_> = trace
        .lanes
        .iter()
        .flat_map(|l| l.records.iter())
        .filter(|r| r.name.starts_with("morsel "))
        .collect();
    assert_eq!(morsels.len(), 10, "10_000 rows / 1024-row morsels");
    let attr_sum = |key: &str| -> i64 {
        morsels
            .iter()
            .map(|r| match r.attr(key) {
                Some(perfeval_trace::AttrValue::Int(v)) => *v,
                other => panic!("morsel span missing {key}: {other:?}"),
            })
            .sum()
    };
    assert_eq!(attr_sum("rows_in"), 10_000);
    assert_eq!(attr_sum("rows_out"), filter_rows as i64);
}

/// Scans must be zero-copy: running scan-only and scan+filter queries,
/// serial and parallel, may not deep-copy a single column (`Column`'s
/// instrumented `Clone` counts every cloned byte).
#[test]
fn scans_never_clone_column_bytes() {
    let catalog = build_catalog(50_000, 100, 0x5eed);
    let before = minidb::column::cloned_bytes();
    for (threads, morsel) in [(1usize, 16_384usize), (4, 1024)] {
        let mut s = Session::new(catalog.clone())
            .with_parallelism(threads)
            .with_morsel_rows(morsel);
        s.query("SELECT k FROM t").run().unwrap();
        s.query("SELECT k, v FROM t WHERE k < 10").run().unwrap();
        s.query("SELECT SUM(v) FROM t WHERE k < 25").run().unwrap();
    }
    let after = minidb::column::cloned_bytes();
    assert_eq!(after - before, 0, "queries deep-copied column data");
}
