//! Persistence integration: persist → reopen must be bit-identical, the
//! real buffer pool must count honestly (cold/hot/flush), backed tables
//! are read-only, injected `store.read` faults surface as I/O errors the
//! session survives, and tiny pool budgets force eviction mid-query
//! without changing answers.

use minidb::{Catalog, DbError, ExecMode, Session, StoreConfig, TableBuilder, Value};
use perfeval_fault::{FaultAction, FaultRegistry, Trigger};
use perfeval_store::Evict;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("minidb_persist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A catalog with edge-case data: NaN and signed zeros, a low-cardinality
/// string column, bools, and enough rows to span several chunks at small
/// `chunk_rows`.
fn build_catalog(rows: i64) -> Catalog {
    let mut catalog = Catalog::new();
    let mut t = TableBuilder::new("probe")
        .column("id", minidb::DataType::Int)
        .column("v", minidb::DataType::Float)
        .column("tag", minidb::DataType::Str)
        .column("flag", minidb::DataType::Bool)
        .build();
    for i in 0..rows {
        let v = match i % 4 {
            0 => f64::NAN,
            1 => -0.0,
            2 => 0.0,
            _ => i as f64 * 0.5,
        };
        t.push_row(vec![
            Value::Int(i),
            Value::Float(v),
            Value::Str(format!("tag{}", i % 7)),
            Value::Bool(i % 3 == 0),
        ])
        .unwrap();
    }
    catalog.register(t).unwrap();
    let mut small = TableBuilder::new("aside")
        .column("k", minidb::DataType::Int)
        .build();
    small.push_row(vec![Value::Int(42)]).unwrap();
    catalog.register(small).unwrap();
    catalog
}

/// Compares every column of every table bit-for-bit (floats by
/// `to_bits`, strings by decoded value).
fn assert_bit_identical(a: &Catalog, b: &Catalog) {
    assert_eq!(a.table_names(), b.table_names());
    for name in a.table_names() {
        let ta = a.table(name).unwrap();
        let tb = b.table(name).unwrap();
        assert_eq!(ta.row_count(), tb.row_count(), "{name} row count");
        assert_eq!(ta.schema(), tb.schema(), "{name} schema");
        for ci in 0..ta.column_count() {
            let ca = ta.column_arc_io(ci).unwrap();
            let cb = tb.column_arc_io(ci).unwrap();
            assert_eq!(ca.len(), cb.len());
            if let (Some(fa), Some(fb)) = (ca.as_float(), cb.as_float()) {
                for (x, y) in fa.iter().zip(fb) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{name} col {ci} float bits");
                }
            } else {
                for i in 0..ca.len() {
                    assert_eq!(ca.get(i), cb.get(i), "{name} col {ci} row {i}");
                }
            }
        }
    }
}

#[test]
fn persist_reopen_is_bit_identical() {
    let dir = temp_dir("roundtrip");
    let mem = build_catalog(1000);
    mem.persist(&dir).unwrap();
    let disk = Catalog::open(&dir).unwrap();
    assert!(disk.storage().is_some());
    assert!(disk.storage().unwrap().quarantined().is_empty());
    assert_bit_identical(&mem, &disk);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queries_agree_between_memory_and_disk_across_modes() {
    let dir = temp_dir("modes");
    let mem = build_catalog(500);
    mem.persist(&dir).unwrap();
    let sql =
        "SELECT tag, COUNT(*), SUM(id) FROM probe WHERE flag = true GROUP BY tag ORDER BY tag";
    for mode in [ExecMode::Debug, ExecMode::Optimized, ExecMode::Simd] {
        let want = Session::new(mem.clone())
            .with_mode(mode)
            .query(sql)
            .run()
            .unwrap();
        let disk = Catalog::open(&dir).unwrap();
        let got = Session::new(disk).with_mode(mode).query(sql).run().unwrap();
        assert_eq!(want.rows, got.rows, "{mode:?}");
        assert!(
            got.store_logical_reads > 0,
            "{mode:?}: disk-backed scan must hit the real pool"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn backed_tables_are_read_only() {
    let dir = temp_dir("readonly");
    build_catalog(10).persist(&dir).unwrap();
    let mut disk = Catalog::open(&dir).unwrap();
    let err = disk
        .table_mut("probe")
        .unwrap()
        .push_row(vec![
            Value::Int(999),
            Value::Float(1.0),
            Value::Str("x".into()),
            Value::Bool(false),
        ])
        .unwrap_err();
    assert!(matches!(err, DbError::Semantic(_)), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiny_pool_forces_eviction_without_changing_answers() {
    let dir = temp_dir("evict");
    let mem = build_catalog(2000);
    mem.persist_with(&dir, &StoreConfig::default().chunk_rows(128))
        .unwrap();
    let want = Session::new(mem)
        .query("SELECT SUM(id), COUNT(*) FROM probe")
        .run()
        .unwrap();
    for evict in Evict::all() {
        // ~4 KiB holds only a couple of 128-row chunks: every policy must
        // evict mid-query and still answer identically.
        let disk =
            Catalog::open_with(&dir, StoreConfig::default().pool_bytes(4096).evict(evict)).unwrap();
        let store = Arc::clone(disk.storage().unwrap());
        let got = Session::new(disk)
            .query("SELECT SUM(id), COUNT(*) FROM probe")
            .run()
            .unwrap();
        assert_eq!(want.rows, got.rows, "{evict:?}");
        let c = store.counters();
        assert!(c.evictions > 0, "{evict:?}: pool must have evicted");
        assert!(
            store.resident_bytes() <= 4096 || c.overcommits > 0,
            "{evict:?}: budget respected or overcommit counted"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cold_hot_flush_counters_are_real() {
    let dir = temp_dir("coldhot");
    build_catalog(1000).persist(&dir).unwrap();
    let disk = Catalog::open(&dir).unwrap();
    let mut session = Session::new(disk);
    let sql = "SELECT SUM(v) FROM probe WHERE id >= 0";

    let cold = session.query(sql).run().unwrap();
    assert!(cold.store_physical_reads > 0, "cold run must touch disk");

    let hot = session.query(sql).run().unwrap();
    assert_eq!(hot.store_physical_reads, 0, "hot rerun must be all hits");
    assert!(hot.store_logical_reads > 0);
    assert_eq!(session.pool_hit_rate(), Some(1.0));

    session.flush_caches();
    let recold = session.query(sql).run().unwrap();
    assert!(
        recold.store_physical_reads > 0,
        "flush_caches must produce a genuine cold run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_read_fault_surfaces_as_io_error_and_session_survives() {
    let dir = temp_dir("readfault");
    build_catalog(100).persist(&dir).unwrap();
    // Table ids follow sorted name order: aside=0, probe=1. Fault the
    // first chunk of probe's first column only.
    let probe_key = minidb::storage::read_fault_key((1, 0, 0));
    let faults = Arc::new(FaultRegistry::new(7).armed_always(
        "store.read",
        Trigger::Key(probe_key),
        FaultAction::FailIo,
    ));
    let disk = Catalog::open_with(&dir, StoreConfig::default().faults(faults)).unwrap();
    let mut session = Session::new(disk);
    let err = session
        .query("SELECT COUNT(*) FROM probe WHERE id > 1")
        .run()
        .unwrap_err();
    assert!(matches!(err, DbError::Io(_)), "{err}");
    // The session (and its pool) survive: an unfaulted table still answers.
    let ok = session.query("SELECT k FROM aside").run().unwrap();
    assert_eq!(ok.rows, vec![vec![Value::Int(42)]]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stray_files_are_quarantined_and_counted() {
    let dir = temp_dir("quarantine");
    build_catalog(10).persist(&dir).unwrap();
    std::fs::write(dir.join("probe").join("g9_c0_k0.seg"), b"stray").unwrap();
    std::fs::write(dir.join("probe").join("TABLE.manifest.tmp"), b"torn").unwrap();
    let disk = Catalog::open(&dir).unwrap();
    let q = disk.storage().unwrap().quarantined();
    assert_eq!(q.len(), 2, "{q:?}");
    assert!(q.iter().any(|f| f.contains("g9_c0_k0.seg")));
    // Quarantined, not deleted: the bytes are preserved for forensics.
    assert!(dir.join("quarantine").join("probe__g9_c0_k0.seg").exists());
    // Reopening after quarantine is clean.
    let again = Catalog::open(&dir).unwrap();
    assert!(again.storage().unwrap().quarantined().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
