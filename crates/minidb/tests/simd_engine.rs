//! Bit-identity suite for the SIMD engine tier.
//!
//! The contract under test: for any data — including values that defeat
//! the integer-sum exactness guard — any supported query shape, any
//! thread count, and any morsel size, `ExecMode::Simd` returns results
//! **bit-identical** to serial `ExecMode::Optimized`, which matches
//! `ExecMode::Debug`. Floats are compared by bit pattern (`to_bits`), so
//! `-0.0` vs `0.0` or differently rounded folds cannot hide behind `==`.
//!
//! Query shapes are chosen to drive every kernel: each comparison op of
//! compare-select (including flipped-literal and int-vs-float-literal
//! forms), the branchless compaction behind multi-conjunct filters, the
//! generic fallback, the open-addressed join index, the dense group-id
//! path (single Int key), and the guarded lane folds (both the exact case
//! and the overflow case that must fall back to serial replay).

use minidb::{Catalog, DataType, ExecMode, Session, TableBuilder, Value};
use proptest::prelude::*;

/// Deterministic little generator (the proptest shim hands us seeds).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
    fn float(&mut self) -> f64 {
        (self.next() % 2_000_000) as f64 / 97.0 - 10_000.0
    }
}

const STRINGS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Fact table `t (k, v, s, big)` and dimension `u (j, w)`. The `big`
/// column mixes magnitudes around 2^53 so SUM(big)'s exactness guard
/// trips on some inputs and holds on others — both sides of the
/// lane-fold/serial-replay dispatch get exercised.
fn build_catalog(n: usize, m: usize, seed: u64) -> Catalog {
    let mut rng = Lcg(seed | 1);
    let mut catalog = Catalog::new();
    let mut t = TableBuilder::new("t")
        .column("k", DataType::Int)
        .column("v", DataType::Float)
        .column("s", DataType::Str)
        .column("big", DataType::Int)
        .build();
    for _ in 0..n {
        let big = if rng.below(4) == 0 {
            // Near-2^53 magnitudes: a handful of these forces the serial
            // fallback of the guarded integer sum.
            ((rng.next() as i64) & ((1i64 << 55) - 1)) - (1i64 << 54)
        } else {
            rng.below(10_000) as i64 - 5_000
        };
        t.push_row(vec![
            Value::Int(rng.below(50) as i64),
            Value::Float(rng.float()),
            Value::Str(STRINGS[rng.below(STRINGS.len() as u64) as usize].to_owned()),
            Value::Int(big),
        ])
        .unwrap();
    }
    catalog.register(t).unwrap();
    let mut u = TableBuilder::new("u")
        .column("j", DataType::Int)
        .column("w", DataType::Float)
        .build();
    for _ in 0..m {
        u.push_row(vec![
            Value::Int(rng.below(50) as i64),
            Value::Float(rng.float()),
        ])
        .unwrap();
    }
    catalog.register(u).unwrap();
    catalog
}

fn query_shapes() -> Vec<String> {
    vec![
        // Every comparison op through the typed compare-select kernels.
        "SELECT k FROM t WHERE k < 25".to_owned(),
        "SELECT k FROM t WHERE k <= 24".to_owned(),
        "SELECT k FROM t WHERE k > 25".to_owned(),
        "SELECT k FROM t WHERE k >= 26".to_owned(),
        "SELECT k FROM t WHERE k = 7".to_owned(),
        "SELECT k FROM t WHERE k <> 7".to_owned(),
        // Flipped literal order and int-column-vs-float-literal.
        "SELECT k FROM t WHERE 25 > k".to_owned(),
        "SELECT k FROM t WHERE k < 24.5".to_owned(),
        // Float compares and dictionary string compares.
        "SELECT v FROM t WHERE v >= 0.0".to_owned(),
        "SELECT k FROM t WHERE s = 'beta'".to_owned(),
        "SELECT k FROM t WHERE s <> 'gamma'".to_owned(),
        "SELECT k FROM t WHERE s = 'absent'".to_owned(),
        // Multi-conjunct: dense first pass, sparse gather after.
        "SELECT k, v FROM t WHERE k > 5 AND v > -5000.0 AND k < 45".to_owned(),
        // Generic fallback (disjunction).
        "SELECT k FROM t WHERE k = 1 OR k = 30".to_owned(),
        // Guarded integer folds: small (lane-exact) and big (guard trips).
        "SELECT SUM(k), MIN(k), MAX(k), COUNT(*) FROM t".to_owned(),
        "SELECT SUM(big), MIN(big), MAX(big) FROM t".to_owned(),
        "SELECT AVG(k), AVG(big) FROM t".to_owned(),
        // Float folds (always serial, by contract).
        "SELECT SUM(v), AVG(v), MIN(v), MAX(v) FROM t".to_owned(),
        // Dense group-id path: single Int key, with order-sensitive float
        // accumulation per group.
        "SELECT k, SUM(v) AS sv, COUNT(*) AS n FROM t GROUP BY k ORDER BY k".to_owned(),
        "SELECT k, SUM(big) AS sb FROM t GROUP BY k ORDER BY sb DESC LIMIT 9".to_owned(),
        // Multi-key and string-key grouping stay on the scalar directory.
        "SELECT s, k, SUM(v) FROM t GROUP BY s, k ORDER BY s, k".to_owned(),
        "SELECT s, AVG(v) FROM t GROUP BY s ORDER BY s".to_owned(),
        // The open-addressed int join index, alone and under aggregation.
        "SELECT k, w FROM t JOIN u ON k = j".to_owned(),
        "SELECT s, SUM(w) AS tw FROM t JOIN u ON k = j GROUP BY s ORDER BY s".to_owned(),
        "SELECT COUNT(*) FROM t JOIN u ON k = j WHERE v > 0.0".to_owned(),
    ]
}

fn rows_bit_equal(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                    (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                    (x, y) => x == y,
                })
        })
}

fn run(
    catalog: &Catalog,
    mode: ExecMode,
    threads: usize,
    morsel: usize,
    sql: &str,
) -> Vec<Vec<Value>> {
    let mut session = Session::new(catalog.clone())
        .with_mode(mode)
        .with_parallelism(threads)
        .with_morsel_rows(morsel);
    session.query(sql).run().unwrap().rows
}

proptest! {
    #[test]
    fn simd_is_bit_identical_to_opt_and_dbg(
        n in 0usize..220,
        m in 0usize..120,
        seed in any::<u64>(),
    ) {
        let catalog = build_catalog(n, m, seed);
        for sql in query_shapes() {
            let debug = run(&catalog, ExecMode::Debug, 1, 64, &sql);
            let opt = run(&catalog, ExecMode::Optimized, 1, 64, &sql);
            prop_assert!(
                rows_bit_equal(&debug, &opt),
                "DBG vs OPT diverged on {sql} (n={n}, m={m}, seed={seed})"
            );
            for threads in [1usize, 2, 8] {
                for morsel in [1usize, 3, 64] {
                    let simd = run(&catalog, ExecMode::Simd, threads, morsel, &sql);
                    prop_assert!(
                        rows_bit_equal(&opt, &simd),
                        "SIMD ({threads} threads, morsel {morsel}) diverged on {sql} \
                         (n={n}, m={m}, seed={seed})"
                    );
                }
            }
        }
    }
}

/// Lane-boundary row counts, pinned explicitly: empty, one short of a
/// lane, exact lanes, one over, and ragged many-lane tails.
#[test]
fn simd_edge_geometries() {
    for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 129] {
        let catalog = build_catalog(n, 7, 0xfeed);
        for sql in query_shapes() {
            let opt = run(&catalog, ExecMode::Optimized, 1, 64, &sql);
            for (threads, morsel) in [(1, 64), (2, 64), (4, 1), (3, 63), (8, 130)] {
                let simd = run(&catalog, ExecMode::Simd, threads, morsel, &sql);
                assert!(
                    rows_bit_equal(&opt, &simd),
                    "n={n} threads={threads} morsel={morsel} sql={sql}"
                );
            }
        }
    }
}

/// The SIMD tier must not change what the engine *reports* doing: same
/// operator tree, same depths, same row counts as serial OPT.
#[test]
fn simd_profile_matches_opt() {
    let catalog = build_catalog(5_000, 100, 0xabcdef);
    for sql in [
        "SELECT k, v FROM t WHERE k < 25",
        "SELECT k, SUM(v) AS sv FROM t GROUP BY k ORDER BY k",
        "SELECT k, w FROM t JOIN u ON k = j",
    ] {
        let shape = |mode: ExecMode| -> Vec<(String, usize, usize)> {
            let mut s = Session::new(catalog.clone()).with_mode(mode);
            s.query(sql)
                .run()
                .unwrap()
                .profile
                .iter()
                .map(|e| (e.op.clone(), e.depth, e.rows_out))
                .collect()
        };
        assert_eq!(
            shape(ExecMode::Optimized),
            shape(ExecMode::Simd),
            "profile diverged on {sql}"
        );
    }
}
