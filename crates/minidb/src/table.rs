//! Tables: named collections of equal-length columns.

use crate::column::Column;
use crate::error::DbError;
use crate::storage::{persist_table, DiskBacking, StoreConfig};
use crate::types::{DataType, Value};
use std::path::Path;
use std::sync::Arc;

/// A named, schema-typed, columnar table.
///
/// Columns live behind `Arc` so scans hand them to the executor (and the
/// executor hands them to worker threads) without deep-copying data:
/// cloning a table or scanning it costs reference counts, not bytes.
///
/// A table is either **in-memory** (columns resident, mutable) or
/// **disk-backed** (opened via [`Catalog::open`](crate::Catalog::open)):
/// backed tables keep empty placeholder columns for schema answers and
/// fetch real column data through the shared buffer pool on demand via
/// [`Table::column_arc_io`]. Backed tables are read-only.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    column_names: Vec<String>,
    columns: Vec<Arc<Column>>,
    backing: Option<DiskBacking>,
}

impl Table {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds a disk-backed table from an opened manifest. The columns
    /// vector holds empty placeholders of the right types so schema
    /// queries (`schema()`, `data_type()`) answer without I/O.
    pub(crate) fn from_backing(backing: DiskBacking) -> Table {
        Table {
            name: backing.manifest.name.clone(),
            column_names: backing
                .manifest
                .columns
                .iter()
                .map(|c| c.name.clone())
                .collect(),
            columns: backing
                .manifest
                .columns
                .iter()
                .map(|c| Arc::new(Column::new(crate::storage::data_type_of(c.tag))))
                .collect(),
            backing: Some(backing),
        }
    }

    /// True if this table reads its data from persistent segments.
    pub fn is_disk_backed(&self) -> bool {
        self.backing.is_some()
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        match &self.backing {
            Some(b) => b.rows(),
            None => self.columns.first().map_or(0, |c| c.len()),
        }
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Column names in schema order.
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize, DbError> {
        self.column_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| DbError::UnknownColumn(name.to_owned()))
    }

    /// Column by index.
    ///
    /// For disk-backed tables this is the empty schema placeholder —
    /// use it for type questions only; fetch data via
    /// [`Table::column_arc_io`].
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Shared handle to a column by index (zero-copy scans).
    ///
    /// # Panics
    /// For disk-backed tables this performs real I/O and panics if it
    /// fails; fallible callers use [`Table::column_arc_io`].
    pub fn column_arc(&self, idx: usize) -> Arc<Column> {
        self.column_arc_io(idx)
            .expect("disk-backed column fetch failed")
    }

    /// Shared handle to a column by index, surfacing storage errors.
    ///
    /// In-memory tables return their resident `Arc` (free). Disk-backed
    /// tables pull every chunk of the column through the buffer pool —
    /// an `Arc` clone when resident, a real `pread` on a miss — and
    /// return [`DbError::Io`] when a segment is unreadable (including
    /// injected `store.read` faults).
    pub fn column_arc_io(&self, idx: usize) -> Result<Arc<Column>, DbError> {
        match &self.backing {
            Some(b) => b.fetch_column(idx),
            None => Ok(Arc::clone(&self.columns[idx])),
        }
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, DbError> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// Schema as (name, type) pairs.
    pub fn schema(&self) -> Vec<(String, DataType)> {
        self.column_names
            .iter()
            .cloned()
            .zip(self.columns.iter().map(|c| c.data_type()))
            .collect()
    }

    /// Appends one row; values must match the schema positionally.
    ///
    /// Disk-backed tables are read-only and return a semantic error:
    /// load in memory, persist, reopen.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<(), DbError> {
        if self.backing.is_some() {
            return Err(DbError::Semantic(format!(
                "table {} is disk-backed and read-only",
                self.name
            )));
        }
        if values.len() != self.columns.len() {
            return Err(DbError::Arity {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        // Validate all values first so a failed push cannot leave ragged
        // columns behind.
        for (col, v) in self.columns.iter().zip(&values) {
            let compatible = matches!(
                (col.data_type(), v),
                (DataType::Int, Value::Int(_))
                    | (DataType::Float, Value::Float(_))
                    | (DataType::Float, Value::Int(_))
                    | (DataType::Str, Value::Str(_))
                    | (DataType::Bool, Value::Bool(_))
            );
            if !compatible {
                return Err(DbError::TypeMismatch(format!(
                    "value {v:?} does not fit column type {}",
                    col.data_type()
                )));
            }
        }
        for (col, v) in self.columns.iter_mut().zip(values) {
            Arc::make_mut(col).push(v).expect("validated above");
        }
        Ok(())
    }

    /// Materializes row `i` as values.
    ///
    /// # Panics
    /// Panics if `i >= row_count()`, or if the table is disk-backed
    /// (per-row point reads through the pool would be quadratic —
    /// fetch columns once via [`Table::column_arc_io`] instead).
    pub fn row(&self, i: usize) -> Vec<Value> {
        assert!(
            self.backing.is_none(),
            "row(): disk-backed table {}; fetch columns via column_arc_io",
            self.name
        );
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Bytes of one row as stored (page accounting for the buffer pool).
    pub fn row_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.value_bytes()).sum()
    }

    /// Number of 8 KiB pages this table occupies on the simulated disk.
    pub fn page_count(&self, page_bytes: u64) -> u64 {
        let total = self.row_count() as u64 * self.row_bytes();
        total.div_ceil(page_bytes).max(1)
    }

    /// Persists this table under `root/<name>/` as checksummed,
    /// compressed column segments with default storage settings. See
    /// [`Catalog::persist`](crate::Catalog::persist) for whole-catalog
    /// persistence.
    pub fn persist(&self, root: &Path) -> Result<(), DbError> {
        self.persist_with(root, &StoreConfig::default())
    }

    /// [`Table::persist`] with explicit storage settings (chunk size,
    /// fault registry).
    pub fn persist_with(&self, root: &Path, config: &StoreConfig) -> Result<(), DbError> {
        persist_table(self, root, config)
    }
}

/// Fluent builder for [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    column_names: Vec<String>,
    types: Vec<DataType>,
}

impl TableBuilder {
    /// Starts a table definition.
    pub fn new(name: &str) -> Self {
        TableBuilder {
            name: name.to_owned(),
            column_names: Vec::new(),
            types: Vec::new(),
        }
    }

    /// Adds a column.
    pub fn column(mut self, name: &str, dt: DataType) -> Self {
        self.column_names.push(name.to_owned());
        self.types.push(dt);
        self
    }

    /// Finishes the definition.
    ///
    /// # Panics
    /// Panics on duplicate column names or an empty schema.
    pub fn build(self) -> Table {
        assert!(!self.column_names.is_empty(), "table needs >= 1 column");
        for (i, a) in self.column_names.iter().enumerate() {
            for b in &self.column_names[i + 1..] {
                assert_ne!(a, b, "duplicate column name {a}");
            }
        }
        Table {
            name: self.name,
            columns: self
                .types
                .iter()
                .map(|&t| Arc::new(Column::new(t)))
                .collect(),
            column_names: self.column_names,
            backing: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = TableBuilder::new("items")
            .column("id", DataType::Int)
            .column("name", DataType::Str)
            .column("price", DataType::Float)
            .build();
        t.push_row(vec![
            Value::Int(1),
            Value::Str("apple".into()),
            Value::Float(0.5),
        ])
        .unwrap();
        t.push_row(vec![
            Value::Int(2),
            Value::Str("orange".into()),
            Value::Float(0.8),
        ])
        .unwrap();
        t
    }

    #[test]
    fn build_and_fill() {
        let t = sample();
        assert_eq!(t.name(), "items");
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column_count(), 3);
        assert_eq!(
            t.row(1),
            vec![
                Value::Int(2),
                Value::Str("orange".into()),
                Value::Float(0.8)
            ]
        );
    }

    #[test]
    fn schema_and_lookup() {
        let t = sample();
        assert_eq!(t.column_index("price").unwrap(), 2);
        assert!(t.column_index("nope").is_err());
        let schema = t.schema();
        assert_eq!(schema[1], ("name".to_owned(), DataType::Str));
        assert_eq!(t.column_by_name("id").unwrap().len(), 2);
    }

    #[test]
    fn arity_check() {
        let mut t = sample();
        let err = t.push_row(vec![Value::Int(3)]).unwrap_err();
        assert_eq!(
            err,
            DbError::Arity {
                expected: 3,
                got: 1
            }
        );
        assert_eq!(t.row_count(), 2, "failed push must not modify the table");
    }

    #[test]
    fn type_check_is_atomic() {
        let mut t = sample();
        // Third value has the wrong type; no column may grow.
        let err = t
            .push_row(vec![
                Value::Int(3),
                Value::Str("pear".into()),
                Value::Str("oops".into()),
            ])
            .unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch(_)));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column(0).len(), 2);
        assert_eq!(t.column(1).len(), 2);
    }

    #[test]
    fn row_bytes_and_pages() {
        let t = sample();
        // 8 (int) + 4 (str code) + 8 (float) = 20 bytes/row.
        assert_eq!(t.row_bytes(), 20);
        assert_eq!(t.page_count(8192), 1);
        let mut big = TableBuilder::new("big").column("x", DataType::Int).build();
        for i in 0..10_000 {
            big.push_row(vec![Value::Int(i)]).unwrap();
        }
        // 80_000 bytes / 8192 = 9.77 -> 10 pages.
        assert_eq!(big.page_count(8192), 10);
    }

    #[test]
    fn empty_table_has_one_page() {
        let t = TableBuilder::new("e").column("x", DataType::Int).build();
        assert_eq!(t.page_count(8192), 1);
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_columns_panic() {
        let _ = TableBuilder::new("bad")
            .column("x", DataType::Int)
            .column("x", DataType::Int)
            .build();
    }

    #[test]
    #[should_panic(expected = "needs >= 1 column")]
    fn empty_schema_panics() {
        let _ = TableBuilder::new("bad").build();
    }
}
