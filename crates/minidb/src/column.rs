//! Typed column storage.
//!
//! Columns are the engine's unit of storage and (in optimized mode) of
//! execution: each is a dense, type-specialized vector, with strings
//! dictionary-encoded — the layout whose cache behaviour `memsim`'s
//! memory-wall experiment motivates.

use crate::error::DbError;
use crate::types::{DataType, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bytes of column *data* duplicated by [`Column::clone`] since process
/// start. Zero-copy execution paths are verified against this counter:
/// a scan that shares columns by `Arc` must not move it.
static CLONED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Total bytes of column data deep-copied by `Column::clone` so far.
///
/// Take a reading before and after a region and compare the delta; the
/// counter is process-global and monotone. Dictionary storage shared via
/// `Arc` is not charged — only the dense per-row vectors are.
pub fn cloned_bytes() -> u64 {
    CLONED_BYTES.load(Ordering::Relaxed)
}

/// A string dictionary: distinct values plus the reverse index used while
/// loading. Shared between column copies via `Arc`, so cloning a string
/// column during query execution costs one reference count, not a rebuild
/// of the whole dictionary.
#[derive(Debug, Clone, Default)]
pub struct StrDict {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl StrDict {
    /// The distinct values, in first-seen order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Code of a value if present.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Rebuilds a dictionary from its distinct values (the persistence
    /// reload path). Values must be distinct; codes are positional.
    pub(crate) fn from_values(values: Vec<String>) -> StrDict {
        let index = values
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        StrDict { values, index }
    }

    /// Interns a value, returning its code.
    fn intern(&mut self, s: String) -> u32 {
        match self.index.get(&s) {
            Some(&c) => c,
            None => {
                let c = self.values.len() as u32;
                self.values.push(s.clone());
                self.index.insert(s, c);
                c
            }
        }
    }
}

/// A typed column of values.
#[derive(Debug)]
pub enum Column {
    /// Dense i64 vector.
    Int(Vec<i64>),
    /// Dense f64 vector.
    Float(Vec<f64>),
    /// Dictionary-encoded strings: `codes[i]` indexes into `dict`.
    Str {
        /// Shared dictionary.
        dict: Arc<StrDict>,
        /// Per-row dictionary codes.
        codes: Vec<u32>,
    },
    /// Dense bool vector.
    Bool(Vec<bool>),
}

impl Clone for Column {
    fn clone(&self) -> Self {
        CLONED_BYTES.fetch_add(self.len() as u64 * self.value_bytes(), Ordering::Relaxed);
        match self {
            Column::Int(v) => Column::Int(v.clone()),
            Column::Float(v) => Column::Float(v.clone()),
            Column::Bool(v) => Column::Bool(v.clone()),
            Column::Str { dict, codes } => Column::Str {
                dict: Arc::clone(dict),
                codes: codes.clone(),
            },
        }
    }
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn new(dt: DataType) -> Self {
        match dt {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Str => Column::Str {
                dict: Arc::new(StrDict::default()),
                codes: Vec::new(),
            },
            DataType::Bool => Column::Bool(Vec::new()),
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str { .. } => DataType::Str,
            Column::Bool(_) => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str { codes, .. } => codes.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value; the value must match the column type (NULLs are not
    /// supported in base tables — the generator never produces them, and
    /// rejecting them keeps the vectorized kernels branch-free).
    pub fn push(&mut self, v: Value) -> Result<(), DbError> {
        match (self, v) {
            (Column::Int(vec), Value::Int(i)) => vec.push(i),
            (Column::Float(vec), Value::Float(f)) => vec.push(f),
            (Column::Float(vec), Value::Int(i)) => vec.push(i as f64),
            (Column::Bool(vec), Value::Bool(b)) => vec.push(b),
            (Column::Str { dict, codes }, Value::Str(s)) => {
                // Fast path: value already interned (no dictionary write,
                // no copy-on-write even when the dictionary is shared).
                let code = match dict.code_of(&s) {
                    Some(c) => c,
                    None => Arc::make_mut(dict).intern(s),
                };
                codes.push(code);
            }
            (col, v) => {
                return Err(DbError::TypeMismatch(format!(
                    "cannot store {v:?} in {} column",
                    col.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Value at row `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::Float(v[i]),
            Column::Str { dict, codes } => Value::Str(dict.values()[codes[i] as usize].clone()),
            Column::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Width of one value in bytes as stored (used for page accounting).
    pub fn value_bytes(&self) -> u64 {
        match self {
            Column::Int(_) => 8,
            Column::Float(_) => 8,
            Column::Str { .. } => 4, // dictionary code
            Column::Bool(_) => 1,
        }
    }

    /// Number of distinct values (exact for strings via the dictionary,
    /// computed for other types).
    pub fn distinct_count(&self) -> usize {
        match self {
            Column::Str { dict, .. } => dict.values().len(),
            Column::Int(v) => {
                let mut set: Vec<i64> = v.clone();
                set.sort_unstable();
                set.dedup();
                set.len()
            }
            Column::Float(v) => {
                let mut set: Vec<u64> = v.iter().map(|f| f.to_bits()).collect();
                set.sort_unstable();
                set.dedup();
                set.len()
            }
            Column::Bool(v) => {
                let has_t = v.contains(&true);
                let has_f = v.contains(&false);
                usize::from(has_t) + usize::from(has_f)
            }
        }
    }

    /// Builds a new column containing the rows selected by `selection`
    /// (indices into this column, in output order).
    pub fn take(&self, selection: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(selection.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(selection.iter().map(|&i| v[i]).collect()),
            Column::Bool(v) => Column::Bool(selection.iter().map(|&i| v[i]).collect()),
            Column::Str { dict, codes } => Column::Str {
                dict: Arc::clone(dict),
                codes: selection.iter().map(|&i| codes[i]).collect(),
            },
        }
    }

    /// Concatenates `parts` (all of type `dt`) into one column, in order.
    ///
    /// This is the deterministic morsel merge: element `j` of part `p`
    /// lands after every element of parts `0..p`, so the result is the
    /// same column a serial evaluation over the concatenated input would
    /// produce. String parts that share one dictionary `Arc` are merged by
    /// code; otherwise values are re-interned in row order, which yields
    /// the same first-seen dictionary a serial build would.
    ///
    /// # Panics
    /// Panics if a part's type does not match `dt`.
    pub fn concat(dt: DataType, parts: &[&Column]) -> Column {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        match dt {
            DataType::Int => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.as_int().expect("int part"));
                }
                Column::Int(out)
            }
            DataType::Float => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.as_float().expect("float part"));
                }
                Column::Float(out)
            }
            DataType::Bool => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    match p {
                        Column::Bool(v) => out.extend_from_slice(v),
                        other => panic!("bool part expected, got {}", other.data_type()),
                    }
                }
                Column::Bool(out)
            }
            DataType::Str => {
                let shared = match parts.iter().find(|p| !p.is_empty()) {
                    Some(Column::Str { dict, .. }) => {
                        let first = dict;
                        parts
                            .iter()
                            .all(|p| match p {
                                Column::Str { dict, .. } => {
                                    p.is_empty() || Arc::ptr_eq(first, dict)
                                }
                                _ => panic!("str part expected, got {}", p.data_type()),
                            })
                            .then(|| Arc::clone(first))
                    }
                    Some(other) => panic!("str part expected, got {}", other.data_type()),
                    None => Some(Arc::new(StrDict::default())),
                };
                match shared {
                    Some(dict) => {
                        let mut out = Vec::with_capacity(total);
                        for p in parts {
                            if let Column::Str { codes, .. } = p {
                                out.extend_from_slice(codes);
                            }
                        }
                        Column::Str { dict, codes: out }
                    }
                    None => {
                        // Dictionaries diverge: re-intern in row order so the
                        // dictionary comes out in serial first-seen order.
                        let mut col = Column::new(DataType::Str);
                        for p in parts {
                            for i in 0..p.len() {
                                col.push(p.get(i)).expect("str into str column");
                            }
                        }
                        col
                    }
                }
            }
        }
    }

    /// Direct access to the i64 data (optimized kernels).
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Direct access to the f64 data (optimized kernels).
    pub fn as_float(&self) -> Option<&[f64]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Direct access to dictionary codes (optimized kernels).
    pub fn as_str_codes(&self) -> Option<(&[String], &[u32])> {
        match self {
            Column::Str { dict, codes } => Some((dict.values(), codes)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(7)).unwrap();
        c.push(Value::Int(-3)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Value::Int(7));
        assert_eq!(c.get(1), Value::Int(-3));
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut c = Column::new(DataType::Float);
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.get(0), Value::Float(2.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::new(DataType::Int);
        let err = c.push(Value::Str("x".into())).unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch(_)));
        assert!(c.is_empty());
    }

    #[test]
    fn string_dictionary_dedups() {
        let mut c = Column::new(DataType::Str);
        for s in ["ASIA", "EUROPE", "ASIA", "ASIA", "AFRICA"] {
            c.push(Value::Str(s.into())).unwrap();
        }
        assert_eq!(c.len(), 5);
        assert_eq!(c.distinct_count(), 3);
        assert_eq!(c.get(2), Value::Str("ASIA".into()));
        if let Column::Str { dict, .. } = &c {
            assert_eq!(dict.values().len(), 3);
            assert_eq!(dict.code_of("ASIA"), Some(0));
            assert_eq!(dict.code_of("MARS"), None);
        } else {
            unreachable!()
        }
    }

    #[test]
    fn distinct_counts() {
        let mut i = Column::new(DataType::Int);
        for v in [1, 2, 2, 3, 3, 3] {
            i.push(Value::Int(v)).unwrap();
        }
        assert_eq!(i.distinct_count(), 3);
        let mut b = Column::new(DataType::Bool);
        b.push(Value::Bool(true)).unwrap();
        assert_eq!(b.distinct_count(), 1);
        b.push(Value::Bool(false)).unwrap();
        assert_eq!(b.distinct_count(), 2);
    }

    #[test]
    fn take_selects_in_order() {
        let mut c = Column::new(DataType::Int);
        for v in [10, 20, 30, 40] {
            c.push(Value::Int(v)).unwrap();
        }
        let t = c.take(&[3, 1]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0), Value::Int(40));
        assert_eq!(t.get(1), Value::Int(20));
    }

    #[test]
    fn take_on_strings_keeps_dictionary() {
        let mut c = Column::new(DataType::Str);
        for s in ["a", "b", "c"] {
            c.push(Value::Str(s.into())).unwrap();
        }
        let t = c.take(&[2, 0]);
        assert_eq!(t.get(0), Value::Str("c".into()));
        assert_eq!(t.get(1), Value::Str("a".into()));
    }

    #[test]
    fn clone_charges_the_byte_counter() {
        let mut c = Column::new(DataType::Int);
        for v in 0..10 {
            c.push(Value::Int(v)).unwrap();
        }
        let before = cloned_bytes();
        let _copy = c.clone();
        assert_eq!(cloned_bytes() - before, 80, "10 i64s = 80 bytes");
    }

    #[test]
    fn concat_matches_serial_order() {
        let mut a = Column::new(DataType::Int);
        let mut b = Column::new(DataType::Int);
        for v in [1, 2] {
            a.push(Value::Int(v)).unwrap();
        }
        for v in [3, 4, 5] {
            b.push(Value::Int(v)).unwrap();
        }
        let c = Column::concat(DataType::Int, &[&a, &b]);
        assert_eq!(c.as_int(), Some(&[1, 2, 3, 4, 5][..]));
    }

    #[test]
    fn concat_str_shared_dictionary_keeps_codes() {
        let mut base = Column::new(DataType::Str);
        for s in ["x", "y", "x"] {
            base.push(Value::Str(s.into())).unwrap();
        }
        let a = base.take(&[0, 1]);
        let b = base.take(&[2]);
        let c = Column::concat(DataType::Str, &[&a, &b]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Str("x".into()));
        assert_eq!(c.get(1), Value::Str("y".into()));
        assert_eq!(c.get(2), Value::Str("x".into()));
    }

    #[test]
    fn concat_str_divergent_dictionaries_reintern_in_row_order() {
        let mut a = Column::new(DataType::Str);
        let mut b = Column::new(DataType::Str);
        a.push(Value::Str("p".into())).unwrap();
        b.push(Value::Str("q".into())).unwrap();
        b.push(Value::Str("p".into())).unwrap();
        let c = Column::concat(DataType::Str, &[&a, &b]);
        if let Column::Str { dict, .. } = &c {
            assert_eq!(dict.values(), &["p".to_owned(), "q".to_owned()][..]);
        } else {
            unreachable!()
        }
        assert_eq!(c.get(2), Value::Str("p".into()));
    }

    #[test]
    fn concat_empty_parts() {
        let c = Column::concat(DataType::Float, &[]);
        assert!(c.is_empty());
        let c = Column::concat(DataType::Str, &[&Column::new(DataType::Str)]);
        assert!(c.is_empty());
    }

    #[test]
    fn typed_accessors() {
        let mut c = Column::new(DataType::Float);
        c.push(Value::Float(1.5)).unwrap();
        assert_eq!(c.as_float(), Some(&[1.5][..]));
        assert!(c.as_int().is_none());
        assert_eq!(c.value_bytes(), 8);
        let s = Column::new(DataType::Str);
        assert_eq!(s.value_bytes(), 4);
    }
}
