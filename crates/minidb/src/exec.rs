//! Plan execution: two engines, one plan language.
//!
//! The "Of apples and oranges" war story (slides 37–45) is about comparing a
//! debug build against an optimized build without knowing it. `minidb` makes
//! that axis explicit:
//!
//! * [`ExecMode::Debug`] — a row-at-a-time interpreter: every value is boxed
//!   into a [`Value`], every row materialized, invariants re-checked per row
//!   (the `--enable-debug --enable-assert` build).
//! * [`ExecMode::Optimized`] — a column-at-a-time engine with
//!   type-specialized kernels, selection vectors, and dictionary-code
//!   comparisons (the `-O6` build).
//!
//! Both produce identical results (tested); they differ only in speed — by
//! roughly the factor the tutorial's DBG/OPT figure shows, growing with how
//! much tight-loop work the query does.
//!
//! The executor also produces the per-operator **profile trace** of
//! experiment E12 (slide 54): exclusive time and output cardinality per
//! plan node.

use crate::catalog::Catalog;
use crate::column::Column;
use crate::error::DbError;
use crate::expr::{AggFunc, BinOp, Expr};
use crate::kernels::{self, Cmp, Engine, Sel};
use crate::plan::Plan;
use crate::types::{DataType, Value};
use memsim::BufferPool;
use perfeval_trace::Tracer;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Which engine executes the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Row-at-a-time interpreter with per-row checks (a "debug build").
    Debug,
    /// Vectorized column-at-a-time engine (an "optimized build").
    #[default]
    Optimized,
    /// The optimized engine with the explicit chunked SIMD kernels from
    /// [`crate::kernels`]: same operators, same selection vectors, same
    /// results bit-for-bit — only the inner loops differ.
    Simd,
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecMode::Debug => "DBG",
            ExecMode::Optimized => "OPT",
            ExecMode::Simd => "SIMD",
        })
    }
}

impl std::str::FromStr for ExecMode {
    type Err = String;

    /// Parses the display names (`DBG`/`OPT`/`SIMD`, case-insensitive) —
    /// the engine level as experiment configs and CLIs spell it.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "DBG" | "DEBUG" => Ok(ExecMode::Debug),
            "OPT" | "OPTIMIZED" => Ok(ExecMode::Optimized),
            "SIMD" => Ok(ExecMode::Simd),
            other => Err(format!("unknown engine '{other}' (DBG|OPT|SIMD)")),
        }
    }
}

/// A materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub column_names: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Approximate rendered size in bytes (drives the sink-cost experiment).
    pub fn rendered_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(|v| v.render().len() + 1).sum::<usize>())
            .sum()
    }
}

/// One line of the PROFILE trace.
#[derive(Debug, Clone)]
pub struct ProfileEntry {
    /// Operator label, e.g. "Scan lineitem".
    pub op: String,
    /// Depth in the plan tree (0 = root).
    pub depth: usize,
    /// Time spent in this operator excluding its children, ms. For
    /// morsel-parallel operators this is CPU time summed across workers,
    /// so it can exceed the node's wall-clock share.
    pub exclusive_ms: f64,
    /// Rows this operator produced.
    pub rows_out: usize,
    /// Free-form annotation, e.g. the hash join's build-side choice.
    pub note: Option<String>,
}

/// Renders a profile trace the way `TRACE` output looks.
pub fn render_profile(entries: &[ProfileEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&format!(
            "{:>10.3} ms {:>10} rows  {}{}{}\n",
            e.exclusive_ms,
            e.rows_out,
            "  ".repeat(e.depth),
            e.op,
            e.note
                .as_deref()
                .map(|n| format!("  [{n}]"))
                .unwrap_or_default(),
        ));
    }
    out
}

/// Rewrites a post-order operator trace (children before parents, as
/// execution completes them) into the root-first pre-order the `TRACE`
/// output uses. One O(n) pass replaces the old per-node
/// `Vec::insert`-with-linear-scan, which was O(n²) in plan size.
fn profile_post_to_pre(post: &mut Vec<ProfileEntry>) -> Vec<ProfileEntry> {
    fn take_subtree(post: &mut Vec<ProfileEntry>) -> Vec<ProfileEntry> {
        let node = post.pop().expect("non-empty subtree");
        let depth = node.depth;
        // Child subtrees sit on top of the stack in reverse completion
        // order; peel them off, then emit left-to-right.
        let mut kids = Vec::new();
        while post.last().is_some_and(|e| e.depth > depth) {
            kids.push(take_subtree(post));
        }
        let mut out = vec![node];
        for k in kids.into_iter().rev() {
            out.extend(k);
        }
        out
    }
    let mut roots = Vec::new();
    while !post.is_empty() {
        roots.push(take_subtree(post));
    }
    let mut pre = Vec::new();
    for r in roots.into_iter().rev() {
        pre.extend(r);
    }
    pre
}

/// Executes plans against a catalog.
pub struct Executor<'a> {
    pub(crate) catalog: &'a Catalog,
    mode: ExecMode,
    pub(crate) pool: Option<&'a mut BufferPool>,
    pub(crate) tracer: Option<&'a Tracer>,
    pub(crate) profile: Vec<ProfileEntry>,
    /// Morsel parallelism for the optimized engine: worker threads and
    /// morsel granularity. `threads <= 1` is the serial engine.
    pub(crate) parallel: ParallelConfig,
    /// Note attached to the next profile entry the executor emits (set by
    /// operators that make a recorded choice, e.g. join build side).
    pub(crate) pending_note: Option<String>,
    /// Cooperative cancellation, polled at operator and morsel
    /// boundaries. `None` (the default) costs nothing on the hot path.
    pub(crate) cancel: Option<crate::cancel::CancelToken>,
}

/// Morsel-parallelism knobs for the optimized engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads; `<= 1` runs serially.
    pub threads: usize,
    /// Rows per morsel (fixed-size row ranges over the input).
    pub morsel_rows: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }
}

/// Default rows per morsel: large enough that per-morsel dispatch cost
/// vanishes, small enough that a few hundred thousand rows split across
/// every worker.
pub const DEFAULT_MORSEL_ROWS: usize = 16_384;

/// The operator label a plan node gets in both the profile trace and the
/// per-operator spans — one naming scheme for every observability surface.
pub fn plan_label(plan: &Plan) -> String {
    match plan {
        Plan::Scan { table, .. } => format!("Scan {table}"),
        Plan::Filter { .. } => "Filter".to_owned(),
        Plan::Project { .. } => "Project".to_owned(),
        Plan::Join { .. } => "HashJoin".to_owned(),
        Plan::Aggregate { .. } => "HashAggregate".to_owned(),
        Plan::Sort { .. } => "Sort".to_owned(),
        Plan::Limit { n, .. } => format!("Limit {n}"),
        Plan::Distinct { .. } => "Distinct".to_owned(),
        Plan::TopN { n, .. } => format!("TopN {n}"),
    }
}

/// A columnar batch flowing between optimized operators.
///
/// Columns are shared by `Arc`: a scan batch holds the base table's own
/// columns (zero-copy), and operators that merely reorder references
/// (identity projections) clone handles, not data.
pub(crate) struct Batch {
    pub(crate) names: Vec<String>,
    pub(crate) cols: Vec<Arc<Column>>,
}

impl Batch {
    pub(crate) fn row_count(&self) -> usize {
        self.cols.first().map_or(0, |c| c.len())
    }

    pub(crate) fn schema(&self) -> Vec<(String, DataType)> {
        self.names
            .iter()
            .cloned()
            .zip(self.cols.iter().map(|c| c.data_type()))
            .collect()
    }

    pub(crate) fn take(&self, selection: &[usize]) -> Batch {
        Batch {
            names: self.names.clone(),
            cols: self
                .cols
                .iter()
                .map(|c| Arc::new(c.take(selection)))
                .collect(),
        }
    }
}

/// Hashable key for joins and group-by (SQL NULL never matches, so keys are
/// only built from non-null values).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum Key {
    I(i64),
    F(u64),
    S(String),
    B(bool),
}

pub(crate) fn value_key(v: &Value) -> Option<Key> {
    match v {
        Value::Int(i) => Some(Key::I(*i)),
        Value::Float(f) => Some(Key::F(f.to_bits())),
        Value::Str(s) => Some(Key::S(s.clone())),
        Value::Bool(b) => Some(Key::B(*b)),
        Value::Null => None,
    }
}

/// Typed aggregate accumulator.
///
/// Engine semantics for aggregates over an *empty* input differ from
/// strict SQL on purpose: the engine's columns are NULL-free by design, so
/// empty SUM/AVG/MIN/MAX return the zero of their type instead of NULL
/// (COUNT returns 0 either way). Both engines implement the same rule,
/// which keeps their outputs bit-identical — a property the test suite
/// checks exhaustively.
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Sum {
        acc: f64,
        is_int: bool,
    },
    Count(i64),
    CountDistinct(std::collections::HashSet<Key>),
    Avg {
        sum: f64,
        n: i64,
    },
    Min {
        slot: Option<Value>,
        arg_type: DataType,
    },
    Max {
        slot: Option<Value>,
        arg_type: DataType,
    },
}

/// The typed zero an empty aggregate yields.
fn type_zero(dt: DataType) -> Value {
    match dt {
        DataType::Int => Value::Int(0),
        DataType::Float => Value::Float(0.0),
        DataType::Str => Value::Str(String::new()),
        DataType::Bool => Value::Bool(false),
    }
}

impl AggState {
    pub(crate) fn new(func: AggFunc, arg_type: DataType) -> AggState {
        match func {
            AggFunc::Sum => AggState::Sum {
                acc: 0.0,
                is_int: arg_type == DataType::Int,
            },
            AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::CountDistinct(std::collections::HashSet::new()),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AggState::Min {
                slot: None,
                arg_type,
            },
            AggFunc::Max => AggState::Max {
                slot: None,
                arg_type,
            },
        }
    }

    /// Typed update straight off a column — bitwise the same accumulation
    /// as `update(&col.get(i))` (same f64 additions in the same order)
    /// without boxing a [`Value`] per row. Used by both the serial and the
    /// morsel-parallel aggregation paths, which keeps them bit-identical.
    pub(crate) fn update_from_col(&mut self, col: &Column, i: usize) {
        match (self, col) {
            (AggState::Sum { acc, .. }, Column::Int(v)) => *acc += v[i] as f64,
            (AggState::Sum { acc, .. }, Column::Float(v)) => *acc += v[i],
            (AggState::Avg { sum, n }, Column::Int(v)) => {
                *sum += v[i] as f64;
                *n += 1;
            }
            (AggState::Avg { sum, n }, Column::Float(v)) => {
                *sum += v[i];
                *n += 1;
            }
            // Columns are NULL-free, so COUNT counts every row.
            (AggState::Count(n), _) => *n += 1,
            (state, col) => state.update(&col.get(i)),
        }
    }

    /// Folds an entire column into this accumulator with the lane kernels,
    /// returning `false` when no kernel can prove bit-identity with the
    /// serial per-row fold (the caller must then replay `update_from_col`).
    ///
    /// Only integer folds qualify: `sum_i64_exact` proves every serial f64
    /// prefix sum exact before answering, COUNT is order-free, and integer
    /// MIN/MAX are order-free. Float folds always return `false` — f64
    /// addition is non-associative and the engine's contract is bitwise
    /// equality, not approximate equality.
    pub(crate) fn update_bulk(&mut self, col: &Column) -> bool {
        match (&mut *self, col) {
            (AggState::Sum { acc, .. }, Column::Int(v)) => match kernels::sum_i64_exact(v) {
                Some(total) => {
                    *acc += total as f64;
                    true
                }
                None => false,
            },
            (AggState::Avg { sum, n }, Column::Int(v)) => match kernels::sum_i64_exact(v) {
                Some(total) => {
                    *sum += total as f64;
                    *n += v.len() as i64;
                    true
                }
                None => false,
            },
            // Columns are NULL-free, so COUNT counts every row.
            (AggState::Count(n), col) => {
                *n += col.len() as i64;
                true
            }
            (AggState::Min { slot, .. }, Column::Int(v)) => {
                if let Some(m) = kernels::min_i64(v) {
                    let replace = match slot {
                        None => true,
                        Some(Value::Int(cur)) => m < *cur,
                        Some(_) => false,
                    };
                    if replace {
                        *slot = Some(Value::Int(m));
                    }
                }
                true
            }
            (AggState::Max { slot, .. }, Column::Int(v)) => {
                if let Some(m) = kernels::max_i64(v) {
                    let replace = match slot {
                        None => true,
                        Some(Value::Int(cur)) => m > *cur,
                        Some(_) => false,
                    };
                    if replace {
                        *slot = Some(Value::Int(m));
                    }
                }
                true
            }
            _ => false,
        }
    }

    pub(crate) fn update(&mut self, v: &Value) {
        if matches!(v, Value::Null) {
            return; // SQL aggregates skip NULLs
        }
        match self {
            AggState::Sum { acc, .. } => {
                if let Some(f) = v.as_f64() {
                    *acc += f;
                }
            }
            AggState::Count(n) => *n += 1,
            AggState::CountDistinct(set) => {
                if let Some(k) = value_key(v) {
                    set.insert(k);
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(f) = v.as_f64() {
                    *sum += f;
                    *n += 1;
                }
            }
            AggState::Min { slot, .. } => {
                let replace = match slot {
                    None => true,
                    Some(cur) => matches!(v.sql_cmp(cur), Some(std::cmp::Ordering::Less)),
                };
                if replace {
                    *slot = Some(v.clone());
                }
            }
            AggState::Max { slot, .. } => {
                let replace = match slot {
                    None => true,
                    Some(cur) => matches!(v.sql_cmp(cur), Some(std::cmp::Ordering::Greater)),
                };
                if replace {
                    *slot = Some(v.clone());
                }
            }
        }
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            AggState::Sum { acc, is_int } => {
                if is_int {
                    Value::Int(acc as i64)
                } else {
                    Value::Float(acc)
                }
            }
            AggState::Count(n) => Value::Int(n),
            AggState::CountDistinct(set) => Value::Int(set.len() as i64),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Float(0.0)
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggState::Min { slot, arg_type } | AggState::Max { slot, arg_type } => {
                slot.unwrap_or_else(|| type_zero(arg_type))
            }
        }
    }
}

impl<'a> Executor<'a> {
    /// Creates an executor.
    pub fn new(catalog: &'a Catalog, mode: ExecMode) -> Self {
        Executor {
            catalog,
            mode,
            pool: None,
            tracer: None,
            profile: Vec::new(),
            parallel: ParallelConfig::default(),
            pending_note: None,
            cancel: None,
        }
    }

    /// Attaches a cancellation token: the executor polls it at every
    /// operator boundary (both engines) and at every morsel boundary
    /// (the parallel paths), unwinding with [`DbError::Cancelled`] so a
    /// cancelled query frees its threads within one morsel of work.
    pub fn with_cancel(mut self, token: crate::cancel::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The cancellation poll; a no-op unless a token is attached.
    #[inline]
    pub(crate) fn check_cancel(&self) -> Result<(), DbError> {
        match &self.cancel {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }

    /// Sets the worker-thread count for the optimized engine's
    /// morsel-driven operators. `n <= 1` (the default) runs serially;
    /// results are bit-identical either way. The debug engine ignores the
    /// knob — a "debug build" stays single-threaded by design.
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallel.threads = n.max(1);
        self
    }

    /// Sets the morsel granularity (rows per morsel) used when
    /// parallelism is enabled.
    ///
    /// # Panics
    /// Panics if `rows` is zero.
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        assert!(rows > 0, "morsel size must be positive");
        self.parallel.morsel_rows = rows;
        self
    }

    /// Attaches a buffer pool: scans will charge page reads through it.
    pub fn with_pool(mut self, pool: &'a mut BufferPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attaches a tracer: every operator records a span (nested like the
    /// plan tree), with row counts and buffer-pool hit/miss deltas as
    /// attributes.
    pub fn with_tracer(mut self, tracer: &'a Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Runs the plan to a materialized result.
    pub fn run(&mut self, plan: &Plan) -> Result<ResultSet, DbError> {
        self.profile.clear();
        let result = match self.mode {
            ExecMode::Debug => {
                let (schema, rows) = self.run_rows(plan, 0)?;
                ResultSet {
                    column_names: schema.into_iter().map(|(n, _)| n).collect(),
                    rows,
                }
            }
            ExecMode::Optimized | ExecMode::Simd => {
                let batch = self.run_batch(plan, 0)?;
                let rows = (0..batch.row_count())
                    .map(|i| batch.cols.iter().map(|c| c.get(i)).collect())
                    .collect();
                ResultSet {
                    column_names: batch.names,
                    rows,
                }
            }
        };
        // Entries were appended post-order (O(1) per node); flip to the
        // root-first order the profile API exposes.
        self.profile = profile_post_to_pre(&mut self.profile);
        Ok(result)
    }

    /// The profile trace of the last `run` (root first).
    pub fn profile(&self) -> &[ProfileEntry] {
        &self.profile
    }

    /// The kernel tier the batch engine dispatches (`Scalar` for OPT,
    /// `Simd` for the SIMD mode). The debug engine never reaches kernels.
    pub(crate) fn engine(&self) -> Engine {
        match self.mode {
            ExecMode::Simd => Engine::Simd,
            _ => Engine::Scalar,
        }
    }

    pub(crate) fn charge_scan(&mut self, table: &str) -> Result<(), DbError> {
        if let Some(pool) = self.pool.as_deref_mut() {
            let file = self.catalog.file_id(table)?;
            let t = self.catalog.table(table)?;
            let pages = t.page_count(8192);
            for p in 0..pages {
                pool.read((file, p));
            }
        }
        Ok(())
    }

    /// Current `(logical_reads, physical_reads)` for scan span attrs.
    ///
    /// Prefers the *real* storage pool of a disk-backed catalog; falls
    /// back to the modeled `memsim` pool. Never mixes the two.
    pub(crate) fn io_counters(&self) -> Option<(u64, u64)> {
        if let Some(store) = self.catalog.storage() {
            let c = store.counters();
            return Some((c.logical_reads, c.physical_reads));
        }
        self.pool
            .as_deref()
            .map(|p| (p.logical_reads(), p.physical_reads()))
    }

    // ----------------------------------------------------------------
    // Debug engine: row-at-a-time with per-row checks.
    // ----------------------------------------------------------------

    #[allow(clippy::type_complexity)]
    fn run_rows(
        &mut self,
        plan: &Plan,
        depth: usize,
    ) -> Result<(Vec<(String, DataType)>, Vec<Vec<Value>>), DbError> {
        self.check_cancel()?;
        let start = Instant::now();
        let label = plan_label(plan);
        let pool_before = match plan {
            Plan::Scan { .. } => self.io_counters(),
            _ => None,
        };
        let mut span = self.tracer.map(|t| t.span(&label));
        let result: (Vec<(String, DataType)>, Vec<Vec<Value>>);
        let mut child_ms = 0.0;
        match plan {
            Plan::Scan { table, projection } => {
                self.charge_scan(table)?;
                let t = self.catalog.table(table)?;
                let schema = plan.schema(self.catalog)?;
                let n = t.row_count();
                // Fetch columns once (disk-backed tables do real I/O
                // here), then materialize row-at-a-time as before.
                let cols: Vec<Arc<Column>> = match projection {
                    None => (0..t.column_count())
                        .map(|i| t.column_arc_io(i))
                        .collect::<Result<_, DbError>>()?,
                    Some(idxs) => idxs
                        .iter()
                        .map(|&c| t.column_arc_io(c))
                        .collect::<Result<_, DbError>>()?,
                };
                let mut rows = Vec::with_capacity(n);
                for i in 0..n {
                    // Debug build: materialize and re-verify every row.
                    let row: Vec<Value> = cols.iter().map(|c| c.get(i)).collect();
                    assert_eq!(row.len(), schema.len(), "row arity invariant");
                    for (v, (_, dt)) in row.iter().zip(&schema) {
                        if let Some(vt) = v.data_type() {
                            assert_eq!(vt, *dt, "column type invariant");
                        }
                    }
                    rows.push(row);
                }
                result = (schema, rows);
            }
            Plan::Filter { input, predicate } => {
                let c0 = Instant::now();
                let (schema, rows) = self.run_rows(input, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                let bound = predicate.bind(&schema)?;
                let mut kept = Vec::new();
                for row in rows {
                    if bound.eval(&row)? == Value::Bool(true) {
                        kept.push(row);
                    }
                }
                result = (schema, kept);
            }
            Plan::Project { input, exprs } => {
                let c0 = Instant::now();
                let (schema, rows) = self.run_rows(input, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                let bound: Vec<(Expr, String)> = exprs
                    .iter()
                    .map(|(e, n)| Ok((e.bind(&schema)?, n.clone())))
                    .collect::<Result<_, DbError>>()?;
                let out_schema: Vec<(String, DataType)> = exprs
                    .iter()
                    .map(|(e, n)| Ok((n.clone(), e.data_type(&schema)?)))
                    .collect::<Result<_, DbError>>()?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut new_row = Vec::with_capacity(bound.len());
                    for (e, _) in &bound {
                        new_row.push(e.eval(&row)?);
                    }
                    out.push(new_row);
                }
                result = (out_schema, out);
            }
            Plan::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                let c0 = Instant::now();
                let (ls, lrows) = self.run_rows(left, depth + 1)?;
                let (rs, rrows) = self.run_rows(right, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                let (lk, rk) = bind_join_keys(left_key, right_key, &ls, &rs)?;
                // Build on the left.
                let mut build: HashMap<Key, Vec<usize>> = HashMap::new();
                for (i, row) in lrows.iter().enumerate() {
                    if let Some(k) = value_key(&lk.eval(row)?) {
                        build.entry(k).or_default().push(i);
                    }
                }
                let mut out = Vec::new();
                for rrow in &rrows {
                    if let Some(k) = value_key(&rk.eval(rrow)?) {
                        if let Some(matches) = build.get(&k) {
                            for &li in matches {
                                let mut joined = lrows[li].clone();
                                joined.extend(rrow.iter().cloned());
                                out.push(joined);
                            }
                        }
                    }
                }
                let mut schema = ls;
                schema.extend(rs);
                result = (schema, out);
            }
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let c0 = Instant::now();
                let (schema, rows) = self.run_rows(input, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                let bound_groups: Vec<Expr> = group_by
                    .iter()
                    .map(|(e, _)| e.bind(&schema))
                    .collect::<Result<_, _>>()?;
                let bound_aggs: Vec<(AggFunc, Expr, DataType)> = aggregates
                    .iter()
                    .map(|(f, e, _)| {
                        let b = e.bind(&schema)?;
                        let dt = e.data_type(&schema)?;
                        Ok((*f, b, dt))
                    })
                    .collect::<Result<_, DbError>>()?;
                let mut groups: HashMap<Vec<Key>, (Vec<Value>, Vec<AggState>)> = HashMap::new();
                for row in &rows {
                    let mut key = Vec::with_capacity(bound_groups.len());
                    let mut key_vals = Vec::with_capacity(bound_groups.len());
                    let mut has_null = false;
                    for g in &bound_groups {
                        let v = g.eval(row)?;
                        match value_key(&v) {
                            Some(k) => key.push(k),
                            None => has_null = true,
                        }
                        key_vals.push(v);
                    }
                    if has_null {
                        continue; // groups with NULL keys are dropped (no NULLs in base data)
                    }
                    let entry = groups.entry(key).or_insert_with(|| {
                        (
                            key_vals.clone(),
                            bound_aggs
                                .iter()
                                .map(|(f, _, dt)| AggState::new(*f, *dt))
                                .collect(),
                        )
                    });
                    for ((_, e, _), state) in bound_aggs.iter().zip(&mut entry.1) {
                        state.update(&e.eval(row)?);
                    }
                }
                // Global aggregate over empty input still yields one row.
                if groups.is_empty() && bound_groups.is_empty() {
                    groups.insert(
                        Vec::new(),
                        (
                            Vec::new(),
                            bound_aggs
                                .iter()
                                .map(|(f, _, dt)| AggState::new(*f, *dt))
                                .collect(),
                        ),
                    );
                }
                let out_schema = plan.schema(self.catalog)?;
                let mut out: Vec<Vec<Value>> = groups
                    .into_values()
                    .map(|(mut key_vals, states)| {
                        key_vals.extend(states.into_iter().map(AggState::finish));
                        key_vals
                    })
                    .collect();
                // Deterministic output order (hash maps are not).
                out.sort_by(|a, b| compare_rows(a, b));
                result = (out_schema, out);
            }
            Plan::Sort { input, keys } => {
                let c0 = Instant::now();
                let (schema, mut rows) = self.run_rows(input, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                let bound: Vec<(Expr, bool)> = keys
                    .iter()
                    .map(|(e, d)| Ok((e.bind(&schema)?, *d)))
                    .collect::<Result<_, DbError>>()?;
                let mut err = None;
                rows.sort_by(|a, b| {
                    for (e, desc) in &bound {
                        let va = match e.eval(a) {
                            Ok(v) => v,
                            Err(x) => {
                                err.get_or_insert(x);
                                return std::cmp::Ordering::Equal;
                            }
                        };
                        let vb = match e.eval(b) {
                            Ok(v) => v,
                            Err(x) => {
                                err.get_or_insert(x);
                                return std::cmp::Ordering::Equal;
                            }
                        };
                        let ord = va.sql_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal);
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                if let Some(e) = err {
                    return Err(e);
                }
                result = (schema, rows);
            }
            Plan::Limit { input, n } => {
                let c0 = Instant::now();
                let (schema, mut rows) = self.run_rows(input, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                rows.truncate(*n);
                result = (schema, rows);
            }
            Plan::Distinct { input } => {
                let c0 = Instant::now();
                let (schema, rows) = self.run_rows(input, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                let mut seen = std::collections::HashSet::new();
                let mut kept = Vec::new();
                for row in rows {
                    let key: Vec<Option<Key>> = row.iter().map(value_key).collect();
                    if seen.insert(key) {
                        kept.push(row);
                    }
                }
                result = (schema, kept);
            }
            Plan::TopN { input, keys, n } => {
                let c0 = Instant::now();
                let (schema, rows) = self.run_rows(input, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                let bound: Vec<(Expr, bool)> = keys
                    .iter()
                    .map(|(e, d)| Ok((e.bind(&schema)?, *d)))
                    .collect::<Result<_, DbError>>()?;
                // Precompute key values per row so comparisons are cheap.
                let mut best: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(n + 1);
                for row in rows {
                    let mut key_vals = Vec::with_capacity(bound.len());
                    for (e, _) in &bound {
                        key_vals.push(e.eval(&row)?);
                    }
                    bounded_insert(&mut best, (key_vals, row), *n, |a, b| {
                        compare_keyed(&a.0, &b.0, &bound)
                    });
                }
                result = (schema, best.into_iter().map(|(_, row)| row).collect());
            }
        }
        let total_ms = start.elapsed().as_secs_f64() * 1e3;
        let entry_rows = result.1.len();
        if let Some(g) = span.as_mut() {
            g.attr("rows_out", entry_rows);
            if let (Some((l0, p0)), Some((l1, p1))) = (pool_before, self.io_counters()) {
                let logical = l1.saturating_sub(l0);
                let physical = p1.saturating_sub(p0);
                g.attr("pool_hits", logical.saturating_sub(physical))
                    .attr("pool_misses", physical);
            }
        }
        drop(span);
        // Post-order append: children recorded themselves first; `run`
        // flips the whole trace to root-first in one pass at the end.
        self.profile.push(ProfileEntry {
            op: label,
            depth,
            exclusive_ms: (total_ms - child_ms).max(0.0),
            rows_out: entry_rows,
            note: self.pending_note.take(),
        });
        Ok(result)
    }

    // ----------------------------------------------------------------
    // Optimized engine: column-at-a-time with selection vectors.
    // ----------------------------------------------------------------

    pub(crate) fn run_batch(&mut self, plan: &Plan, depth: usize) -> Result<Batch, DbError> {
        self.check_cancel()?;
        // Morsel-driven parallel operators take over eligible subtrees
        // (scan→filter→project pipelines, aggregates, join probes) when
        // parallelism is enabled and the input is big enough to split.
        if self.parallel.threads > 1 {
            if let Some(batch) = crate::parallel::try_parallel(self, plan, depth)? {
                return Ok(batch);
            }
        }
        let start = Instant::now();
        let label = plan_label(plan);
        let pool_before = match plan {
            Plan::Scan { .. } => self.io_counters(),
            _ => None,
        };
        let mut span = self.tracer.map(|t| t.span(&label));
        let mut child_ms = 0.0;
        let batch = match plan {
            Plan::Scan { table, projection } => {
                self.charge_scan(table)?;
                let t = self.catalog.table(table)?;
                // Zero-copy: the batch shares the table's columns by Arc
                // (disk-backed tables fetch through the buffer pool —
                // still an Arc clone once resident).
                let (names, cols): (Vec<String>, Vec<Arc<Column>>) = match projection {
                    None => (
                        t.column_names().to_vec(),
                        (0..t.column_count())
                            .map(|i| t.column_arc_io(i))
                            .collect::<Result<_, DbError>>()?,
                    ),
                    Some(idxs) => (
                        idxs.iter().map(|&i| t.column_names()[i].clone()).collect(),
                        idxs.iter()
                            .map(|&i| t.column_arc_io(i))
                            .collect::<Result<_, DbError>>()?,
                    ),
                };
                Batch { names, cols }
            }
            Plan::Filter { input, predicate } => {
                let c0 = Instant::now();
                let input_batch = self.run_batch(input, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                let schema = input_batch.schema();
                let bound = predicate.bind(&schema)?;
                let selection = vectorized_filter(&input_batch, &bound, self.engine())?;
                input_batch.take(&selection)
            }
            Plan::Project { input, exprs } => {
                let c0 = Instant::now();
                let input_batch = self.run_batch(input, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                let schema = input_batch.schema();
                let mut names = Vec::with_capacity(exprs.len());
                let mut cols = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    let bound = e.bind(&schema)?;
                    cols.push(vectorized_eval(&input_batch, &bound, &schema)?);
                    names.push(name.clone());
                }
                Batch { names, cols }
            }
            Plan::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                let c0 = Instant::now();
                let lb = self.run_batch(left, depth + 1)?;
                let rb = self.run_batch(right, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                let ls = lb.schema();
                let rs = rb.schema();
                let (lk, rk) = bind_join_keys(left_key, right_key, &ls, &rs)?;
                let lkey_col = vectorized_eval(&lb, &lk, &ls)?;
                let rkey_col = vectorized_eval(&rb, &rk, &rs)?;
                let (lsel, rsel, side) = hash_join_selections(&lkey_col, &rkey_col, self.engine());
                if let Some(g) = span.as_mut() {
                    g.attr("build_side", side.label());
                }
                self.pending_note = Some(format!("build={}", side.label()));
                let lout = lb.take(&lsel);
                let rout = rb.take(&rsel);
                let mut names = lout.names;
                names.extend(rout.names);
                let mut cols = lout.cols;
                cols.extend(rout.cols);
                Batch { names, cols }
            }
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let c0 = Instant::now();
                let input_batch = self.run_batch(input, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                vectorized_aggregate(
                    self.catalog,
                    plan,
                    &input_batch,
                    group_by,
                    aggregates,
                    self.engine(),
                )?
            }
            Plan::Sort { input, keys } => {
                let c0 = Instant::now();
                let input_batch = self.run_batch(input, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                let schema = input_batch.schema();
                let bound: Vec<(Expr, bool)> = keys
                    .iter()
                    .map(|(e, d)| Ok((e.bind(&schema)?, *d)))
                    .collect::<Result<_, DbError>>()?;
                let key_cols: Vec<(Arc<Column>, bool)> = bound
                    .iter()
                    .map(|(e, d)| Ok((vectorized_eval(&input_batch, e, &schema)?, *d)))
                    .collect::<Result<_, DbError>>()?;
                let mut perm: Vec<usize> = (0..input_batch.row_count()).collect();
                perm.sort_by(|&a, &b| {
                    for (col, desc) in &key_cols {
                        let ord = col
                            .get(a)
                            .sql_cmp(&col.get(b))
                            .unwrap_or(std::cmp::Ordering::Equal);
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                input_batch.take(&perm)
            }
            Plan::Limit { input, n } => {
                let c0 = Instant::now();
                let input_batch = self.run_batch(input, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                let keep: Vec<usize> = (0..input_batch.row_count().min(*n)).collect();
                input_batch.take(&keep)
            }
            Plan::Distinct { input } => {
                let c0 = Instant::now();
                let input_batch = self.run_batch(input, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                let mut seen = std::collections::HashSet::new();
                let mut selection = Vec::new();
                for i in 0..input_batch.row_count() {
                    let key: Vec<Option<Key>> = input_batch
                        .cols
                        .iter()
                        .map(|c| value_key(&c.get(i)))
                        .collect();
                    if seen.insert(key) {
                        selection.push(i);
                    }
                }
                input_batch.take(&selection)
            }
            Plan::TopN { input, keys, n } => {
                let c0 = Instant::now();
                let input_batch = self.run_batch(input, depth + 1)?;
                child_ms = c0.elapsed().as_secs_f64() * 1e3;
                let schema = input_batch.schema();
                let bound: Vec<(Expr, bool)> = keys
                    .iter()
                    .map(|(e, d)| Ok((e.bind(&schema)?, *d)))
                    .collect::<Result<_, DbError>>()?;
                let key_cols: Vec<(Arc<Column>, bool)> = bound
                    .iter()
                    .map(|(e, d)| Ok((vectorized_eval(&input_batch, e, &schema)?, *d)))
                    .collect::<Result<_, DbError>>()?;
                let mut best: Vec<usize> = Vec::with_capacity(n + 1);
                let cmp_rows = |a: usize, b: usize| {
                    for (col, desc) in &key_cols {
                        let ord = col
                            .get(a)
                            .sql_cmp(&col.get(b))
                            .unwrap_or(std::cmp::Ordering::Equal);
                        let ord = if *desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                };
                for i in 0..input_batch.row_count() {
                    bounded_insert(&mut best, i, *n, |&a, &b| cmp_rows(a, b));
                }
                input_batch.take(&best)
            }
        };
        let total_ms = start.elapsed().as_secs_f64() * 1e3;
        let rows_out = batch.row_count();
        if let Some(g) = span.as_mut() {
            g.attr("rows_out", rows_out);
            if let (Some((l0, p0)), Some((l1, p1))) = (pool_before, self.io_counters()) {
                let logical = l1.saturating_sub(l0);
                let physical = p1.saturating_sub(p0);
                g.attr("pool_hits", logical.saturating_sub(physical))
                    .attr("pool_misses", physical);
            }
        }
        drop(span);
        self.profile.push(ProfileEntry {
            op: label,
            depth,
            exclusive_ms: (total_ms - child_ms).max(0.0),
            rows_out,
            note: self.pending_note.take(),
        });
        Ok(batch)
    }
}

/// Binds join keys: each name must resolve in exactly one input; the pair is
/// returned as (left-bound, right-bound).
pub(crate) fn bind_join_keys(
    a: &Expr,
    b: &Expr,
    left: &[(String, DataType)],
    right: &[(String, DataType)],
) -> Result<(Expr, Expr), DbError> {
    let try_bind = |e: &Expr, s: &[(String, DataType)]| e.bind(s).ok();
    match (try_bind(a, left), try_bind(b, right)) {
        (Some(l), Some(r)) => Ok((l, r)),
        _ => match (try_bind(b, left), try_bind(a, right)) {
            (Some(l), Some(r)) => Ok((l, r)),
            _ => Err(DbError::Semantic(
                "join keys do not resolve one per side".into(),
            )),
        },
    }
}

/// Inserts `candidate` into `best` (kept sorted by `cmp`, at most `n`
/// entries) if it beats the current worst — the bounded-selection kernel
/// behind the TopN operator.
fn bounded_insert<T>(
    best: &mut Vec<T>,
    candidate: T,
    n: usize,
    mut cmp: impl FnMut(&T, &T) -> std::cmp::Ordering,
) {
    if n == 0 {
        return;
    }
    // Ties resolve to "existing entry first" (map Equal to Less), which
    // reproduces exactly what a stable sort followed by truncate keeps —
    // so TopN-on and TopN-off plans return identical rows even on ties.
    let pos = best
        .binary_search_by(|probe| match cmp(probe, &candidate) {
            std::cmp::Ordering::Equal => std::cmp::Ordering::Less,
            other => other,
        })
        .unwrap_or_else(|p| p);
    if pos >= n {
        return; // worse than everything we keep
    }
    best.insert(pos, candidate);
    best.truncate(n);
}

/// Compares two precomputed key-value vectors under the given
/// (expression, descending) directions.
fn compare_keyed(a: &[Value], b: &[Value], keys: &[(Expr, bool)]) -> std::cmp::Ordering {
    for ((x, y), (_, desc)) in a.iter().zip(b).zip(keys) {
        let ord = x.sql_cmp(y).unwrap_or(std::cmp::Ordering::Equal);
        let ord = if *desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// SQL-ordering comparison of two rows (used for deterministic aggregate
/// output).
pub(crate) fn compare_rows(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.sql_cmp(y).unwrap_or(std::cmp::Ordering::Equal);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Vectorized predicate evaluation producing a selection vector.
///
/// Fast paths: conjunctions of `column <op> literal` on Int/Float columns
/// run as tight typed loops over the shrinking selection; anything else
/// falls back to row-expression evaluation (still selection-driven).
pub(crate) fn vectorized_filter(
    batch: &Batch,
    predicate: &Expr,
    engine: Engine,
) -> Result<Vec<usize>, DbError> {
    vectorized_filter_range(batch, predicate, Sel::Dense(0..batch.row_count()), engine)
}

/// [`vectorized_filter`] over an initial selection (a whole batch or one
/// morsel's row range): conjuncts shrink the selection, so workers keep
/// their selection vectors local. The initial selection stays symbolic
/// ([`Sel::Dense`]) until the first conjunct produces survivors, letting
/// the first compare stream the column instead of gathering through an
/// index vector that is just `start..end`.
pub(crate) fn vectorized_filter_range(
    batch: &Batch,
    predicate: &Expr,
    init: Sel,
    engine: Engine,
) -> Result<Vec<usize>, DbError> {
    // Flatten AND-chains.
    let mut conjuncts = Vec::new();
    flatten_and(predicate, &mut conjuncts);
    let mut selection = init;
    for c in conjuncts {
        selection = Sel::Sparse(apply_conjunct(batch, c, &selection, engine)?);
        if selection.is_empty() {
            break;
        }
    }
    Ok(selection.into_vec())
}

fn flatten_and<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            flatten_and(left, out);
            flatten_and(right, out);
        }
        other => out.push(other),
    }
}

fn apply_conjunct(
    batch: &Batch,
    pred: &Expr,
    selection: &Sel,
    engine: Engine,
) -> Result<Vec<usize>, DbError> {
    // Fast path: ColumnIdx <op> Literal.
    if let Expr::Binary { op, left, right } = pred {
        if op.is_comparison() {
            if let (Expr::ColumnIdx(ci), Expr::Literal(lit)) = (&**left, &**right) {
                if let Some(sel) = typed_compare(&batch.cols[*ci], *op, lit, selection, engine) {
                    return Ok(sel);
                }
            }
            // Literal <op> Column: flip.
            if let (Expr::Literal(lit), Expr::ColumnIdx(ci)) = (&**left, &**right) {
                let flipped = flip_cmp(*op);
                if let Some(sel) = typed_compare(&batch.cols[*ci], flipped, lit, selection, engine)
                {
                    return Ok(sel);
                }
            }
        }
    }
    // Generic fallback (disjunctions, expressions over several columns):
    // evaluate per selected row into a pre-sized output, emitted with the
    // same reserve-then-truncate compaction the kernels use — OPT and SIMD
    // differ only in the kernel, never in allocator behavior.
    let mut out = vec![0usize; selection.len()];
    let mut k = 0usize;
    let width = batch.cols.len();
    let mut row: Vec<Value> = Vec::with_capacity(width);
    let keep = |row: &mut Vec<Value>, i: usize| -> Result<bool, DbError> {
        row.clear();
        for c in &batch.cols {
            row.push(c.get(i));
        }
        Ok(pred.eval(row)? == Value::Bool(true))
    };
    match selection {
        Sel::Dense(r) => {
            for i in r.clone() {
                out[k] = i;
                k += keep(&mut row, i)? as usize;
            }
        }
        Sel::Sparse(sel) => {
            for &i in sel {
                out[k] = i;
                k += keep(&mut row, i)? as usize;
            }
        }
    }
    out.truncate(k);
    Ok(out)
}

fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Tight typed comparison, dispatched to the compare-select kernels;
/// returns `None` if no fast path applies. Both engines run the same
/// kernel entry points — `engine` picks the scalar or the chunked SIMD
/// implementation, never a different comparison.
fn typed_compare(
    col: &Column,
    op: BinOp,
    lit: &Value,
    selection: &Sel,
    engine: Engine,
) -> Option<Vec<usize>> {
    let cmp = Cmp::from_binop(op)?;
    match (col, lit) {
        (Column::Int(data), Value::Int(k)) => {
            Some(kernels::compare_select(data, cmp, *k, selection, engine))
        }
        (Column::Float(data), lit) => {
            let k = lit.as_f64()?;
            Some(kernels::compare_select(data, cmp, k, selection, engine))
        }
        (Column::Int(data), Value::Float(k)) => Some(kernels::compare_select_map(
            data,
            |v| v as f64,
            cmp,
            *k,
            selection,
            engine,
        )),
        (Column::Str { dict, codes }, Value::Str(s)) if matches!(cmp, Cmp::Eq | Cmp::Ne) => {
            // Dictionary short-cut: compare codes, not strings.
            Some(match (cmp, dict.code_of(s)) {
                (Cmp::Eq, None) => Vec::new(),
                (Cmp::Ne, None) => selection.clone().into_vec(),
                (_, Some(c)) => kernels::compare_select(codes, cmp, c, selection, engine),
                _ => unreachable!(),
            })
        }
        _ => None,
    }
}

/// Vectorized expression evaluation producing a column.
pub(crate) fn vectorized_eval(
    batch: &Batch,
    expr: &Expr,
    schema: &[(String, DataType)],
) -> Result<Arc<Column>, DbError> {
    // Identity fast path: share the input column, zero-copy.
    if let Expr::ColumnIdx(i) = expr {
        return Ok(Arc::clone(&batch.cols[*i]));
    }
    let n = batch.row_count();
    let dt = expr.data_type(schema)?;
    // Arithmetic fast path on numeric columns. Only valid when the static
    // result type is Float: the kernel computes in f64, so Int-typed
    // expressions (e.g. `qty + 1`) must take the exact integer path below.
    if dt == DataType::Float {
        if let Expr::Binary { op, left, right } = expr {
            if !op.is_comparison() && !matches!(op, BinOp::And | BinOp::Or) {
                if let Some(col) = typed_arith(batch, *op, left, right) {
                    return Ok(Arc::new(col));
                }
            }
        }
    }
    // Generic fallback.
    let mut out = Column::new(dt);
    let mut row: Vec<Value> = Vec::with_capacity(batch.cols.len());
    for i in 0..n {
        row.clear();
        for c in &batch.cols {
            row.push(c.get(i));
        }
        let v = expr.eval(&row)?;
        // NULL results (e.g. division by zero) are stored as a sentinel —
        // base tables are NULL-free, so only computed columns can produce
        // them, and we fold them to a type-appropriate default.
        let v = match v {
            Value::Null => match dt {
                DataType::Int => Value::Int(0),
                DataType::Float => Value::Float(f64::NAN),
                DataType::Str => Value::Str(String::new()),
                DataType::Bool => Value::Bool(false),
            },
            other => other,
        };
        out.push(v)?;
    }
    Ok(Arc::new(out))
}

/// Fast arithmetic kernels for `col op col` and `col op lit` on f64 data.
fn typed_arith(batch: &Batch, op: BinOp, left: &Expr, right: &Expr) -> Option<Column> {
    let fetch = |e: &Expr| -> Option<FloatOperand> {
        match e {
            Expr::ColumnIdx(i) => match &*batch.cols[*i] {
                Column::Float(v) => Some(FloatOperand::Col(v.clone())),
                Column::Int(v) => Some(FloatOperand::Col(v.iter().map(|&x| x as f64).collect())),
                _ => None,
            },
            Expr::Literal(v) => v.as_f64().map(FloatOperand::Scalar),
            Expr::Binary { op, left, right } => {
                // Recurse so chained arithmetic like l_extendedprice *
                // (1 - l_discount) stays vectorized.
                let col = typed_arith(batch, *op, left, right)?;
                match col {
                    Column::Float(v) => Some(FloatOperand::Col(v)),
                    Column::Int(v) => {
                        Some(FloatOperand::Col(v.iter().map(|&x| x as f64).collect()))
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    };
    if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
        return None;
    }
    let l = fetch(left)?;
    let r = fetch(right)?;
    let n = batch.row_count();
    let apply = |a: f64, b: f64| match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        _ => unreachable!(),
    };
    let data: Vec<f64> = match (&l, &r) {
        (FloatOperand::Col(a), FloatOperand::Col(b)) => {
            a.iter().zip(b).map(|(&x, &y)| apply(x, y)).collect()
        }
        (FloatOperand::Col(a), FloatOperand::Scalar(s)) => {
            a.iter().map(|&x| apply(x, *s)).collect()
        }
        (FloatOperand::Scalar(s), FloatOperand::Col(b)) => {
            b.iter().map(|&y| apply(*s, y)).collect()
        }
        (FloatOperand::Scalar(a), FloatOperand::Scalar(b)) => {
            vec![apply(*a, *b); n]
        }
    };
    Some(Column::Float(data))
}

enum FloatOperand {
    Col(Vec<f64>),
    Scalar(f64),
}

/// Which join input the hash table was built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BuildSide {
    /// Hash table over the left input, probe with the right.
    Left,
    /// Hash table over the right input, probe with the left.
    Right,
}

impl BuildSide {
    pub(crate) fn label(self) -> &'static str {
        match self {
            BuildSide::Left => "left",
            BuildSide::Right => "right",
        }
    }
}

/// Builds on the smaller input (ties go left, the historical choice).
pub(crate) fn choose_build_side(lkey: &Column, rkey: &Column) -> BuildSide {
    if rkey.len() < lkey.len() {
        BuildSide::Right
    } else {
        BuildSide::Left
    }
}

/// A materialized hash-join build table, probe-shareable across worker
/// threads (read-only during the probe phase).
pub(crate) enum JoinBuild {
    /// Both key columns are Int: hash raw i64s through std's `HashMap`.
    Int(HashMap<i64, Vec<usize>>),
    /// Both key columns are Int, SIMD tier: the open-addressed,
    /// insertion-ordered index with lane-parallel key mixing. Emits the
    /// exact pairs [`JoinBuild::Int`] emits, in the same order.
    IntSimd(kernels::IntIndex),
    /// Generic typed keys (NULL never matches, so NULL keys are skipped).
    Generic(HashMap<Key, Vec<usize>>),
}

impl JoinBuild {
    /// Builds the hash table over `build`; `probe` only decides whether
    /// the Int fast path applies (both sides must be Int columns), and
    /// `engine` which Int index implementation backs it.
    pub(crate) fn new(build: &Column, probe: &Column, engine: Engine) -> JoinBuild {
        match (build.as_int(), probe.as_int()) {
            (Some(data), Some(_)) if engine == Engine::Simd => {
                JoinBuild::IntSimd(kernels::IntIndex::build(data))
            }
            (Some(data), Some(_)) => {
                let mut m: HashMap<i64, Vec<usize>> = HashMap::with_capacity(data.len());
                for (i, &k) in data.iter().enumerate() {
                    m.entry(k).or_default().push(i);
                }
                JoinBuild::Int(m)
            }
            _ => {
                let mut m: HashMap<Key, Vec<usize>> = HashMap::new();
                for i in 0..build.len() {
                    if let Some(k) = value_key(&build.get(i)) {
                        m.entry(k).or_default().push(i);
                    }
                }
                JoinBuild::Generic(m)
            }
        }
    }

    /// Probes rows `range` of `probe`, returning matching
    /// (build-row, probe-row) pairs probe-major: ascending probe row, and
    /// build rows in insertion (ascending) order within each.
    pub(crate) fn probe_range(
        &self,
        probe: &Column,
        range: std::ops::Range<usize>,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut bsel = Vec::new();
        let mut psel = Vec::new();
        match self {
            JoinBuild::Int(m) => {
                let data = probe.as_int().expect("int probe column");
                for j in range {
                    if let Some(matches) = m.get(&data[j]) {
                        for &i in matches {
                            bsel.push(i);
                            psel.push(j);
                        }
                    }
                }
            }
            JoinBuild::IntSimd(idx) => {
                let data = probe.as_int().expect("int probe column");
                idx.probe_range(data, range, &mut bsel, &mut psel);
            }
            JoinBuild::Generic(m) => {
                for j in range {
                    if let Some(k) = value_key(&probe.get(j)) {
                        if let Some(matches) = m.get(&k) {
                            for &i in matches {
                                bsel.push(i);
                                psel.push(j);
                            }
                        }
                    }
                }
            }
        }
        (bsel, psel)
    }
}

/// Restores the canonical pair order — ascending right row, then ascending
/// left row — that a build-on-left probe produces directly. After a
/// build-on-right probe the pairs arrive left-major with ascending right
/// rows inside each left row, so one stable sort by right row restores the
/// canonical order exactly. This keeps the output bit-identical no matter
/// which side the hash table was built on.
pub(crate) fn canonicalize_join_pairs(
    side: BuildSide,
    lsel: Vec<usize>,
    rsel: Vec<usize>,
) -> (Vec<usize>, Vec<usize>) {
    match side {
        BuildSide::Left => (lsel, rsel),
        BuildSide::Right => {
            let mut perm: Vec<usize> = (0..rsel.len()).collect();
            perm.sort_by_key(|&p| rsel[p]); // stable: ties keep left-asc order
            (
                perm.iter().map(|&p| lsel[p]).collect(),
                perm.iter().map(|&p| rsel[p]).collect(),
            )
        }
    }
}

/// Builds the matching (left, right) row-index pairs of a hash equi-join,
/// building on the smaller input and reporting which side that was.
fn hash_join_selections(
    lkey: &Column,
    rkey: &Column,
    engine: Engine,
) -> (Vec<usize>, Vec<usize>, BuildSide) {
    let side = choose_build_side(lkey, rkey);
    let (lsel, rsel) = match side {
        BuildSide::Left => JoinBuild::new(lkey, rkey, engine).probe_range(rkey, 0..rkey.len()),
        BuildSide::Right => {
            let (bsel, psel) = JoinBuild::new(rkey, lkey, engine).probe_range(lkey, 0..lkey.len());
            (psel, bsel)
        }
    };
    let (lsel, rsel) = canonicalize_join_pairs(side, lsel, rsel);
    (lsel, rsel, side)
}

/// Hash aggregation over a columnar batch.
pub(crate) fn vectorized_aggregate(
    catalog: &Catalog,
    plan: &Plan,
    input: &Batch,
    group_by: &[(Expr, String)],
    aggregates: &[(AggFunc, Expr, String)],
    engine: Engine,
) -> Result<Batch, DbError> {
    let schema = input.schema();
    let group_cols: Vec<Arc<Column>> = group_by
        .iter()
        .map(|(e, _)| {
            let b = e.bind(&schema)?;
            vectorized_eval(input, &b, &schema)
        })
        .collect::<Result<_, _>>()?;
    let agg_inputs: Vec<(AggFunc, Arc<Column>, DataType)> = aggregates
        .iter()
        .map(|(f, e, _)| {
            let b = e.bind(&schema)?;
            let dt = e.data_type(&schema)?;
            Ok((*f, vectorized_eval(input, &b, &schema)?, dt))
        })
        .collect::<Result<_, DbError>>()?;

    let n = input.row_count();
    let new_states = || -> Vec<AggState> {
        agg_inputs
            .iter()
            .map(|(f, _, dt)| AggState::new(*f, *dt))
            .collect()
    };

    // SIMD tier, single Int group key: dense first-seen group ids through
    // the lane-mixed open table, then per-group state updates in the same
    // ascending row order the HashMap path applies. Int columns are
    // NULL-free, so no rows drop — the group set, per-group states, and
    // (post-sort) output are bit-identical to the scalar directory.
    if engine == Engine::Simd && group_cols.len() == 1 {
        if let Some(keys) = group_cols[0].as_int() {
            let (gids, first_rows) = kernels::group_ids_i64(keys);
            let mut per_group: Vec<Vec<AggState>> =
                (0..first_rows.len()).map(|_| new_states()).collect();
            for (i, &g) in gids.iter().enumerate() {
                for ((_, col, _), state) in agg_inputs.iter().zip(&mut per_group[g as usize]) {
                    state.update_from_col(col, i);
                }
            }
            let rows: Vec<Vec<Value>> = per_group
                .into_iter()
                .zip(&first_rows)
                .map(|(states, &first)| {
                    let mut row = vec![group_cols[0].get(first as usize)];
                    row.extend(states.into_iter().map(AggState::finish));
                    row
                })
                .collect();
            return finish_aggregate_batch(catalog, plan, rows);
        }
    }

    let mut groups: HashMap<Vec<Key>, (usize, Vec<AggState>)> = HashMap::new();
    let mut group_order: Vec<Vec<Value>> = Vec::new();
    if group_by.is_empty() {
        // Global aggregate: one group, no per-row key hashing.
        let mut states = new_states();
        if engine == Engine::Simd {
            // Column-at-a-time lane folds where the kernels prove
            // exactness; serial replay (identical to the scalar loop)
            // otherwise. States are independent, so folding one state over
            // the whole column before the next is the same accumulation.
            for ((_, col, _), state) in agg_inputs.iter().zip(&mut states) {
                if !state.update_bulk(col) {
                    for i in 0..n {
                        state.update_from_col(col, i);
                    }
                }
            }
        } else {
            for i in 0..n {
                for ((_, col, _), state) in agg_inputs.iter().zip(&mut states) {
                    state.update_from_col(col, i);
                }
            }
        }
        groups.insert(Vec::new(), (0, states));
        group_order.push(Vec::new());
    } else {
        'rows: for i in 0..n {
            let mut key = Vec::with_capacity(group_cols.len());
            for c in &group_cols {
                match value_key(&c.get(i)) {
                    Some(k) => key.push(k),
                    None => continue 'rows, // NULL group keys drop the row
                }
            }
            let next_id = group_order.len();
            let entry = groups.entry(key).or_insert_with(|| {
                group_order.push(group_cols.iter().map(|c| c.get(i)).collect());
                (next_id, new_states())
            });
            for ((_, col, _), state) in agg_inputs.iter().zip(&mut entry.1) {
                state.update_from_col(col, i);
            }
        }
    }
    // Assemble rows then sort deterministically.
    let rows: Vec<Vec<Value>> = groups
        .into_values()
        .map(|(id, states)| {
            let mut row = group_order[id].clone();
            row.extend(states.into_iter().map(AggState::finish));
            row
        })
        .collect();
    finish_aggregate_batch(catalog, plan, rows)
}

/// Sorts assembled aggregate rows deterministically and materializes the
/// output batch — shared by the serial and morsel-parallel aggregates so
/// their final steps are literally the same code.
pub(crate) fn finish_aggregate_batch(
    catalog: &Catalog,
    plan: &Plan,
    mut rows: Vec<Vec<Value>>,
) -> Result<Batch, DbError> {
    rows.sort_by(|a, b| compare_rows(a, b));
    let out_schema = plan.schema(catalog)?;
    let mut cols: Vec<Column> = out_schema.iter().map(|(_, dt)| Column::new(*dt)).collect();
    for row in &rows {
        for (col, v) in cols.iter_mut().zip(row) {
            let v = match v {
                Value::Null => match col.data_type() {
                    DataType::Int => Value::Int(0),
                    DataType::Float => Value::Float(f64::NAN),
                    DataType::Str => Value::Str(String::new()),
                    DataType::Bool => Value::Bool(false),
                },
                other => other.clone(),
            };
            col.push(v)?;
        }
    }
    Ok(Batch {
        names: out_schema.into_iter().map(|(n, _)| n).collect(),
        cols: cols.into_iter().map(Arc::new).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, to_plan};
    use crate::table::TableBuilder;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut t = TableBuilder::new("sales")
            .column("region", DataType::Str)
            .column("qty", DataType::Int)
            .column("price", DataType::Float)
            .build();
        let data = [
            ("east", 10, 1.0),
            ("west", 20, 2.0),
            ("east", 30, 3.0),
            ("west", 5, 4.0),
            ("north", 1, 5.0),
        ];
        for (r, q, p) in data {
            t.push_row(vec![Value::Str(r.into()), Value::Int(q), Value::Float(p)])
                .unwrap();
        }
        c.register(t).unwrap();

        let mut regions = TableBuilder::new("regions")
            .column("rname", DataType::Str)
            .column("continent", DataType::Str)
            .build();
        for (r, cont) in [("east", "A"), ("west", "A"), ("north", "B")] {
            regions
                .push_row(vec![Value::Str(r.into()), Value::Str(cont.into())])
                .unwrap();
        }
        c.register(regions).unwrap();
        c
    }

    fn run_sql(catalog: &Catalog, mode: ExecMode, sql: &str) -> ResultSet {
        let stmt = parse(sql).unwrap();
        let plan = to_plan(&stmt, |t| Ok(catalog.table(t)?.column_names().to_vec())).unwrap();
        Executor::new(catalog, mode).run(&plan).unwrap()
    }

    /// Runs `sql` under all three engines and asserts SIMD matches OPT
    /// bit-for-bit before handing (Debug, Optimized) back — every test
    /// that goes through here exercises the full engine factor.
    fn both_modes(sql: &str) -> (ResultSet, ResultSet) {
        let c = catalog();
        let d = run_sql(&c, ExecMode::Debug, sql);
        let o = run_sql(&c, ExecMode::Optimized, sql);
        let s = run_sql(&c, ExecMode::Simd, sql);
        assert_eq!(o.rows, s.rows, "SIMD diverged from OPT on: {sql}");
        assert_eq!(o.column_names, s.column_names, "SIMD schema on: {sql}");
        (d, o)
    }

    #[test]
    fn select_star() {
        let (d, o) = both_modes("SELECT * FROM sales");
        assert_eq!(d.row_count(), 5);
        assert_eq!(o.row_count(), 5);
        assert_eq!(d.column_names, vec!["region", "qty", "price"]);
        assert_eq!(d.rows, o.rows);
    }

    #[test]
    fn filter_comparison() {
        let (d, o) = both_modes("SELECT qty FROM sales WHERE qty >= 10");
        assert_eq!(d.row_count(), 3);
        assert_eq!(d.rows, o.rows);
    }

    #[test]
    fn filter_string_equality() {
        let (d, o) = both_modes("SELECT qty FROM sales WHERE region = 'east'");
        assert_eq!(d.row_count(), 2);
        assert_eq!(d.rows, o.rows);
    }

    #[test]
    fn filter_string_not_found_in_dictionary() {
        let (d, o) = both_modes("SELECT qty FROM sales WHERE region = 'mars'");
        assert_eq!(d.row_count(), 0);
        assert_eq!(o.row_count(), 0);
        let (d2, o2) = both_modes("SELECT qty FROM sales WHERE region <> 'mars'");
        assert_eq!(d2.row_count(), 5);
        assert_eq!(o2.row_count(), 5);
    }

    #[test]
    fn filter_conjunction() {
        let (d, o) =
            both_modes("SELECT qty FROM sales WHERE qty > 1 AND qty < 30 AND price >= 2.0");
        assert_eq!(d.rows, o.rows);
        assert_eq!(d.row_count(), 2); // west/20/2.0 and west/5/4.0
    }

    #[test]
    fn filter_disjunction_fallback() {
        let (d, o) = both_modes("SELECT qty FROM sales WHERE qty = 1 OR qty = 30");
        assert_eq!(d.row_count(), 2);
        assert_eq!(d.rows, o.rows);
    }

    #[test]
    fn projection_arithmetic() {
        let (d, o) = both_modes("SELECT qty * price AS revenue FROM sales WHERE qty = 10");
        assert_eq!(d.rows[0][0], Value::Float(10.0));
        assert_eq!(d.rows, o.rows);
        assert_eq!(d.column_names, vec!["revenue"]);
    }

    #[test]
    fn global_aggregates() {
        let (d, o) =
            both_modes("SELECT SUM(qty), COUNT(*), AVG(price), MIN(qty), MAX(qty) FROM sales");
        assert_eq!(d.rows.len(), 1);
        assert_eq!(d.rows[0][0], Value::Int(66));
        assert_eq!(d.rows[0][1], Value::Int(5));
        assert_eq!(d.rows[0][2], Value::Float(3.0));
        assert_eq!(d.rows[0][3], Value::Int(1));
        assert_eq!(d.rows[0][4], Value::Int(30));
        assert_eq!(d.rows, o.rows);
    }

    #[test]
    fn group_by_aggregation() {
        let (d, o) = both_modes(
            "SELECT region, SUM(qty) AS total FROM sales GROUP BY region ORDER BY region",
        );
        assert_eq!(d.rows, o.rows);
        assert_eq!(d.rows.len(), 3);
        assert_eq!(d.rows[0], vec![Value::Str("east".into()), Value::Int(40)]);
        assert_eq!(d.rows[2], vec![Value::Str("west".into()), Value::Int(25)]);
    }

    #[test]
    fn join_two_tables() {
        let (d, o) = both_modes(
            "SELECT region, continent FROM sales JOIN regions ON region = rname \
             WHERE qty > 5 ORDER BY region",
        );
        assert_eq!(d.rows, o.rows);
        assert_eq!(d.row_count(), 3); // east/10, east/30, west/20
        assert_eq!(d.rows[0][1], Value::Str("A".into()));
    }

    #[test]
    fn join_then_aggregate() {
        let (d, o) = both_modes(
            "SELECT continent, SUM(qty * price) AS rev FROM sales \
             JOIN regions ON region = rname GROUP BY continent ORDER BY continent",
        );
        assert_eq!(d.rows, o.rows);
        // A: east(10*1+30*3)=100 + west(20*2+5*4)=60 -> 160; B: 1*5=5.
        assert_eq!(d.rows[0], vec![Value::Str("A".into()), Value::Float(160.0)]);
        assert_eq!(d.rows[1], vec![Value::Str("B".into()), Value::Float(5.0)]);
    }

    #[test]
    fn order_by_desc_and_limit() {
        let (d, o) = both_modes("SELECT qty FROM sales ORDER BY qty DESC LIMIT 2");
        assert_eq!(d.rows, o.rows);
        assert_eq!(d.rows[0][0], Value::Int(30));
        assert_eq!(d.rows[1][0], Value::Int(20));
    }

    #[test]
    fn empty_result_global_aggregate() {
        let (d, o) = both_modes("SELECT SUM(qty), COUNT(*) FROM sales WHERE qty > 1000");
        assert_eq!(d.rows.len(), 1);
        assert_eq!(d.rows[0][1], Value::Int(0));
        assert_eq!(o.rows[0][1], Value::Int(0));
    }

    #[test]
    fn empty_group_by_result() {
        let (d, o) =
            both_modes("SELECT region, SUM(qty) FROM sales WHERE qty > 1000 GROUP BY region");
        assert_eq!(d.row_count(), 0);
        assert_eq!(o.row_count(), 0);
    }

    #[test]
    fn profile_trace_is_root_first() {
        let c = catalog();
        let stmt = parse("SELECT SUM(qty) FROM sales WHERE qty > 1").unwrap();
        let plan = to_plan(&stmt, |t| Ok(c.table(t)?.column_names().to_vec())).unwrap();
        let mut ex = Executor::new(&c, ExecMode::Optimized);
        ex.run(&plan).unwrap();
        let trace = ex.profile();
        assert!(trace.len() >= 4, "project, aggregate, filter, scan");
        assert_eq!(trace[0].depth, 0);
        assert!(trace.last().unwrap().op.starts_with("Scan"));
        let text = render_profile(trace);
        assert!(text.contains("HashAggregate"));
        assert!(text.contains("rows"));
    }

    #[test]
    fn buffer_pool_is_charged_once_per_scan() {
        let c = catalog();
        let mut pool = BufferPool::new(memsim::Disk::laptop_5400rpm(), 100);
        let stmt = parse("SELECT qty FROM sales").unwrap();
        let plan = to_plan(&stmt, |t| Ok(c.table(t)?.column_names().to_vec())).unwrap();
        {
            let mut ex = Executor::new(&c, ExecMode::Optimized).with_pool(&mut pool);
            ex.run(&plan).unwrap();
        }
        assert!(pool.physical_reads() > 0, "cold scan reads pages");
        let cold_wait = pool.sim_wait_ns();
        assert!(cold_wait > 0.0);
        {
            let mut ex = Executor::new(&c, ExecMode::Optimized).with_pool(&mut pool);
            ex.run(&plan).unwrap();
        }
        assert_eq!(pool.sim_wait_ns(), cold_wait, "hot scan is free");
    }

    #[test]
    fn modes_agree_on_a_battery_of_queries() {
        let queries = [
            "SELECT * FROM sales ORDER BY qty",
            "SELECT region FROM sales WHERE price BETWEEN 2.0 AND 4.0 ORDER BY region",
            "SELECT qty + 1 AS q1, price * 2.0 AS p2 FROM sales ORDER BY q1",
            "SELECT region, COUNT(*) AS n, MAX(price) FROM sales GROUP BY region ORDER BY n DESC, region",
            "SELECT MIN(price), MAX(price) FROM sales WHERE region <> 'north'",
            "SELECT qty FROM sales WHERE NOT qty > 10 ORDER BY qty",
        ];
        let c = catalog();
        for q in queries {
            let d = run_sql(&c, ExecMode::Debug, q);
            let o = run_sql(&c, ExecMode::Optimized, q);
            let s = run_sql(&c, ExecMode::Simd, q);
            assert_eq!(d.rows, o.rows, "query: {q}");
            assert_eq!(d.column_names, o.column_names, "query: {q}");
            assert_eq!(o.rows, s.rows, "SIMD query: {q}");
        }
    }

    #[test]
    fn exec_mode_parses_from_str() {
        for (s, m) in [
            ("dbg", ExecMode::Debug),
            ("DEBUG", ExecMode::Debug),
            ("opt", ExecMode::Optimized),
            ("Optimized", ExecMode::Optimized),
            ("simd", ExecMode::Simd),
            ("SIMD", ExecMode::Simd),
        ] {
            assert_eq!(s.parse::<ExecMode>().unwrap(), m);
        }
        assert!("jit".parse::<ExecMode>().is_err());
    }

    #[test]
    fn rendered_bytes_reflects_result_size() {
        let (d, _) = both_modes("SELECT * FROM sales");
        let (small, _) = both_modes("SELECT COUNT(*) FROM sales");
        assert!(d.rendered_bytes() > small.rendered_bytes());
    }
}
