//! The catalog: a registry of tables plus their simulated storage layout.

use crate::error::DbError;
use crate::storage::{open_catalog, persist_catalog, Storage, StoreConfig};
use crate::table::Table;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// Registry of tables. Each table gets a stable `file_id` used for buffer
/// pool page addressing.
///
/// A catalog opened with [`Catalog::open`] additionally carries a
/// [`Storage`] handle: one real buffer pool shared by every table's
/// scans, with honest hit/miss counters and a
/// [`drop_caches`](Storage::drop_caches) switch for cold runs.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, (u32, Table)>,
    next_file_id: u32,
    store: Option<Arc<Storage>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table; its name must be unused.
    pub fn register(&mut self, table: Table) -> Result<(), DbError> {
        let name = table.name().to_owned();
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateTable(name));
        }
        let id = self.next_file_id;
        self.next_file_id += 1;
        self.tables.insert(name, (id, table));
        Ok(())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(name)
            .map(|(_, t)| t)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// Looks up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(name)
            .map(|(_, t)| t)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// The buffer-pool file id of a table.
    pub fn file_id(&self, name: &str) -> Result<u32, DbError> {
        self.tables
            .get(name)
            .map(|(id, _)| *id)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// Drops a table; returns it if it existed.
    pub fn drop_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name).map(|(_, t)| t)
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Persists every table under `root/` and commits a catalog
    /// manifest, with default storage settings. Each table becomes a
    /// directory of checksummed, per-column compressed segment files;
    /// commits are temp-then-rename, so a crash mid-persist reopens to
    /// the last complete state.
    pub fn persist(&self, root: &Path) -> Result<(), DbError> {
        self.persist_with(root, &StoreConfig::default())
    }

    /// [`Catalog::persist`] with explicit storage settings.
    pub fn persist_with(&self, root: &Path, config: &StoreConfig) -> Result<(), DbError> {
        persist_catalog(self, root, config)
    }

    /// Opens a persisted catalog with default storage settings (64 MiB
    /// LRU pool). Tables are disk-backed: scans pull column chunks
    /// through the shared buffer pool.
    pub fn open(root: &Path) -> Result<Catalog, DbError> {
        Self::open_with(root, StoreConfig::default())
    }

    /// [`Catalog::open`] with explicit pool budget, eviction policy,
    /// and fault registry.
    pub fn open_with(root: &Path, config: StoreConfig) -> Result<Catalog, DbError> {
        open_catalog(root, config)
    }

    /// The storage handle, if this catalog was opened from disk. Exposes
    /// real pool counters, the quarantine report, and `drop_caches`.
    pub fn storage(&self) -> Option<&Arc<Storage>> {
        self.store.as_ref()
    }

    pub(crate) fn attach_storage(&mut self, store: Arc<Storage>) {
        self.store = Some(store);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use crate::types::DataType;

    fn table(name: &str) -> Table {
        TableBuilder::new(name).column("x", DataType::Int).build()
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register(table("a")).unwrap();
        c.register(table("b")).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.table("a").unwrap().name(), "a");
        assert!(c.table("zzz").is_err());
        assert_eq!(c.table_names(), vec!["a", "b"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Catalog::new();
        c.register(table("a")).unwrap();
        let err = c.register(table("a")).unwrap_err();
        assert_eq!(err, DbError::DuplicateTable("a".to_owned()));
    }

    #[test]
    fn file_ids_are_stable_and_distinct() {
        let mut c = Catalog::new();
        c.register(table("a")).unwrap();
        c.register(table("b")).unwrap();
        let ida = c.file_id("a").unwrap();
        let idb = c.file_id("b").unwrap();
        assert_ne!(ida, idb);
        // Dropping and re-adding must not recycle the id.
        c.drop_table("a");
        c.register(table("a2")).unwrap();
        assert_ne!(c.file_id("a2").unwrap(), ida);
    }

    #[test]
    fn mutation_through_catalog() {
        let mut c = Catalog::new();
        c.register(table("a")).unwrap();
        c.table_mut("a")
            .unwrap()
            .push_row(vec![crate::types::Value::Int(1)])
            .unwrap();
        assert_eq!(c.table("a").unwrap().row_count(), 1);
    }

    #[test]
    fn drop_table() {
        let mut c = Catalog::new();
        c.register(table("a")).unwrap();
        assert!(c.drop_table("a").is_some());
        assert!(c.drop_table("a").is_none());
        assert!(c.is_empty());
    }
}
