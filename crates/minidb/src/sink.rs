//! Result sinks: *where the output goes is part of what you measure*.
//!
//! The tutorial's first table (slides 23–26) times TPC-H Q1 and Q16 with the
//! result sent to a file vs. a terminal, server-side vs. client-side: Q16's
//! 1.2 MB result turns a 618 ms query into a 1468 ms one just by printing it
//! to a terminal. The sinks here reproduce that axis:
//!
//! * [`NullSink`] — discard (pure server-side timing);
//! * [`FileSink`] — buffered tab-separated write to a file (cheap);
//! * [`TerminalSink`] — aligned-table rendering (two passes over the data)
//!   plus a simulated terminal latency per line and per byte, calibrated to
//!   the pre-2008 xterm the tutorial measured.

use crate::error::DbError;
use crate::exec::ResultSet;
use std::io::Write;

/// What a sink did with the result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkReport {
    /// Bytes rendered/written.
    pub bytes: usize,
    /// Rows written.
    pub rows: usize,
    /// Simulated device overhead in milliseconds (0 for real devices).
    pub sim_overhead_ms: f64,
}

/// Consumes query results.
pub trait ResultSink {
    /// Writes the whole result, returning a report.
    fn consume(&mut self, result: &ResultSet) -> Result<SinkReport, DbError>;

    /// One-line description for measurement documentation.
    fn describe(&self) -> String;
}

/// Discards the result — the "server-side, no output" timing.
#[derive(Debug, Default)]
pub struct NullSink;

impl ResultSink for NullSink {
    fn consume(&mut self, result: &ResultSet) -> Result<SinkReport, DbError> {
        Ok(SinkReport {
            bytes: 0,
            rows: result.row_count(),
            sim_overhead_ms: 0.0,
        })
    }

    fn describe(&self) -> String {
        "null sink (result discarded)".to_owned()
    }
}

/// Writes tab-separated rows to a file through a buffered writer.
#[derive(Debug)]
pub struct FileSink {
    path: std::path::PathBuf,
}

impl FileSink {
    /// Creates a file sink writing to `path` (truncated per query).
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        FileSink { path: path.into() }
    }
}

impl ResultSink for FileSink {
    fn consume(&mut self, result: &ResultSet) -> Result<SinkReport, DbError> {
        let file = std::fs::File::create(&self.path)?;
        let mut w = std::io::BufWriter::new(file);
        let mut bytes = 0usize;
        let header = result.column_names.join("\t");
        bytes += header.len() + 1;
        writeln!(w, "{header}")?;
        let mut line = String::new();
        for row in &result.rows {
            line.clear();
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    line.push('\t');
                }
                line.push_str(&v.render());
            }
            bytes += line.len() + 1;
            writeln!(w, "{line}")?;
        }
        w.flush()?;
        Ok(SinkReport {
            bytes,
            rows: result.row_count(),
            sim_overhead_ms: 0.0,
        })
    }

    fn describe(&self) -> String {
        format!("file sink ({})", self.path.display())
    }
}

/// Renders an aligned ASCII table (the expensive part: a width-computation
/// pass plus a formatting pass) and charges a simulated terminal latency.
///
/// The default latency constants (60 µs/line + 20 ns/byte) are calibrated so
/// that a ~1 MB / ~20 k-row result adds roughly a second — the order of
/// magnitude of the tutorial's Q16 terminal column.
#[derive(Debug)]
pub struct TerminalSink {
    /// Rendered output accumulates here (a real terminal would display it).
    pub rendered: String,
    line_latency_us: f64,
    byte_latency_ns: f64,
}

impl Default for TerminalSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TerminalSink {
    /// Creates a terminal sink with default latency calibration.
    pub fn new() -> Self {
        TerminalSink {
            rendered: String::new(),
            line_latency_us: 60.0,
            byte_latency_ns: 20.0,
        }
    }

    /// Overrides the latency model (for ablations).
    pub fn with_latency(line_latency_us: f64, byte_latency_ns: f64) -> Self {
        TerminalSink {
            rendered: String::new(),
            line_latency_us,
            byte_latency_ns,
        }
    }
}

impl ResultSink for TerminalSink {
    fn consume(&mut self, result: &ResultSet) -> Result<SinkReport, DbError> {
        self.rendered.clear();
        // Pass 1: column widths.
        let mut widths: Vec<usize> = result.column_names.iter().map(|n| n.len()).collect();
        let rendered_rows: Vec<Vec<String>> = result
            .rows
            .iter()
            .map(|row| row.iter().map(|v| v.render()).collect())
            .collect();
        for row in &rendered_rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        // Pass 2: aligned formatting.
        let push_row = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (cell, w) in cells.iter().zip(widths) {
                out.push(' ');
                out.push_str(cell);
                for _ in cell.len()..*w {
                    out.push(' ');
                }
                out.push_str(" |");
            }
            out.push('\n');
        };
        push_row(&result.column_names, &widths, &mut self.rendered);
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+\n";
        self.rendered.push_str(&sep);
        for row in &rendered_rows {
            push_row(row, &widths, &mut self.rendered);
        }
        let bytes = self.rendered.len();
        let lines = result.row_count() + 2;
        let sim_overhead_ms =
            lines as f64 * self.line_latency_us / 1e3 + bytes as f64 * self.byte_latency_ns / 1e6;
        Ok(SinkReport {
            bytes,
            rows: result.row_count(),
            sim_overhead_ms,
        })
    }

    fn describe(&self) -> String {
        format!(
            "terminal sink ({} us/line + {} ns/byte simulated)",
            self.line_latency_us, self.byte_latency_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    fn result(rows: usize) -> ResultSet {
        ResultSet {
            column_names: vec!["id".into(), "name".into()],
            rows: (0..rows)
                .map(|i| vec![Value::Int(i as i64), Value::Str(format!("name-{i}"))])
                .collect(),
        }
    }

    #[test]
    fn null_sink_is_free() {
        let mut s = NullSink;
        let r = s.consume(&result(100)).unwrap();
        assert_eq!(r.bytes, 0);
        assert_eq!(r.rows, 100);
        assert_eq!(r.sim_overhead_ms, 0.0);
        assert!(s.describe().contains("null"));
    }

    #[test]
    fn file_sink_writes_tsv() {
        let dir = std::env::temp_dir().join("minidb_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.tsv");
        let mut s = FileSink::new(&path);
        let rep = s.consume(&result(3)).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 4); // header + 3 rows
        assert!(content.starts_with("id\tname\n"));
        assert!(content.contains("2\tname-2"));
        assert_eq!(rep.bytes, content.len());
        assert_eq!(rep.sim_overhead_ms, 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn terminal_sink_aligns_columns() {
        let mut s = TerminalSink::new();
        let rep = s.consume(&result(2)).unwrap();
        assert!(rep.bytes > 0);
        let lines: Vec<&str> = s.rendered.lines().collect();
        assert_eq!(lines.len(), 4); // header + separator + 2 rows
                                    // All lines equal width (aligned).
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{:?}", lines);
        assert!(lines[1].starts_with("+-"));
    }

    #[test]
    fn terminal_cost_grows_with_result_size() {
        let mut s = TerminalSink::new();
        let small = s.consume(&result(10)).unwrap();
        let large = s.consume(&result(10_000)).unwrap();
        assert!(large.sim_overhead_ms > 50.0 * small.sim_overhead_ms);
    }

    #[test]
    fn terminal_much_slower_than_file_for_big_results() {
        // The slide-23 phenomenon in one assert.
        let dir = std::env::temp_dir().join("minidb_sink_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let r = result(20_000);
        let mut term = TerminalSink::new();
        let t = term.consume(&r).unwrap();
        let mut file = FileSink::new(dir.join("big.tsv"));
        let f = file.consume(&r).unwrap();
        assert_eq!(f.sim_overhead_ms, 0.0);
        assert!(
            t.sim_overhead_ms > 1000.0,
            "20k-row terminal print should cost > 1 s, got {} ms",
            t.sim_overhead_ms
        );
        std::fs::remove_file(dir.join("big.tsv")).ok();
    }

    #[test]
    fn empty_result_renders_header_only() {
        let mut s = TerminalSink::new();
        let rep = s
            .consume(&ResultSet {
                column_names: vec!["a".into()],
                rows: vec![],
            })
            .unwrap();
        assert_eq!(rep.rows, 0);
        assert_eq!(s.rendered.lines().count(), 2);
    }
}
