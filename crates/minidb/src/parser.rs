//! A small SQL parser covering the subset the tutorial's experiments need:
//!
//! ```sql
//! SELECT <list> FROM t [JOIN t2 ON a = b]*
//!   [WHERE <predicate>] [GROUP BY <cols>]
//!   [ORDER BY <col> [DESC], ...] [LIMIT n]
//! ```
//!
//! with arithmetic, comparisons, `AND`/`OR`/`NOT`, `BETWEEN … AND …`,
//! aggregates `SUM/COUNT/AVG/MIN/MAX`, `COUNT(*)`, string and numeric
//! literals, and optional `alias.column` qualification (the qualifier is
//! dropped — TPC-H column names are globally unique by prefix).

use crate::error::DbError;
use crate::expr::{AggFunc, BinOp, Expr};
use crate::plan::Plan;
use crate::types::Value;

/// One parsed token.
#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(&'static str),
}

/// Tokenizes SQL text.
fn tokenize(sql: &str) -> Result<Vec<Token>, DbError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                if j == chars.len() {
                    return Err(DbError::Parse("unterminated string literal".into()));
                }
                tokens.push(Token::Str(chars[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '.') {
                    if chars[j] == '.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                if is_float {
                    let f: f64 = text
                        .parse()
                        .map_err(|_| DbError::Parse(format!("bad number '{text}'")))?;
                    tokens.push(Token::Float(f));
                } else {
                    let n: i64 = text
                        .parse()
                        .map_err(|_| DbError::Parse(format!("bad number '{text}'")))?;
                    tokens.push(Token::Int(n));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                tokens.push(Token::Ident(chars[start..j].iter().collect()));
                i = j;
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::Symbol("<="));
                    i += 2;
                } else if i + 1 < chars.len() && chars[i + 1] == '>' {
                    tokens.push(Token::Symbol("<>"));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol("<"));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::Symbol(">="));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(">"));
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::Symbol("<>"));
                    i += 2;
                } else {
                    return Err(DbError::Parse("unexpected '!'".into()));
                }
            }
            '=' => {
                tokens.push(Token::Symbol("="));
                i += 1;
            }
            '(' | ')' | ',' | '*' | '+' | '-' | '/' | '.' => {
                let sym = match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    '.' => ".",
                    _ => unreachable!(),
                };
                tokens.push(Token::Symbol(sym));
                i += 1;
            }
            ';' => i += 1, // trailing semicolons are harmless
            other => {
                return Err(DbError::Parse(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `SELECT *`.
    Wildcard,
    /// A scalar expression with an output name.
    Expr(Expr, String),
    /// An aggregate call with an output name.
    Aggregate(AggFunc, Expr, String),
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// SELECT DISTINCT?
    pub distinct: bool,
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// Base table.
    pub from: String,
    /// JOINed tables with (left key name, right key name).
    pub joins: Vec<(String, String, String)>,
    /// WHERE predicate.
    pub predicate: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// ORDER BY (output column name, descending).
    pub order_by: Vec<(String, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(word)) = self.peek() {
            if word.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), DbError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), DbError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected '{sym}', found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String, DbError> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(DbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    /// Identifier, possibly qualified `alias.column` — qualifier dropped.
    fn column_name(&mut self) -> Result<String, DbError> {
        let first = self.expect_ident()?;
        if self.eat_symbol(".") {
            let second = self.expect_ident()?;
            Ok(second)
        } else {
            Ok(first)
        }
    }

    // --- expression grammar ---

    fn expr(&mut self) -> Result<Expr, DbError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, DbError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, DbError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, DbError> {
        if self.eat_keyword("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, DbError> {
        let left = self.additive()?;
        if self.eat_keyword("BETWEEN") {
            let lo = self.additive()?;
            self.expect_keyword("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::bin(
                BinOp::And,
                Expr::bin(BinOp::Ge, left.clone(), lo),
                Expr::bin(BinOp::Le, left, hi),
            ));
        }
        let op = match self.peek() {
            Some(Token::Symbol("=")) => Some(BinOp::Eq),
            Some(Token::Symbol("<>")) => Some(BinOp::Ne),
            Some(Token::Symbol("<")) => Some(BinOp::Lt),
            Some(Token::Symbol("<=")) => Some(BinOp::Le),
            Some(Token::Symbol(">")) => Some(BinOp::Gt),
            Some(Token::Symbol(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            Ok(Expr::bin(op, left, right))
        } else {
            Ok(left)
        }
    }

    fn additive(&mut self) -> Result<Expr, DbError> {
        let mut left = self.multiplicative()?;
        loop {
            if self.eat_symbol("+") {
                left = Expr::bin(BinOp::Add, left, self.multiplicative()?);
            } else if self.eat_symbol("-") {
                left = Expr::bin(BinOp::Sub, left, self.multiplicative()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, DbError> {
        let mut left = self.primary()?;
        loop {
            if self.eat_symbol("*") {
                left = Expr::bin(BinOp::Mul, left, self.primary()?);
            } else if self.eat_symbol("/") {
                left = Expr::bin(BinOp::Div, left, self.primary()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, DbError> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Expr::lit(Value::Int(n))),
            Some(Token::Float(f)) => Ok(Expr::lit(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::lit(Value::Str(s))),
            Some(Token::Symbol("(")) => {
                let inner = self.expr()?;
                self.expect_symbol(")")?;
                Ok(inner)
            }
            Some(Token::Symbol("-")) => {
                // Unary minus.
                let inner = self.primary()?;
                Ok(Expr::bin(BinOp::Sub, Expr::lit(Value::Int(0)), inner))
            }
            Some(Token::Ident(word)) => {
                if word.eq_ignore_ascii_case("TRUE") {
                    return Ok(Expr::lit(Value::Bool(true)));
                }
                if word.eq_ignore_ascii_case("FALSE") {
                    return Ok(Expr::lit(Value::Bool(false)));
                }
                // Qualified column?
                if self.eat_symbol(".") {
                    let col = self.expect_ident()?;
                    return Ok(Expr::col(&col));
                }
                Ok(Expr::col(&word))
            }
            other => Err(DbError::Parse(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }

    // --- statement grammar ---

    fn select_item(&mut self) -> Result<SelectItem, DbError> {
        // Aggregate call?
        if let Some(Token::Ident(word)) = self.peek() {
            if let Some(func) = AggFunc::parse(word) {
                // Lookahead for '(' to distinguish a column named "count".
                if matches!(self.tokens.get(self.pos + 1), Some(Token::Symbol("("))) {
                    self.pos += 2; // consume name and '('
                    let mut func = func;
                    if self.eat_keyword("DISTINCT") {
                        if func != AggFunc::Count {
                            return Err(DbError::Parse(
                                "DISTINCT is only supported inside COUNT(...)".into(),
                            ));
                        }
                        func = AggFunc::CountDistinct;
                    }
                    let (arg, arg_text) = if self.eat_symbol("*") {
                        (Expr::lit(Value::Int(1)), "*".to_owned())
                    } else {
                        let e = self.expr()?;
                        let text = e.render(&[]);
                        (e, text)
                    };
                    self.expect_symbol(")")?;
                    let default_name = func.render_call(&arg_text).to_ascii_lowercase();
                    let name = if self.eat_keyword("AS") {
                        self.expect_ident()?
                    } else {
                        default_name
                    };
                    return Ok(SelectItem::Aggregate(func, arg, name));
                }
            }
        }
        let e = self.expr()?;
        let default_name = match &e {
            Expr::Column(n) => n.clone(),
            other => other.render(&[]),
        };
        let name = if self.eat_keyword("AS") {
            self.expect_ident()?
        } else {
            default_name
        };
        Ok(SelectItem::Expr(e, name))
    }

    fn select(&mut self) -> Result<SelectStmt, DbError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = Vec::new();
        if self.eat_symbol("*") {
            items.push(SelectItem::Wildcard);
        } else {
            loop {
                items.push(self.select_item()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        self.expect_keyword("FROM")?;
        let from = self.expect_ident()?;
        // Optional alias (ignored).
        if !self.peek_any_keyword() && matches!(self.peek(), Some(Token::Ident(_))) {
            let _ = self.expect_ident();
        }
        let mut joins = Vec::new();
        while self.eat_keyword("JOIN") {
            let table = self.expect_ident()?;
            if !self.peek_any_keyword() && matches!(self.peek(), Some(Token::Ident(_))) {
                let _ = self.expect_ident(); // alias, ignored
            }
            self.expect_keyword("ON")?;
            let a = self.column_name()?;
            self.expect_symbol("=")?;
            let b = self.column_name()?;
            joins.push((table, a, b));
        }
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let name = self.column_name()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    let _ = self.eat_keyword("ASC");
                    false
                };
                order_by.push((name, desc));
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(DbError::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        if let Some(t) = self.peek() {
            return Err(DbError::Parse(format!("trailing input: {t:?}")));
        }
        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            predicate,
            group_by,
            order_by,
            limit,
        })
    }

    /// True if the next token is a reserved keyword (so a bare identifier
    /// after FROM is an alias, not a keyword).
    fn peek_any_keyword(&self) -> bool {
        const KEYWORDS: [&str; 10] = [
            "JOIN", "ON", "WHERE", "GROUP", "ORDER", "LIMIT", "BY", "AS", "DESC", "ASC",
        ];
        matches!(self.peek(), Some(Token::Ident(w))
            if KEYWORDS.iter().any(|k| w.eq_ignore_ascii_case(k)))
    }
}

/// Parses one SELECT statement.
pub fn parse(sql: &str) -> Result<SelectStmt, DbError> {
    let tokens = tokenize(sql)?;
    if tokens.is_empty() {
        return Err(DbError::Parse("empty statement".into()));
    }
    Parser { tokens, pos: 0 }.select()
}

/// Converts a parsed statement into a logical [`Plan`].
///
/// `table_columns` resolves `SELECT *` and validates GROUP BY coverage; pass
/// a closure mapping a table name to its column names.
pub fn to_plan(
    stmt: &SelectStmt,
    table_columns: impl Fn(&str) -> Result<Vec<String>, DbError>,
) -> Result<Plan, DbError> {
    let mut plan = Plan::Scan {
        table: stmt.from.clone(),
        projection: None,
    };
    for (table, a, b) in &stmt.joins {
        plan = Plan::Join {
            left: Box::new(plan),
            right: Box::new(Plan::Scan {
                table: table.clone(),
                projection: None,
            }),
            // Key sides are resolved by name at bind time; store both names
            // and let the executor's binder figure out which schema owns
            // which (TPC-H prefixes make this unambiguous).
            left_key: Expr::col(a),
            right_key: Expr::col(b),
        };
    }
    if let Some(pred) = &stmt.predicate {
        plan = Plan::Filter {
            input: Box::new(plan),
            predicate: pred.clone(),
        };
    }

    let has_aggregate = stmt
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Aggregate(..)));
    let has_group_by = !stmt.group_by.is_empty();

    if has_aggregate || has_group_by {
        // Build group-by keys with output names.
        let group_by: Vec<(Expr, String)> = stmt
            .group_by
            .iter()
            .map(|e| {
                let name = match e {
                    Expr::Column(n) => n.clone(),
                    other => other.render(&[]),
                };
                (e.clone(), name)
            })
            .collect();
        let mut aggregates = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Aggregate(f, arg, name) => {
                    aggregates.push((*f, arg.clone(), name.clone()));
                }
                SelectItem::Expr(e, name) => {
                    // Must be one of the group-by expressions.
                    if !stmt.group_by.iter().any(|g| g == e) {
                        return Err(DbError::Semantic(format!(
                            "column '{name}' must appear in GROUP BY or be aggregated"
                        )));
                    }
                }
                SelectItem::Wildcard => {
                    return Err(DbError::Semantic(
                        "SELECT * cannot be combined with aggregation".into(),
                    ))
                }
            }
        }
        plan = Plan::Aggregate {
            input: Box::new(plan),
            group_by,
            aggregates,
        };
        // Reorder output if select list interleaves groups and aggregates
        // differently than (groups..., aggs...): project by name.
        let out_names: Vec<String> = stmt
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Expr(e, _) => match e {
                    Expr::Column(n) => n.clone(),
                    other => other.render(&[]),
                },
                SelectItem::Aggregate(_, _, n) => n.clone(),
                SelectItem::Wildcard => unreachable!(),
            })
            .collect();
        let select_names: Vec<String> = stmt
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Expr(_, n) | SelectItem::Aggregate(_, _, n) => n.clone(),
                SelectItem::Wildcard => unreachable!(),
            })
            .collect();
        plan = Plan::Project {
            input: Box::new(plan),
            exprs: out_names
                .iter()
                .zip(&select_names)
                .map(|(src, out)| (Expr::col(src), out.clone()))
                .collect(),
        };
    } else {
        // Pure projection (or wildcard).
        let is_wildcard = stmt.items.len() == 1 && matches!(stmt.items[0], SelectItem::Wildcard);
        if is_wildcard {
            // Keep the plan as-is: all columns flow through. (Validate the
            // table exists so errors surface at plan time.)
            let _ = table_columns(&stmt.from)?;
        } else {
            let exprs: Vec<(Expr, String)> = stmt
                .items
                .iter()
                .map(|i| match i {
                    SelectItem::Expr(e, n) => (e.clone(), n.clone()),
                    _ => unreachable!("aggregates handled above"),
                })
                .collect();
            plan = Plan::Project {
                input: Box::new(plan),
                exprs,
            };
        }
    }

    if !stmt.order_by.is_empty() {
        plan = Plan::Sort {
            input: Box::new(plan),
            keys: stmt
                .order_by
                .iter()
                .map(|(name, desc)| (Expr::col(name), *desc))
                .collect(),
        };
    }
    if stmt.distinct {
        // DISTINCT applies to the projected output, below ORDER BY/LIMIT in
        // our construction order; since Sort is order-preserving over the
        // deduplicated rows, applying it before Sort is equivalent — but we
        // built Sort already, so splice Distinct beneath Sort/Limit.
        plan = insert_distinct(plan);
    }
    if let Some(n) = stmt.limit {
        plan = Plan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok(plan)
}

/// Splices a Distinct node beneath any Sort the plan already has, so
/// duplicates are removed before ordering.
fn insert_distinct(plan: Plan) -> Plan {
    match plan {
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(insert_distinct(*input)),
            keys,
        },
        other => Plan::Distinct {
            input: Box::new(other),
        },
    }
}

/// A parsed statement: queries plus the DDL/DML the harness needs to build
/// test fixtures from scripts.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A SELECT query.
    Select(SelectStmt),
    /// `CREATE TABLE name (col TYPE, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, crate::types::DataType)>,
    },
    /// `INSERT INTO name VALUES (...), (...)`.
    Insert {
        /// Target table.
        table: String,
        /// Literal rows.
        rows: Vec<Vec<Value>>,
    },
}

/// Parses one statement (SELECT, CREATE TABLE, or INSERT).
pub fn parse_statement(sql: &str) -> Result<Statement, DbError> {
    let tokens = tokenize(sql)?;
    if tokens.is_empty() {
        return Err(DbError::Parse("empty statement".into()));
    }
    let mut p = Parser { tokens, pos: 0 };
    if p.eat_keyword("CREATE") {
        p.expect_keyword("TABLE")?;
        let name = p.expect_ident()?;
        p.expect_symbol("(")?;
        let mut columns = Vec::new();
        loop {
            let col = p.expect_ident()?;
            let ty_name = p.expect_ident()?;
            let dt = parse_data_type(&ty_name)
                .ok_or_else(|| DbError::Parse(format!("unknown type '{ty_name}'")))?;
            // Optional length suffix, e.g. VARCHAR(25) — validated, ignored.
            if p.eat_symbol("(") {
                match p.next() {
                    Some(Token::Int(n)) if n > 0 => {}
                    other => {
                        return Err(DbError::Parse(format!(
                            "type length must be a positive integer, found {other:?}"
                        )))
                    }
                }
                p.expect_symbol(")")?;
            }
            columns.push((col, dt));
            if !p.eat_symbol(",") {
                break;
            }
        }
        p.expect_symbol(")")?;
        if let Some(t) = p.peek() {
            return Err(DbError::Parse(format!("trailing input: {t:?}")));
        }
        if columns.is_empty() {
            return Err(DbError::Parse("CREATE TABLE needs columns".into()));
        }
        return Ok(Statement::CreateTable { name, columns });
    }
    if p.eat_keyword("INSERT") {
        p.expect_keyword("INTO")?;
        let table = p.expect_ident()?;
        p.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            p.expect_symbol("(")?;
            let mut row = Vec::new();
            loop {
                row.push(p.literal_value()?);
                if !p.eat_symbol(",") {
                    break;
                }
            }
            p.expect_symbol(")")?;
            rows.push(row);
            if !p.eat_symbol(",") {
                break;
            }
        }
        if let Some(t) = p.peek() {
            return Err(DbError::Parse(format!("trailing input: {t:?}")));
        }
        return Ok(Statement::Insert { table, rows });
    }
    Ok(Statement::Select(p.select()?))
}

/// Parses a SQL type name.
fn parse_data_type(name: &str) -> Option<crate::types::DataType> {
    use crate::types::DataType;
    match name.to_ascii_uppercase().as_str() {
        "INT" | "INTEGER" | "BIGINT" | "DATE" => Some(DataType::Int),
        "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" => Some(DataType::Float),
        "STRING" | "TEXT" | "VARCHAR" | "CHAR" => Some(DataType::Str),
        "BOOL" | "BOOLEAN" => Some(DataType::Bool),
        _ => None,
    }
}

impl Parser {
    /// Parses a literal value (for INSERT rows): numbers (optionally
    /// negated), strings, booleans.
    fn literal_value(&mut self) -> Result<Value, DbError> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Value::Int(n)),
            Some(Token::Float(f)) => Ok(Value::Float(f)),
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            Some(Token::Symbol("-")) => match self.next() {
                Some(Token::Int(n)) => Ok(Value::Int(-n)),
                Some(Token::Float(f)) => Ok(Value::Float(-f)),
                other => Err(DbError::Parse(format!(
                    "expected number after '-', found {other:?}"
                ))),
            },
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            other => Err(DbError::Parse(format!("expected literal, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basics() {
        let t = tokenize("SELECT a, 1.5 FROM t WHERE x <= 'hi'").unwrap();
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert!(t.contains(&Token::Float(1.5)));
        assert!(t.contains(&Token::Symbol("<=")));
        assert!(t.contains(&Token::Str("hi".into())));
    }

    #[test]
    fn tokenize_rejects_garbage() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("SELECT 'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn parse_simple_select() {
        let s = parse("SELECT a, b FROM t").unwrap();
        assert_eq!(s.from, "t");
        assert_eq!(s.items.len(), 2);
        assert!(s.predicate.is_none());
        assert!(s.limit.is_none());
    }

    #[test]
    fn parse_wildcard_and_limit() {
        let s = parse("SELECT * FROM t LIMIT 10").unwrap();
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn parse_where_with_precedence() {
        let s = parse("SELECT a FROM t WHERE a > 1 AND b < 2 OR c = 3").unwrap();
        // OR binds loosest: ((a>1 AND b<2) OR c=3)
        match s.predicate.unwrap() {
            Expr::Binary { op: BinOp::Or, .. } => {}
            other => panic!("expected OR at root, got {other:?}"),
        }
    }

    #[test]
    fn parse_between_desugars() {
        let s = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5").unwrap();
        let p = s.predicate.unwrap();
        let text = p.render(&[]);
        assert_eq!(text, "((a >= 1) AND (a <= 5))");
    }

    #[test]
    fn parse_aggregates() {
        let s = parse("SELECT SUM(x) AS total, COUNT(*), AVG(y) FROM t GROUP BY g").unwrap();
        match &s.items[0] {
            SelectItem::Aggregate(AggFunc::Sum, _, name) => assert_eq!(name, "total"),
            other => panic!("{other:?}"),
        }
        match &s.items[1] {
            SelectItem::Aggregate(AggFunc::Count, arg, name) => {
                assert_eq!(*arg, Expr::lit(Value::Int(1)));
                assert_eq!(name, "count(*)");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.group_by.len(), 1);
    }

    #[test]
    fn parse_join() {
        let s = parse("SELECT a FROM t JOIN u ON t.id = u.t_id WHERE b > 0").unwrap();
        assert_eq!(
            s.joins,
            vec![("u".to_owned(), "id".to_owned(), "t_id".to_owned())]
        );
    }

    #[test]
    fn parse_order_by() {
        let s = parse("SELECT a, b FROM t ORDER BY a DESC, b").unwrap();
        assert_eq!(
            s.order_by,
            vec![("a".to_owned(), true), ("b".to_owned(), false)]
        );
    }

    #[test]
    fn parse_arithmetic_precedence() {
        let s = parse("SELECT a + b * c FROM t").unwrap();
        match &s.items[0] {
            SelectItem::Expr(e, _) => {
                assert_eq!(e.render(&[]), "(a + (b * c))");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_unary_minus() {
        let s = parse("SELECT a FROM t WHERE a > -5").unwrap();
        assert_eq!(s.predicate.unwrap().render(&[]), "(a > (0 - 5))");
    }

    #[test]
    fn parse_qualified_columns_drop_prefix() {
        let s = parse("SELECT l.price FROM lineitem l WHERE l.qty > 1").unwrap();
        match &s.items[0] {
            SelectItem::Expr(Expr::Column(n), _) => assert_eq!(n, "price"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse("").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a").is_err());
        assert!(parse("SELECT a FROM t extra garbage tokens +").is_err());
        assert!(parse("SELECT a FROM t LIMIT x").is_err());
    }

    #[test]
    fn to_plan_simple() {
        let s = parse("SELECT a FROM t WHERE a > 1").unwrap();
        let plan = to_plan(&s, |_| Ok(vec!["a".into()])).unwrap();
        match plan {
            Plan::Project { input, .. } => match *input {
                Plan::Filter { input, .. } => {
                    assert!(matches!(*input, Plan::Scan { .. }));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn to_plan_group_by_validation() {
        let s = parse("SELECT a, SUM(b) FROM t GROUP BY a").unwrap();
        assert!(to_plan(&s, |_| Ok(vec![])).is_ok());
        let bad = parse("SELECT a, SUM(b) FROM t GROUP BY c").unwrap();
        let err = to_plan(&bad, |_| Ok(vec![])).unwrap_err();
        assert!(matches!(err, DbError::Semantic(_)));
    }

    #[test]
    fn to_plan_wildcard_with_aggregate_rejected() {
        let bad = parse("SELECT * FROM t GROUP BY a").unwrap();
        assert!(to_plan(&bad, |_| Ok(vec![])).is_err());
    }

    #[test]
    fn to_plan_order_and_limit_nest_outermost() {
        let s = parse("SELECT a FROM t ORDER BY a LIMIT 5").unwrap();
        let plan = to_plan(&s, |_| Ok(vec!["a".into()])).unwrap();
        match plan {
            Plan::Limit { input, n } => {
                assert_eq!(n, 5);
                assert!(matches!(*input, Plan::Sort { .. }));
            }
            other => panic!("{other:?}"),
        }
    }
}
